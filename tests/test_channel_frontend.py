"""Tests for the channel and front-end automata (§6.1, §6.2)."""

import random

import pytest

from repro.algorithm.channel import Channel, LossyChannel
from repro.algorithm.frontend import FrontEndCore
from repro.algorithm.messages import ResponseMessage
from repro.common import OperationIdGenerator, SpecificationError
from repro.core.operations import make_operation
from repro.datatypes import CounterType


class TestChannel:
    def test_send_receive_roundtrip(self):
        channel = Channel("a", "b")
        channel.send("m1")
        assert channel.receive("m1") == "m1"
        assert len(channel) == 0

    def test_receive_specific_message(self):
        channel = Channel("a", "b")
        channel.send("m1")
        channel.send("m2")
        assert channel.receive("m2") == "m2"
        assert channel.contents() == ["m1"]

    def test_receive_empty_raises(self):
        with pytest.raises(LookupError):
            Channel("a", "b").receive()

    def test_receive_unknown_message_raises(self):
        channel = Channel("a", "b")
        channel.send("m1")
        with pytest.raises(LookupError):
            channel.receive("m2")

    def test_multiset_semantics(self):
        channel = Channel("a", "b")
        channel.send("m")
        channel.send("m")
        channel.receive("m")
        assert len(channel) == 1

    def test_non_fifo_delivery_possible(self):
        channel = Channel("a", "b")
        for i in range(10):
            channel.send(i)
        rng = random.Random(3)
        received = [channel.receive(rng=rng) for _ in range(10)]
        assert sorted(received) == list(range(10))
        assert received != list(range(10))  # some reordering happened


class TestLossyChannel:
    def test_drop_removes_message(self):
        channel = LossyChannel("a", "b")
        channel.send("m")
        channel.drop("m")
        assert len(channel) == 0
        assert channel.dropped == 1

    def test_duplicate_adds_copy(self):
        channel = LossyChannel("a", "b")
        channel.send("m")
        channel.duplicate("m")
        assert len(channel) == 2
        assert channel.duplicated == 1

    def test_duplicate_empty_raises(self):
        with pytest.raises(LookupError):
            LossyChannel("a", "b").duplicate()

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            LossyChannel("a", "b", drop_probability=1.5)
        with pytest.raises(ValueError):
            LossyChannel("a", "b", duplicate_probability=-0.1)

    def test_maybe_interfere(self):
        channel = LossyChannel("a", "b", drop_probability=1.0)
        channel.send("m")
        assert channel.maybe_interfere(random.Random(0)) == "drop"
        assert channel.maybe_interfere(random.Random(0)) is None  # now empty


@pytest.fixture
def gen():
    return OperationIdGenerator("alice")


class TestFrontEnd:
    def test_request_and_sendable(self, gen):
        frontend = FrontEndCore("alice")
        op = make_operation(CounterType.increment(), gen.fresh())
        frontend.request(op)
        assert op in frontend.wait
        assert [m.operation for m in frontend.sendable_requests()] == [op]

    def test_rejects_foreign_operations(self):
        frontend = FrontEndCore("alice")
        other = OperationIdGenerator("bob")
        with pytest.raises(SpecificationError):
            frontend.request(make_operation(CounterType.increment(), other.fresh()))

    def test_request_message_counts_sends(self, gen):
        frontend = FrontEndCore("alice")
        op = make_operation(CounterType.increment(), gen.fresh())
        frontend.request(op)
        frontend.make_request_message(op)
        frontend.make_request_message(op)
        assert frontend.requests_sent == 2

    def test_request_message_requires_pending(self, gen):
        frontend = FrontEndCore("alice")
        op = make_operation(CounterType.increment(), gen.fresh())
        with pytest.raises(SpecificationError):
            frontend.make_request_message(op)

    def test_response_recorded_only_when_pending(self, gen):
        frontend = FrontEndCore("alice")
        op = make_operation(CounterType.increment(), gen.fresh())
        stale = ResponseMessage(op, 1)
        assert frontend.receive_response(stale) is False
        frontend.request(op)
        assert frontend.receive_response(ResponseMessage(op, 1)) is True
        assert frontend.response_candidates() == [(op, 1)]

    def test_respond_clears_all_values(self, gen):
        frontend = FrontEndCore("alice")
        op = make_operation(CounterType.increment(), gen.fresh())
        frontend.request(op)
        frontend.receive_response(ResponseMessage(op, 1))
        frontend.receive_response(ResponseMessage(op, 2))
        value = frontend.respond(op)
        assert value in (1, 2)
        assert op not in frontend.wait
        assert frontend.rept == set()

    def test_respond_without_value_raises(self, gen):
        frontend = FrontEndCore("alice")
        op = make_operation(CounterType.increment(), gen.fresh())
        frontend.request(op)
        with pytest.raises(SpecificationError):
            frontend.respond(op)

    def test_pending_count_and_snapshot(self, gen):
        frontend = FrontEndCore("alice")
        op = make_operation(CounterType.increment(), gen.fresh())
        frontend.request(op)
        assert frontend.pending_count() == 1
        snapshot = frontend.snapshot()
        assert snapshot["wait"] == {op}
        snapshot["wait"].clear()
        assert frontend.wait == {op}  # snapshot is a copy
