"""Tests for the asyncio replica runtime (:mod:`repro.net.runtime`).

Unlike the wire twins (tests/test_net_wire.py), which pin the codec-bearing
simulation twin to the plain simulator under virtual time, these run the
*real* :class:`NetCluster`: one asyncio task per replica, real frames through
the binary codec, gossip on wall-clock timers.  The in-process memory
transport keeps most of them fast and socket-free; the TCP class exercises
the same paths over loopback sockets.

No pytest-asyncio in the toolchain: each test drives its own event loop
through ``asyncio.run``.
"""

import asyncio

import pytest

from repro.algorithm.checkpoint import CompactionPolicy
from repro.common import ConfigurationError
from repro.datatypes import CounterType
from repro.net.runtime import NetCluster, NetParams
from repro.verification.serializability import check_recorded_trace

FAST = dict(gossip_period=0.01, delta_gossip=True, fast_core=True)


def make_cluster(transport="memory", clients=("c0", "c1"), **overrides):
    merged = dict(FAST)
    merged.update(overrides)
    return NetCluster(
        CounterType(), num_replicas=3, client_ids=clients,
        params=NetParams(**merged), transport=transport,
    )


async def converge_and_check(cluster: NetCluster) -> None:
    """Quiesce, then check the global oracles: a single eventual order at
    every live replica and strict responses explained by it."""
    assert await cluster.quiesce(timeout=30.0), "cluster failed to converge"
    witness = cluster.eventual_order()
    assert [op for op in witness] == sorted(witness, key=witness.index)  # sanity: a list of ids
    check_recorded_trace(cluster.data_type, cluster.trace, witness=witness)


class TestParams:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NetParams(gossip_period=0.0)
        with pytest.raises(ConfigurationError):
            NetParams(send_queue_limit=0)
        with pytest.raises(ConfigurationError):
            NetParams(coalesce_limit=0)
        with pytest.raises(ConfigurationError):
            NetParams(request_retry=0.0)
        with pytest.raises(ConfigurationError):
            NetParams(full_state_interval=0)

    def test_unknown_transport_rejected(self):
        with pytest.raises(ConfigurationError):
            NetCluster(CounterType(), transport="carrier-pigeon")

    def test_single_replica_rejected(self):
        with pytest.raises(ConfigurationError):
            NetCluster(CounterType(), num_replicas=1)


class TestMemoryTransport:
    def test_smoke_submit_and_converge(self):
        async def run():
            async with make_cluster() as cluster:
                values = []
                for _ in range(5):
                    values.append(await cluster.submit("c0", CounterType.increment()))
                await converge_and_check(cluster)
                # A non-strict read can legally see a stale prefix before
                # convergence (the service is *eventually* serializable);
                # after quiesce every replica's done order holds all five.
                assert await cluster.submit("c1", CounterType.read()) == 5
                return values

        values = asyncio.run(run())
        # Counter increments return the post-application value at the
        # answering replica: positive and never above the total submitted.
        assert all(1 <= v <= 5 for v in values)

    def test_concurrent_clients_coalesce_into_frames(self):
        async def run():
            async with make_cluster(clients=tuple(f"c{i}" for i in range(4))) as cluster:
                await asyncio.gather(*(
                    cluster.submit(cid, CounterType.increment())
                    for cid in cluster.client_ids for _ in range(5)
                ))
                await converge_and_check(cluster)
                assert await cluster.submit("c0", CounterType.read()) == 20
                return cluster.stats

        stats = asyncio.run(run())
        assert stats.frames_sent > 0 and stats.bytes_sent > 0
        assert stats.messages_by_kind["request"] >= 21
        assert stats.messages_by_kind["gossip"] > 0
        # Payload bytes exclude the per-frame overhead bytes_sent includes.
        assert sum(stats.payload_bytes_by_kind.values()) < stats.bytes_sent

    def test_prev_chain_and_strict_read(self):
        async def run():
            async with make_cluster() as cluster:
                first = cluster.make_operation("c0", CounterType.increment())
                await cluster.execute(first)
                second = cluster.make_operation(
                    "c0", CounterType.increment(), prev=[first.id])
                await cluster.execute(second)
                # A strict read behind the chain is answered only once its
                # position in the eventual order is stable: it must see both.
                total = await cluster.submit(
                    "c1", CounterType.read(), prev=[second.id], strict=True)
                await converge_and_check(cluster)
                return total

        assert asyncio.run(run()) == 2

    def test_prev_must_reference_requested_operations(self):
        async def run():
            async with make_cluster() as cluster:
                ghost = cluster.make_operation("c0", CounterType.increment())
                with pytest.raises(ConfigurationError):
                    cluster.make_operation("c1", CounterType.read(), prev=[ghost.id])

        asyncio.run(run())


class TestCrashRecovery:
    def test_volatile_crash_and_recovery_converges(self):
        async def run():
            params = dict(
                FAST,
                advert_gossip=True,
                compaction=CompactionPolicy(min_batch=4, value_retention=64),
            )
            async with make_cluster(**params) as cluster:
                for _ in range(6):
                    await cluster.submit("c0", CounterType.increment())
                await cluster.crash_replica("r1", volatile_memory=True)
                for _ in range(4):
                    await cluster.submit("c1", CounterType.increment())
                await cluster.recover_replica("r1")
                await converge_and_check(cluster)
                assert await cluster.submit("c0", CounterType.read()) == 10
                return cluster

        cluster = asyncio.run(run())
        # The recovered replica holds the same stable knowledge as its peers.
        recovered = cluster.replicas["r1"]
        survivor = cluster.replicas["r0"]
        assert recovered.checkpoint.digest() == survivor.checkpoint.digest() or (
            recovered.checkpoint.count == 0 or survivor.checkpoint.count == 0
        )

    def test_requests_redirect_away_from_crashed_affinity_replica(self):
        async def run():
            async with make_cluster(request_retry=0.1) as cluster:
                # c0's affinity replica is r0; crash it and the retry loop
                # must redirect to a live replica within the timeout.
                await cluster.crash_replica("r0", volatile_memory=True)
                value = await cluster.submit("c0", CounterType.increment(), timeout=10.0)
                await cluster.recover_replica("r0")
                await converge_and_check(cluster)
                return value

        assert asyncio.run(run()) == 1


class TestBackpressure:
    def test_unreachable_peer_makes_gossip_skip_not_block(self):
        async def run():
            async with make_cluster(send_queue_limit=1, reconnect_delay=5.0) as cluster:
                await cluster.submit("c0", CounterType.increment())
                await cluster.crash_replica("r2", volatile_memory=False)
                # r2's server is gone and the re-dial is slow: the peers'
                # queues toward it fill and gossip rounds skip instead of
                # stalling the loop.  Live traffic keeps being answered.
                await asyncio.sleep(0.2)
                value = await cluster.submit("c0", CounterType.increment(), timeout=10.0)
                return cluster.stats, value

        stats, value = asyncio.run(run())
        assert value == 2
        assert stats.gossip_skipped > 0


class TestTcpTransport:
    def test_tcp_smoke(self):
        async def run():
            async with make_cluster(transport="tcp") as cluster:
                await asyncio.gather(*(
                    cluster.submit("c0", CounterType.increment()) for _ in range(8)
                ))
                await converge_and_check(cluster)
                assert await cluster.submit("c1", CounterType.read()) == 8
                return cluster.stats

        stats = asyncio.run(run())
        assert stats.frames_sent > 0
        assert stats.messages_by_kind["gossip"] > 0

    def test_tcp_crash_recover_fresh_port(self):
        async def run():
            async with make_cluster(transport="tcp") as cluster:
                for _ in range(3):
                    await cluster.submit("c1", CounterType.increment())
                # Quiesce first: a responded-but-unstable operation held only
                # by the answering replica is a legitimate casualty of a
                # volatile crash (the paper's model allows it), and a lost
                # operation can never satisfy the all-requested quiesce.
                assert await cluster.quiesce(timeout=30.0)
                await cluster.crash_replica("r1", volatile_memory=True)
                await cluster.submit("c0", CounterType.increment(), timeout=10.0)
                await cluster.recover_replica("r1")
                await converge_and_check(cluster)
                return await cluster.submit("c0", CounterType.read())

        assert asyncio.run(run()) == 4
