"""Tests for the discrete-event core: event queue, network model, metrics."""

import math
import random

import pytest

from repro.common import OperationIdGenerator
from repro.core.operations import make_operation
from repro.datatypes import CounterType
from repro.sim.events import EventQueue, Simulator
from repro.sim.metrics import LatencyRecord, LatencySummary, MetricsCollector, classify_operation
from repro.sim.network import NetworkModel, SimulatedNetwork


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, lambda: order.append("b"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(3.0, lambda: order.append("c"))
        while True:
            event = queue.pop()
            if event is None:
                break
            event.callback()
        assert order == ["a", "b", "c"]

    def test_fifo_among_equal_times(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        second = queue.push(1.0, lambda: None)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        event.cancelled = True
        assert queue.pop() is None
        assert len(queue) == 0


class TestSimulator:
    def test_clock_advances_with_events(self):
        sim = Simulator()
        times = []
        sim.schedule(5.0, lambda: times.append(sim.now))
        sim.schedule(2.0, lambda: times.append(sim.now))
        sim.run_until_empty()
        assert times == [2.0, 5.0]
        assert sim.now == 5.0

    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(2))
        sim.run_until(5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_cannot_schedule_in_the_past(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until_empty()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_cancel(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        sim.cancel(event)
        sim.run_until_empty()
        assert fired == []

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append("outer")
            sim.schedule(1.0, lambda: fired.append("inner"))

        sim.schedule(1.0, outer)
        sim.run_until_empty()
        assert fired == ["outer", "inner"]
        assert sim.now == 2.0


class TestNetworkModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(df=-1)
        with pytest.raises(ValueError):
            NetworkModel(jitter=2.0)
        with pytest.raises(ValueError):
            NetworkModel(loss_probability=1.0)

    def test_deterministic_delays(self):
        network = SimulatedNetwork(NetworkModel(df=2.0, dg=3.0), random.Random(0))
        assert network.delay_for("request", now=0.0) == 2.0
        assert network.delay_for("response", now=0.0) == 2.0
        assert network.delay_for("gossip", now=0.0) == 3.0

    def test_jitter_stays_below_bound(self):
        network = SimulatedNetwork(NetworkModel(df=2.0, dg=3.0, jitter=0.5), random.Random(0))
        for _ in range(50):
            assert 1.0 <= network.delay_for("request", 0.0) <= 2.0
            assert 1.5 <= network.delay_for("gossip", 0.0) <= 3.0

    def test_delay_spike(self):
        network = SimulatedNetwork(NetworkModel(df=1.0, dg=1.0, spike_factor=5.0), random.Random(0))
        network.start_delay_spike(until=10.0)
        assert network.delay_for("request", now=5.0) == 5.0
        assert network.delay_for("request", now=15.0) == 1.0

    def test_partition_drops(self):
        network = SimulatedNetwork(NetworkModel(), random.Random(0))
        network.partition("r1")
        assert network.should_drop("gossip", "r0", "r1")
        assert network.should_drop("gossip", "r1", "r0")
        network.heal("r1")
        assert not network.should_drop("gossip", "r0", "r1")
        assert network.counters.dropped == 2

    def test_loss_probability_one_sided(self):
        always = SimulatedNetwork(NetworkModel(loss_probability=0.999), random.Random(1))
        dropped = sum(always.should_drop("request", "a", "b") for _ in range(100))
        assert dropped > 90

    def test_record_sent_counts(self):
        network = SimulatedNetwork(NetworkModel(), random.Random(0))
        network.record_sent("request")
        network.record_sent("response")
        network.record_sent("gossip", payload_size=7)
        assert network.counters.total() == 3
        assert network.counters.gossip_payload == 7
        with pytest.raises(ValueError):
            network.record_sent("bogus")


class TestMetrics:
    def _operation(self, strict=False, prev=()):
        gen = OperationIdGenerator("c", start=random.randint(0, 10**6))
        return make_operation(CounterType.increment(), gen.fresh(), prev=prev, strict=strict)

    def test_classification(self):
        gen = OperationIdGenerator("c")
        plain = make_operation(CounterType.increment(), gen.fresh())
        dep = make_operation(CounterType.increment(), gen.fresh(), prev=[plain.id])
        strict = make_operation(CounterType.increment(), gen.fresh(), strict=True)
        assert classify_operation(plain) == "nonstrict_no_prev"
        assert classify_operation(dep) == "nonstrict_with_prev"
        assert classify_operation(strict) == "strict"

    def test_latency_record(self):
        record = LatencyRecord(self._operation(), request_time=1.0, response_time=3.5)
        assert record.latency == 2.5

    def test_summary_statistics(self):
        summary = LatencySummary.from_latencies([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0 and summary.maximum == 4.0
        assert summary.p50 == 2.0
        assert summary.p95 == 4.0

    def test_empty_summary_is_nan(self):
        summary = LatencySummary.from_latencies([])
        assert summary.count == 0
        assert math.isnan(summary.mean)

    def test_collector_roundtrip(self):
        collector = MetricsCollector()
        op = self._operation()
        collector.record_request(op, 1.0)
        assert collector.outstanding == 1
        collector.record_response(op, 1, 4.0)
        assert collector.completed == 1
        assert collector.outstanding == 0
        assert collector.latency_summary().mean == 3.0
        collector.started_at, collector.finished_at = 0.0, 10.0
        assert collector.throughput() == 0.1

    def test_response_without_request_ignored(self):
        collector = MetricsCollector()
        collector.record_response(self._operation(), 1, 4.0)
        assert collector.completed == 0

    def test_stabilization_summary(self):
        collector = MetricsCollector()
        op = self._operation()
        collector.record_request(op, 2.0)
        collector.record_stabilization(op.id, 8.0)
        collector.record_stabilization(op.id, 9.0)  # only the first counts
        assert collector.stabilization_summary().mean == 6.0
