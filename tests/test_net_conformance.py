"""Conformance vectors replayed over the wire-codec runtime.

The sealed vectors under tests/vectors record outcomes of the plain
simulator.  Replaying them with ``runtime="net"`` swaps every cluster for
:class:`repro.net.wire.WireCluster` — same discrete-event schedule, but
every message crossing a channel is round-tripped through the binary wire
codec (:mod:`repro.net.codec`) and its real encoded size is metered.  A
sound codec is invisible: the recorded outcomes must replay identically.

The full-corpus sweep lives in CI (``python -m repro.conformance.replay
tests/vectors --runtime=net``); here one vector per mode keeps the tier-1
suite fast while still crossing the codec for every message kind (full and
delta gossip, checkpoint bodies, adverts, chunked pulls/transfers, crash
recovery, sharding).
"""

from pathlib import Path

import pytest

from repro.conformance.replay import replay_path

VECTOR_DIR = Path(__file__).parent / "vectors"

#: One representative per generator mode (see repro.conformance.generate).
SAMPLED = sorted(p.name for p in VECTOR_DIR.glob("*_003.json"))


def test_sample_covers_every_mode():
    modes = {name.rsplit("_", 1)[0] for name in (p.name for p in VECTOR_DIR.glob("*.json"))}
    sampled_modes = {name.rsplit("_", 1)[0] for name in SAMPLED}
    assert sampled_modes == modes


@pytest.mark.parametrize("name", SAMPLED)
def test_vector_replays_identically_over_net(name):
    outcome = replay_path(VECTOR_DIR / name, runtime="net")
    assert outcome is not None
