"""Tests for live elastic resharding (:meth:`ShardedCluster.reshard` and
friends): ring changes under traffic, the dual-route handoff window, the
digest-verified slice transfer, response equivalence against a statically
sharded oracle twin (Theorem 5.8 across the handoff), the PR 6 fault
adversaries replayed mid-migration, and the synchronous
:class:`ShardedFrontend` flavour plus the :class:`NetCluster` ingest hook.
"""

import asyncio
import random

import pytest

from repro.common import ConfigurationError, OperationId
from repro.config import ReplicaConfig
from repro.core.operations import make_operation
from repro.datatypes import CounterType
from repro.net.runtime import NetCluster
from repro.net.wire import WireCluster
from repro.service.frontend import ShardedFrontend
from repro.service.router import ShardRouter
from repro.sim.cluster import SimulationParams
from repro.sim.sharded import ShardedCluster

KEYS = [f"k{i}" for i in range(16)]


def make_cluster(num_shards=2, seed=42, **kwargs):
    defaults = dict(replicas_per_shard=3, client_ids=["c0", "c1"], seed=seed)
    defaults.update(kwargs)
    return ShardedCluster(CounterType(), num_shards=num_shards, **defaults)


def chained_traffic(cluster, rng, count, run_between=0.4):
    """Submit *count* keyed operations, each chained after the key's last
    operation (a per-key total order, so response values are a pure
    function of the per-key history — the oracle-twin comparisons rely on
    this), driving the event loop a little between submissions."""
    ops = []
    for _ in range(count):
        client = rng.choice(list(cluster.client_ids))
        key = rng.choice(KEYS)
        prev = cluster.last_operation_on(key)
        roll = rng.random()
        if roll < 0.55:
            operator = CounterType.increment()
        elif roll < 0.75:
            operator = CounterType.double()
        else:
            operator = CounterType.read()
        op = cluster.submit(client, key, operator, prev=(prev,) if prev else ())
        ops.append(op)
        cluster.run(run_between)
    return ops


def finish(cluster):
    cluster.run_until_idle()
    assert cluster.outstanding_operations() == 0
    cluster.check_invariants()
    cluster.check_traces()


class TestLiveAddShard:
    def test_add_shard_under_traffic(self):
        cluster = make_cluster(num_shards=2)
        rng = random.Random(1)
        before = chained_traffic(cluster, rng, 18)
        handle = cluster.add_shard("s2")
        assert cluster.active_reshard() is handle
        during = chained_traffic(cluster, rng, 18)
        cluster.run_until_resharded(handle)
        assert handle.done
        assert cluster.active_reshard() is None
        after = chained_traffic(cluster, rng, 10)
        finish(cluster)
        everything = before + during + after
        assert set(cluster.responded) >= {op.id for op in everything}
        assert set(cluster.shard_ids) == {"s0", "s1", "s2"}
        assert handle.moved_operations > 0
        assert handle.joining == ("s2",) and handle.leaving == ()
        summary = handle.summary()
        assert summary["completed_at"] is not None
        assert summary["moved_operations"] == handle.moved_operations

    def test_growth_only_moves_keys_to_joining_shard(self):
        cluster = make_cluster(num_shards=3)
        handle = cluster.add_shard("s3")
        assert handle.plan  # a join always takes some ranges
        assert all(move.destination == "s3" for move in handle.plan)
        assert len({move.source for move in handle.plan}) >= 2
        cluster.run_until_resharded(handle)
        finish(cluster)

    def test_concurrent_reshards_rejected(self):
        cluster = make_cluster(num_shards=2)
        cluster.add_shard("s2")
        with pytest.raises(ConfigurationError):
            cluster.add_shard("s3")
        with pytest.raises(ConfigurationError):
            cluster.drain_shard("s0")

    def test_live_reshard_matches_static_oracle(self):
        """Theorem 5.8 across the handoff: a cluster that reshards 2->3 live
        under traffic returns exactly the values a statically 3-sharded twin
        returns for the same per-key-chained workload."""
        base = ShardRouter.for_count(2)
        final = base.add_shard("s2")
        live = ShardedCluster(
            CounterType(), router=base, replicas_per_shard=2,
            client_ids=["c0", "c1"], seed=7,
        )
        oracle = ShardedCluster(
            CounterType(), router=final, replicas_per_shard=2,
            client_ids=["c0", "c1"], seed=7,
        )
        script = []
        rng = random.Random(99)
        for _ in range(36):
            roll = rng.random()
            if roll < 0.55:
                operator = CounterType.increment()
            elif roll < 0.75:
                operator = CounterType.double()
            else:
                operator = CounterType.read()
            script.append((rng.choice(["c0", "c1"]), rng.choice(KEYS), operator))

        def run_script(cluster, reshard_after=None):
            ops, handle = [], None
            for i, (client, key, operator) in enumerate(script):
                if i == reshard_after:
                    handle = cluster.add_shard("s2")
                prev = cluster.last_operation_on(key)
                ops.append(cluster.submit(client, key, operator,
                                          prev=(prev,) if prev else ()))
                cluster.run(0.4)
            if handle is not None:
                cluster.run_until_resharded(handle)
            cluster.run_until_idle()
            return ops

        live_ops = run_script(live, reshard_after=12)
        oracle_ops = run_script(oracle)
        live.check_invariants()
        oracle.check_invariants()
        live_values = [live.value_of(op) for op in live_ops]
        oracle_values = [oracle.value_of(op) for op in oracle_ops]
        assert live_values == oracle_values

    def test_invariants_hold_throughout_handoff_window(self):
        """The per-shard Section 7/8 checker passes at every migration tick,
        not just at the end — pending injected chains and barrier prevs must
        never trip it mid-window."""
        cluster = make_cluster(num_shards=2, seed=5)
        rng = random.Random(5)
        chained_traffic(cluster, rng, 12)
        handle = cluster.add_shard("s2")
        checked = 0
        while not handle.done and checked < 400:
            cluster.run(0.5)
            chained_traffic(cluster, rng, 1, run_between=0.1)
            cluster.check_invariants()
            checked += 1
        assert handle.done
        finish(cluster)


class TestDrainShard:
    def test_drain_shard_retires_source(self):
        cluster = make_cluster(num_shards=3, seed=11)
        rng = random.Random(11)
        chained_traffic(cluster, rng, 18)
        handle = cluster.drain_shard("s1")
        assert all(move.source == "s1" for move in handle.plan)
        chained_traffic(cluster, rng, 12)
        cluster.run_until_resharded(handle)
        assert handle.done and handle.leaving == ("s1",)
        finish(cluster)
        assert set(cluster.shard_ids) == {"s0", "s2"}
        # The retired shard's history stays readable...
        assert "s1" in cluster.shards
        assert cluster.shards["s1"].outstanding_operations() == 0
        # ...and new traffic routes only to the survivors.
        op = cluster.submit("c0", "fresh-key", CounterType.increment())
        assert cluster.directory.shard_of_operation(op.id) in {"s0", "s2"}
        finish(cluster)

    def test_retired_shard_id_cannot_rejoin(self):
        cluster = make_cluster(num_shards=3, seed=11)
        handle = cluster.drain_shard("s1")
        cluster.run_until_resharded(handle)
        with pytest.raises(ConfigurationError):
            cluster.add_shard("s1")

    def test_add_then_drain_moves_histories_twice(self):
        """A key migrated into the new shard and then drained out again
        arrives intact at its third owner (membership is decided by key
        hash, not minting shard)."""
        cluster = make_cluster(num_shards=2, seed=23)
        rng = random.Random(23)
        chained_traffic(cluster, rng, 16)
        first = cluster.add_shard("s2")
        chained_traffic(cluster, rng, 10)
        cluster.run_until_resharded(first)
        second = cluster.drain_shard("s2")
        chained_traffic(cluster, rng, 10)
        cluster.run_until_resharded(second)
        assert first.done and second.done
        # Everything s2 took in the first reshard went back out in the second.
        if first.moved_operations:
            assert second.moved_operations >= first.moved_operations
        finish(cluster)
        assert set(cluster.shard_ids) == {"s0", "s1"}


class TestReshardUnderFaults:
    def test_transfer_corruption_heals_by_resend(self):
        cluster = make_cluster(num_shards=2, seed=3)
        rng = random.Random(3)
        chained_traffic(cluster, rng, 16)
        for shard in cluster.shards.values():
            shard.network.start_corruption(
                until=cluster.now + 30.0, probability=1.0
            )
        handle = cluster.add_shard("s2")
        cluster.run_until_resharded(handle, max_time=20_000.0)
        assert handle.done
        assert handle.transfer_rejections > 0  # corrupted chunks were caught
        finish(cluster)

    def test_source_crash_mid_handoff_blocks_until_recovery(self):
        # Volatile crashes can lose a replica's owed responses; the fault
        # model recovers those through front-end retransmission.
        cluster = make_cluster(
            num_shards=2, seed=13,
            params=SimulationParams(batch_gossip=True, retransmit_interval=4.0),
        )
        rng = random.Random(13)
        chained_traffic(cluster, rng, 14)
        handle = cluster.add_shard("s2")
        cluster.run(0.5)  # let the legs flip
        for sid in ("s0", "s1"):
            cluster.shards[sid].crash_replica("r0", volatile_memory=True)
        cluster.run(40.0)
        assert not handle.done  # slices cannot settle with a source down
        for sid in ("s0", "s1"):
            cluster.shards[sid].recover_replica("r0")
        cluster.run_until_resharded(handle, max_time=20_000.0)
        assert handle.done
        finish(cluster)

    def test_destination_crash_mid_handoff_recovers(self):
        cluster = make_cluster(
            num_shards=2, seed=17,
            params=SimulationParams(batch_gossip=True, retransmit_interval=4.0),
        )
        rng = random.Random(17)
        chained_traffic(cluster, rng, 14)
        handle = cluster.add_shard("s2")
        cluster.run(0.5)
        cluster.shards["s2"].crash_replica("r0", volatile_memory=True)
        cluster.run(10.0)
        cluster.shards["s2"].recover_replica("r0")
        cluster.run_until_resharded(handle, max_time=20_000.0)
        assert handle.done
        finish(cluster)


class TestWireReshard:
    def test_reshard_over_the_binary_wire_codec(self):
        cluster = make_cluster(
            num_shards=2, seed=29, cluster_class=WireCluster,
            replicas_per_shard=2,
        )
        rng = random.Random(29)
        chained_traffic(cluster, rng, 12)
        handle = cluster.add_shard("s2")
        chained_traffic(cluster, rng, 8)
        cluster.run_until_resharded(handle)
        assert handle.done
        finish(cluster)
        assert set(cluster.shard_ids) == {"s0", "s1", "s2"}


class TestFrontendReshard:
    def test_synchronous_add_and_drain(self):
        rng = random.Random(4)
        fe = ShardedFrontend(
            CounterType(), num_shards=2, replicas_per_shard=2,
            client_ids=("c0", "c1"),
        )

        def traffic(n):
            for _ in range(n):
                client = rng.choice(fe.client_ids)
                key = rng.choice(KEYS)
                prev = fe.last_operation_on(key)
                fe.request(client, key, CounterType.increment(),
                           prev=(prev,) if prev else ())
                fe.run_random(rng, 3)

        traffic(16)
        plan = fe.add_shard("s2", rng)
        assert plan and all(move.destination == "s2" for move in plan)
        traffic(12)
        fe.drain(rng)
        assert fe.outstanding_operations() == 0
        fe.check_invariants()
        fe.check_traces()
        before = dict(fe.responded)
        plan2 = fe.drain_shard("s0", rng)
        assert all(move.source == "s0" for move in plan2)
        traffic(8)
        fe.drain(rng)
        assert fe.outstanding_operations() == 0
        fe.check_invariants()
        fe.check_traces()
        assert set(fe.shard_ids) == {"s1", "s2"}
        # Migration re-answers must agree with what clients already saw.
        for op_id, value in before.items():
            assert fe.responded[op_id] == value

    def test_history_returning_to_former_owner(self):
        """Add a shard then drain it again: migrated histories return to
        shards that still hold them, exercising the skip-and-per-key-chain
        path."""
        rng = random.Random(31)
        fe = ShardedFrontend(CounterType(), num_shards=2,
                             replicas_per_shard=2, client_ids=("c0", "c1"))
        for i in range(20):
            key = KEYS[i % len(KEYS)]
            prev = fe.last_operation_on(key)
            fe.request(rng.choice(fe.client_ids), key, CounterType.increment(),
                       prev=(prev,) if prev else ())
            fe.run_random(rng, 3)
        fe.add_shard("s2", rng)
        for i in range(10):
            key = KEYS[i % len(KEYS)]
            prev = fe.last_operation_on(key)
            fe.request(rng.choice(fe.client_ids), key, CounterType.increment(),
                       prev=(prev,) if prev else ())
            fe.run_random(rng, 3)
        fe.drain_shard("s2", rng)
        fe.drain(rng)
        assert fe.outstanding_operations() == 0
        fe.check_invariants()
        fe.check_traces()
        assert set(fe.shard_ids) == {"s0", "s1"}

    def test_retired_frontend_shard_id_cannot_rejoin(self):
        rng = random.Random(8)
        fe = ShardedFrontend(CounterType(), num_shards=2,
                             replicas_per_shard=2, client_ids=("c0",))
        fe.drain_shard("s0", rng)
        with pytest.raises(ConfigurationError):
            fe.add_shard("s0", rng)


class TestNetIngest:
    def test_ingest_replays_foreign_chained_slice(self):
        async def main():
            cluster = NetCluster(CounterType(), num_replicas=2,
                                 client_ids=("c0",))
            async with cluster:
                ops, prev = [], ()
                for i in range(4):
                    op = make_operation(
                        CounterType.increment(), OperationId("ghost@s0", i),
                        frozenset(prev), strict=False,
                    )
                    ops.append(op)
                    prev = (op.id,)
                values = await cluster.ingest(ops)
                assert [values[op.id] for op in ops] == [1, 2, 3, 4]
                assert "ghost@s0" in cluster.client_ids
                # Re-ingesting is idempotent: answered links are not re-sent.
                again = await cluster.ingest(ops)
                assert again == values
                await cluster.quiesce()

        asyncio.run(main())

    def test_replica_config_threads_into_net_params(self):
        cfg = ReplicaConfig(fast_core=True, delta_gossip=True,
                            incremental_replay=True)
        cluster = NetCluster(CounterType(), num_replicas=2, config=cfg)
        assert cluster.params.fast_core
        assert cluster.params.replica_config.delta_gossip
