"""Tests for the directory service and object repository applications (§11.2)."""

import pytest

from repro.apps.directory import DirectoryService
from repro.apps.repository import ObjectRepository
from repro.datatypes import DirectoryType
from repro.sim.cluster import SimulatedCluster, SimulationParams

PARAMS = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0)


@pytest.fixture
def cluster():
    return SimulatedCluster(DirectoryType(), num_replicas=3,
                            client_ids=["admin", "user", "resolver"],
                            params=PARAMS, seed=1)


class TestDirectoryService:
    def test_bind_and_lookup(self, cluster):
        admin = DirectoryService(cluster, "admin")
        assert admin.bind("www.example.org", {"ip": "10.0.0.7", "ttl": 300}) is True
        attrs = admin.lookup("www.example.org")
        assert attrs == {"ip": "10.0.0.7", "ttl": 300}

    def test_lookup_missing_name(self, cluster):
        user = DirectoryService(cluster, "user")
        assert user.lookup("nope.example.org") is None

    def test_attribute_update_ordered_after_creation(self, cluster):
        admin = DirectoryService(cluster, "admin")
        admin.bind("mail.example.org")
        assert admin.set_attribute("mail.example.org", "ip", "10.0.0.9") is True
        assert admin.get_attribute("mail.example.org", "ip") == "10.0.0.9"

    def test_consistent_lookup_by_other_client(self, cluster):
        admin = DirectoryService(cluster, "admin")
        admin.bind("db.example.org", {"ip": "10.1.1.1"})
        resolver = DirectoryService(cluster, "resolver")
        attrs = resolver.lookup("db.example.org", consistent=True)
        assert attrs == {"ip": "10.1.1.1"}

    def test_rebinding_existing_name_reports_false(self, cluster):
        admin = DirectoryService(cluster, "admin")
        admin.bind("dup.example.org", expedient=True)
        other = DirectoryService(cluster, "user")
        assert other.bind("dup.example.org", expedient=True) is False

    def test_unbind(self, cluster):
        admin = DirectoryService(cluster, "admin")
        admin.bind("gone.example.org")
        assert admin.unbind("gone.example.org", expedient=True) is True
        assert admin.lookup("gone.example.org", consistent=True) is None

    def test_list_names(self, cluster):
        admin = DirectoryService(cluster, "admin")
        admin.bind("a.example.org")
        admin.bind("b.example.org")
        names = admin.list_names(consistent=True)
        assert set(names) >= {"a.example.org", "b.example.org"}


class TestObjectRepository:
    def test_register_type_and_interface(self, cluster):
        repo = ObjectRepository(cluster, "admin")
        assert repo.register_type("Printer", {"print": "(doc) -> status"}) is True
        interface = repo.interface_of("Printer", consistent=True)
        assert interface == {"print": "(doc) -> status"}

    def test_add_method(self, cluster):
        repo = ObjectRepository(cluster, "admin")
        repo.register_type("Printer", {"print": "(doc) -> status"})
        repo.add_method("Printer", "status", "() -> state")
        interface = repo.interface_of("Printer")
        assert set(interface) == {"print", "status"}

    def test_unknown_type_is_none(self, cluster):
        repo = ObjectRepository(cluster, "user")
        assert repo.interface_of("Ghost") is None
        assert repo.dispatch("Ghost", "impl") is None

    def test_register_implementation_and_dispatch(self, cluster):
        repo = ObjectRepository(cluster, "admin")
        repo.register_type("Printer", {"print": "(doc) -> status"})
        repo.register_implementation("Printer", "laserjet", "host-a:9001", version="2")
        assert repo.dispatch("Printer", "laserjet", consistent=True) == "host-a:9001"

    def test_implementations_listing(self, cluster):
        repo = ObjectRepository(cluster, "admin")
        repo.register_type("Store", {"get": "(k) -> v"})
        repo.register_implementation("Store", "memory", "host-a:1")
        repo.register_implementation("Store", "disk", "host-b:2")
        assert set(repo.implementations_of("Store", consistent=True)) == {"memory", "disk"}

    def test_cross_client_visibility(self, cluster):
        admin = ObjectRepository(cluster, "admin")
        admin.register_type("Queue", {"push": "(x) -> ()"})
        admin.register_implementation("Queue", "fifo", "host-q:5")
        reader = ObjectRepository(cluster, "resolver")
        assert reader.dispatch("Queue", "fifo", consistent=True) == "host-q:5"
