"""Tests for operation descriptors and client-specified constraints (§2.3)."""

import pytest

from repro.common import OperationIdGenerator
from repro.core.operations import (
    OperationDescriptor,
    client_specified_constraints,
    ids_of,
    make_operation,
    operations_by_id,
)
from repro.datatypes import CounterType


@pytest.fixture
def gen():
    return OperationIdGenerator("alice")


class TestOperationDescriptor:
    def test_prev_normalised_to_frozenset(self, gen):
        dep = gen.fresh()
        op = OperationDescriptor(CounterType.increment(), gen.fresh(), prev={dep})
        assert isinstance(op.prev, frozenset)
        assert op.prev == frozenset({dep})

    def test_descriptor_is_hashable_and_equal_by_value(self, gen):
        op_id = gen.fresh()
        a = make_operation(CounterType.increment(), op_id)
        b = make_operation(CounterType.increment(), op_id)
        assert a == b
        assert len({a, b}) == 1

    def test_client_property(self, gen):
        op = make_operation(CounterType.read(), gen.fresh())
        assert op.client == "alice"

    def test_with_strict_and_with_prev(self, gen):
        op = make_operation(CounterType.read(), gen.fresh())
        strict_op = op.with_strict(True)
        assert strict_op.strict and not op.strict
        dep = gen.fresh()
        dependent = op.with_prev([dep])
        assert dependent.prev == frozenset({dep})
        assert op.prev == frozenset()

    def test_str_marks_strict(self, gen):
        op = make_operation(CounterType.read(), gen.fresh(), strict=True)
        assert str(op).startswith("!")


class TestClientSpecifiedConstraints:
    def test_empty_for_independent_operations(self, gen):
        ops = [make_operation(CounterType.increment(), gen.fresh()) for _ in range(3)]
        assert client_specified_constraints(ops) == set()

    def test_prev_produces_pairs(self, gen):
        first = make_operation(CounterType.increment(), gen.fresh())
        second = make_operation(CounterType.read(), gen.fresh(), prev=[first.id])
        csc = client_specified_constraints([first, second])
        assert csc == {(first.id, second.id)}

    def test_constraints_reference_external_operations(self, gen):
        ghost = gen.fresh()
        op = make_operation(CounterType.read(), gen.fresh(), prev=[ghost])
        assert client_specified_constraints([op]) == {(ghost, op.id)}

    def test_monotone_in_the_operation_set(self, gen):
        """Lemma 2.4: X ⊆ Y implies CSC(X) ⊆ CSC(Y)."""
        first = make_operation(CounterType.increment(), gen.fresh())
        second = make_operation(CounterType.read(), gen.fresh(), prev=[first.id])
        third = make_operation(CounterType.read(), gen.fresh(), prev=[second.id])
        smaller = client_specified_constraints([first, second])
        larger = client_specified_constraints([first, second, third])
        assert smaller <= larger


class TestOperationsById:
    def test_index_builds(self, gen):
        ops = [make_operation(CounterType.increment(), gen.fresh()) for _ in range(4)]
        index = operations_by_id(ops)
        assert set(index) == ids_of(ops)

    def test_conflicting_reuse_rejected(self, gen):
        op_id = gen.fresh()
        a = make_operation(CounterType.increment(), op_id)
        b = make_operation(CounterType.double(), op_id)
        with pytest.raises(ValueError):
            operations_by_id([a, b])

    def test_identical_duplicates_tolerated(self, gen):
        op_id = gen.fresh()
        a = make_operation(CounterType.increment(), op_id)
        assert operations_by_id([a, a])[op_id] == a
