"""Serial-semantics tests for every shipped data type (Section 2.2)."""

import pytest

from repro.datatypes import (
    AppendLogType,
    BankAccountType,
    CounterType,
    DirectoryType,
    GSetType,
    QueueType,
    RegisterType,
)
from repro.datatypes.base import Operator, apply_sequence


ALL_TYPES = [
    RegisterType(),
    CounterType(),
    GSetType(),
    DirectoryType(),
    AppendLogType(),
    QueueType(),
    BankAccountType(),
]


@pytest.mark.parametrize("data_type", ALL_TYPES, ids=lambda t: t.name)
class TestCommonContract:
    def test_initial_state_is_stable(self, data_type):
        assert data_type.initial_state() == data_type.initial_state()

    def test_unknown_operator_rejected_by_apply(self, data_type):
        with pytest.raises(ValueError):
            data_type.apply(data_type.initial_state(), Operator("no_such_operator"))

    def test_unknown_operator_rejected_by_check(self, data_type):
        with pytest.raises(ValueError):
            data_type.check_operator(Operator("no_such_operator"))

    def test_apply_is_pure(self, data_type):
        state = data_type.initial_state()
        # Applying the same operator twice from the same state gives the same
        # result both times.
        probe = {
            "register": RegisterType.write(1),
            "counter": CounterType.increment(),
            "gset": GSetType.insert("x"),
            "directory": DirectoryType.create("n"),
            "appendlog": AppendLogType.append("x"),
            "queue": QueueType.enqueue("x"),
            "bank": BankAccountType.deposit(5),
        }[data_type.name]
        assert data_type.apply(state, probe) == data_type.apply(state, probe)

    def test_independence_implies_commutativity(self, data_type):
        probes = {
            "register": [RegisterType.read(), RegisterType.write(1), RegisterType.write(2)],
            "counter": [CounterType.read(), CounterType.increment(), CounterType.double()],
            "gset": [GSetType.insert("a"), GSetType.insert("b"), GSetType.contains("a")],
            "directory": [DirectoryType.create("a"), DirectoryType.set_attr("a", "k", 1),
                          DirectoryType.lookup("a")],
            "appendlog": [AppendLogType.append(1), AppendLogType.append(2), AppendLogType.read()],
            "queue": [QueueType.enqueue(1), QueueType.dequeue(), QueueType.peek()],
            "bank": [BankAccountType.deposit(1), BankAccountType.withdraw(1), BankAccountType.balance()],
        }[data_type.name]
        for a in probes:
            for b in probes:
                if data_type.independent(a, b):
                    assert data_type.commute(a, b)


class TestRegister:
    def test_read_initial(self):
        reg = RegisterType(initial="init")
        assert reg.apply(reg.initial_state(), RegisterType.read()) == ("init", "init")

    def test_write_then_read(self):
        reg = RegisterType()
        state, value = reg.apply(reg.initial_state(), RegisterType.write(42))
        assert value == 42
        assert reg.apply(state, RegisterType.read())[1] == 42

    def test_writes_do_not_commute(self):
        reg = RegisterType()
        assert not reg.commute(RegisterType.write(1), RegisterType.write(2))
        assert reg.commute(RegisterType.write(1), RegisterType.write(1))

    def test_read_is_read_only(self):
        reg = RegisterType()
        assert reg.is_read_only(RegisterType.read())
        assert not reg.is_read_only(RegisterType.write(0))

    def test_operator_arity_checked(self):
        reg = RegisterType()
        with pytest.raises(ValueError):
            reg.check_operator(Operator("write"))
        with pytest.raises(ValueError):
            reg.check_operator(Operator("read", (1,)))


class TestCounter:
    def test_increment_and_add(self):
        counter = CounterType()
        state, value = counter.apply(0, CounterType.increment())
        assert (state, value) == (1, 1)
        state, value = counter.apply(state, CounterType.add(5))
        assert (state, value) == (6, 6)

    def test_double(self):
        counter = CounterType(initial=3)
        assert counter.apply(counter.initial_state(), CounterType.double()) == (6, 6)

    def test_paper_increment_double_example(self):
        """Section 10.3's motivating example: from 1, the two orders differ."""
        counter = CounterType(initial=1)
        inc_then_double = counter.outcome([CounterType.increment(), CounterType.double()])
        double_then_inc = counter.outcome([CounterType.double(), CounterType.increment()])
        assert inc_then_double == 4
        assert double_then_inc == 3

    def test_increment_double_do_not_commute(self):
        counter = CounterType()
        assert not counter.commute(CounterType.increment(), CounterType.double())
        assert counter.commute(CounterType.increment(), CounterType.add(3))
        assert counter.commute(CounterType.double(), CounterType.double())

    def test_add_zero_commutes_with_double(self):
        counter = CounterType()
        assert counter.commute(CounterType.add(0), CounterType.double())

    def test_add_requires_integer(self):
        with pytest.raises(ValueError):
            CounterType().check_operator(Operator("add", ("five",)))


class TestGSet:
    def test_insert_and_contains(self):
        gset = GSetType()
        state, created = gset.apply(gset.initial_state(), GSetType.insert("a"))
        assert created is True
        assert gset.apply(state, GSetType.contains("a"))[1] is True
        assert gset.apply(state, GSetType.contains("b"))[1] is False

    def test_duplicate_insert_reports_false(self):
        gset = GSetType()
        state, _ = gset.apply(gset.initial_state(), GSetType.insert("a"))
        _, created = gset.apply(state, GSetType.insert("a"))
        assert created is False

    def test_size_and_snapshot(self):
        gset = GSetType()
        state, _ = apply_sequence(gset, [GSetType.insert("a"), GSetType.insert("b")])
        assert gset.apply(state, GSetType.size())[1] == 2
        assert gset.apply(state, GSetType.snapshot())[1] == frozenset({"a", "b"})

    def test_inserts_commute(self):
        gset = GSetType()
        assert gset.commute(GSetType.insert("a"), GSetType.insert("b"))
        assert gset.commute(GSetType.insert("a"), GSetType.insert("a"))

    def test_insert_of_distinct_elements_independent(self):
        gset = GSetType()
        assert gset.independent(GSetType.insert("a"), GSetType.insert("b"))
        assert not gset.independent(GSetType.insert("a"), GSetType.insert("a"))


class TestDirectory:
    def test_create_lookup_roundtrip(self):
        directory = DirectoryType()
        state, created = directory.apply(directory.initial_state(), DirectoryType.create("www"))
        assert created is True
        state, ok = directory.apply(state, DirectoryType.set_attr("www", "ip", "10.0.0.1"))
        assert ok is True
        _, attrs = directory.apply(state, DirectoryType.lookup("www"))
        assert dict(attrs) == {"ip": "10.0.0.1"}

    def test_lookup_missing_is_none(self):
        directory = DirectoryType()
        assert directory.apply(directory.initial_state(), DirectoryType.lookup("nope"))[1] is None

    def test_set_attr_on_missing_name_is_none(self):
        directory = DirectoryType()
        _, result = directory.apply(directory.initial_state(), DirectoryType.set_attr("x", "a", 1))
        assert result is None

    def test_remove(self):
        directory = DirectoryType()
        state, _ = directory.apply(directory.initial_state(), DirectoryType.create("www"))
        state, existed = directory.apply(state, DirectoryType.remove("www"))
        assert existed is True
        assert directory.apply(state, DirectoryType.lookup("www"))[1] is None

    def test_list_names_sorted(self):
        directory = DirectoryType()
        state, _ = apply_sequence(
            directory, [DirectoryType.create("b"), DirectoryType.create("a")]
        )
        assert directory.apply(state, DirectoryType.list_names())[1] == ("a", "b")

    def test_updates_on_distinct_names_commute(self):
        directory = DirectoryType()
        assert directory.commute(DirectoryType.create("a"), DirectoryType.create("b"))
        assert directory.commute(
            DirectoryType.set_attr("a", "k", 1), DirectoryType.set_attr("b", "k", 2)
        )

    def test_conflicting_set_attr_does_not_commute(self):
        directory = DirectoryType()
        assert not directory.commute(
            DirectoryType.set_attr("a", "k", 1), DirectoryType.set_attr("a", "k", 2)
        )
        assert directory.commute(
            DirectoryType.set_attr("a", "k1", 1), DirectoryType.set_attr("a", "k2", 2)
        )


class TestAppendLog:
    def test_append_reports_index(self):
        log = AppendLogType()
        state, index0 = log.apply(log.initial_state(), AppendLogType.append("x"))
        state, index1 = log.apply(state, AppendLogType.append("y"))
        assert (index0, index1) == (0, 1)
        assert log.apply(state, AppendLogType.read())[1] == ("x", "y")

    def test_last_and_length(self):
        log = AppendLogType()
        assert log.apply(log.initial_state(), AppendLogType.last())[1] is None
        state, _ = log.apply(log.initial_state(), AppendLogType.append("a"))
        assert log.apply(state, AppendLogType.last())[1] == "a"
        assert log.apply(state, AppendLogType.length())[1] == 1

    def test_appends_do_not_commute(self):
        log = AppendLogType()
        assert not log.commute(AppendLogType.append("a"), AppendLogType.append("b"))


class TestQueue:
    def test_fifo_order(self):
        queue = QueueType()
        state, _ = apply_sequence(queue, [QueueType.enqueue(1), QueueType.enqueue(2)])
        state, head = queue.apply(state, QueueType.dequeue())
        assert head == 1
        assert queue.apply(state, QueueType.peek())[1] == 2

    def test_dequeue_empty_returns_none(self):
        queue = QueueType()
        state, head = queue.apply(queue.initial_state(), QueueType.dequeue())
        assert head is None
        assert state == ()

    def test_length(self):
        queue = QueueType()
        state, length = queue.apply(queue.initial_state(), QueueType.enqueue("a"))
        assert length == 1
        assert queue.apply(state, QueueType.length())[1] == 1


class TestBankAccount:
    def test_deposit_and_balance(self):
        bank = BankAccountType(initial=10)
        state, balance = bank.apply(bank.initial_state(), BankAccountType.deposit(5))
        assert balance == 15
        assert bank.apply(state, BankAccountType.balance())[1] == 15

    def test_withdraw_insufficient_funds_rejected(self):
        bank = BankAccountType()
        state, result = bank.apply(0, BankAccountType.withdraw(5))
        assert result is None
        assert state == 0

    def test_withdraw_success(self):
        bank = BankAccountType()
        state, result = bank.apply(10, BankAccountType.withdraw(4))
        assert (state, result) == (6, 6)

    def test_deposits_commute_withdrawals_do_not(self):
        bank = BankAccountType()
        assert bank.commute(BankAccountType.deposit(1), BankAccountType.deposit(2))
        assert not bank.commute(BankAccountType.deposit(5), BankAccountType.withdraw(5))

    def test_negative_amounts_rejected(self):
        bank = BankAccountType()
        with pytest.raises(ValueError):
            bank.check_operator(Operator("deposit", (-1,)))
        with pytest.raises(ValueError):
            BankAccountType(initial=-3)


class TestApplySequence:
    def test_collects_all_values(self):
        counter = CounterType()
        final, values = apply_sequence(
            counter, [CounterType.increment(), CounterType.double(), CounterType.read()]
        )
        assert final == 2
        assert values == [1, 2, 2]

    def test_outcome_and_value_of_last(self):
        counter = CounterType()
        ops = [CounterType.increment(), CounterType.increment()]
        assert counter.outcome(ops) == 2
        assert counter.value_of_last(ops) == 2
        with pytest.raises(ValueError):
            counter.value_of_last([])
