"""The binary wire codec: round-trip identity, determinism, edge cases.

Three layers of guarantees, each pinned separately:

* **Round-trip identity** — ``decode(encode(m))`` reconstructs every message
  kind field-for-field (``Checkpoint``/``CheckpointAdvert``/``OpIdSummary``
  deliberately have no ``__eq__``, so those compare structurally).
* **Determinism** — same message, same bytes, independent of insertion
  order and ``PYTHONHASHSEED``: the digests over the canonical encoding are
  meaningful identities (a pinned fixture digest is asserted under two
  different hash seeds in a subprocess).
* **Edge cases** — varint/zigzag boundaries, interval delta-packing on
  adjacent/sparse/huge intervals, malformed-frame rejection.

Hypothesis property tests drive randomly generated values and summaries
through the full encode/decode path.
"""

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithm.checkpoint import Checkpoint, CheckpointAdvert, OpIdSummary
from repro.algorithm.labels import Label
from repro.algorithm.messages import (
    CheckpointTransferMessage,
    GossipMessage,
    PullRequestMessage,
    RequestMessage,
    ResponseMessage,
)
from repro.common import INFINITY, OperationId
from repro.core.operations import make_operation
from repro.datatypes.base import Operator
from repro.net.codec import (
    FrameError,
    decode_frame,
    encode_frame,
    encode_frame_detailed,
    encode_message,
    encode_varint,
    frame_digest,
    json_frame,
    message_digest,
    unzigzag,
    zigzag,
)

# --------------------------------------------------------------------------- #
# Fixtures
# --------------------------------------------------------------------------- #


def op(client="c0", seqno=1, name="add", args=(1,), prev=(), strict=False):
    return make_operation(
        Operator(name, tuple(args)),
        OperationId(client, seqno),
        prev=[OperationId(c, s) for c, s in prev],
        strict=strict,
    )


def sample_checkpoint():
    ids = OpIdSummary({"c0": [(1, 4)], "c1": [(1, 2), (5, 7)]})
    values = {
        OperationId("c0", 1): 1,
        OperationId("c0", 2): None,
        OperationId("c1", 5): "x",
    }
    return Checkpoint(
        base_state=7, frontier=Label(9, "r1"), ids=ids, values=values
    )


def sample_gossip(**overrides):
    x0, x1 = op(seqno=1), op("c1", 3, "read", (), prev=((("c1", 2)),), strict=True)
    fields = dict(
        sender="r0",
        received=frozenset([x0, x1]),
        done=frozenset([x0]),
        labels={x0.id: Label(4, "r0"), x1.id: Label(5, "r2")},
        stable=frozenset([x0]),
        epoch=2,
        stream=1,
        seqno=9,
        ack=4,
        ack_epoch=1,
        ack_stream=0,
        is_delta=True,
        sent_at=12.5,
    )
    fields.update(overrides)
    return GossipMessage(**fields)


def assert_summary_equal(a: OpIdSummary, b: OpIdSummary):
    assert a.ranges == b.ranges
    assert a.count == b.count


def assert_checkpoint_equal(a: Checkpoint, b: Checkpoint):
    assert a.base_state == b.base_state
    assert a.frontier == b.frontier
    assert_summary_equal(a.ids, b.ids)
    # Value order IS part of the contract: insertion order = eviction order.
    assert list(a.values.items()) == list(b.values.items())
    assert a.digest() == b.digest()


# --------------------------------------------------------------------------- #
# Round trips, per kind
# --------------------------------------------------------------------------- #


class TestRoundTrips:
    def test_request(self):
        message = RequestMessage(op(prev=(("c9", 4), ("c0", 1)), strict=True))
        (decoded,) = decode_frame(encode_message(message))
        assert decoded == message

    def test_response_and_stale_nack(self):
        ok = ResponseMessage(op(), value=41, sender="r1")
        nack = ResponseMessage(op(), value=None, stale=True, sender="r2")
        decoded = decode_frame(encode_frame([ok, nack]))
        assert decoded == [ok, nack]

    def test_plain_full_gossip(self):
        message = sample_gossip(
            is_delta=False, seqno=None, ack=None, ack_epoch=None,
            ack_stream=None, sent_at=None,
        )
        (decoded,) = decode_frame(encode_message(message))
        assert decoded == message

    def test_delta_gossip_with_ack_fields(self):
        message = sample_gossip()
        (decoded,) = decode_frame(encode_message(message))
        assert decoded == message
        assert decoded.is_delta and decoded.seqno == 9 and decoded.ack == 4
        assert decoded.sent_at == 12.5
        # The basis is receiver-side knowledge, never transmitted.
        assert decoded.basis is None

    def test_gossip_with_checkpoint_body(self):
        message = sample_gossip(checkpoint=sample_checkpoint(), is_delta=False,
                                seqno=None, ack=None, ack_epoch=None,
                                ack_stream=None)
        (decoded,) = decode_frame(encode_message(message))
        assert_checkpoint_equal(decoded.checkpoint, message.checkpoint)
        assert decoded.advert is None

    def test_gossip_with_advert(self):
        checkpoint = sample_checkpoint()
        advert = CheckpointAdvert(
            frontier=checkpoint.frontier, digest=checkpoint.digest(),
            ids=checkpoint.ids,
        )
        message = sample_gossip(advert=advert)
        (decoded,) = decode_frame(encode_message(message))
        assert decoded.advert.frontier == advert.frontier
        assert decoded.advert.digest == advert.digest
        assert_summary_equal(decoded.advert.ids, advert.ids)
        assert decoded.checkpoint is None

    def test_pull(self):
        message = PullRequestMessage(
            requester="r2", target="r0", digest="ab12" * 4,
            frontier=Label(17, "r0"), have_frontier=Label(3, "r2"),
        )
        (decoded,) = decode_frame(encode_message(message))
        assert decoded == message
        bare = PullRequestMessage("r2", "r0", "00ff", Label(1, "r0"))
        (decoded,) = decode_frame(encode_message(bare))
        assert decoded == bare and decoded.have_frontier is None

    def test_transfer_chunks(self):
        checkpoint = sample_checkpoint()
        final = CheckpointTransferMessage(
            sender="r0", requester="r2", epoch=3, digest=checkpoint.digest(),
            frontier=checkpoint.frontier, ids=checkpoint.ids,
            values_chunk={OperationId("c1", 5): "x"},
            chunk_index=1, chunk_count=2, base_state=7,
        )
        (decoded,) = decode_frame(encode_message(final))
        assert (decoded.sender, decoded.requester, decoded.epoch) == ("r0", "r2", 3)
        assert decoded.digest == final.digest
        assert decoded.frontier == final.frontier
        assert_summary_equal(decoded.ids, final.ids)
        assert list(decoded.values_chunk.items()) == list(final.values_chunk.items())
        assert decoded.carries_state and decoded.base_state == 7

    def test_mixed_coalesced_frame_with_size_attribution(self):
        messages = [
            RequestMessage(op()),
            sample_gossip(),
            ResponseMessage(op(), value=2),
        ]
        frame, sizes = encode_frame_detailed(messages)
        assert len(sizes) == 3
        # Per-payload sizes partition the frame minus header/table overhead.
        assert sum(sizes) < len(frame)
        assert decode_frame(frame) == messages

    def test_value_zoo_round_trips_inside_operator_args(self):
        # Operator args must stay hashable; unhashable values (dicts) are
        # exercised through response values below.
        zoo = (
            None, True, False, 0, -1, 2**40, 3.5, float("-0.0"), "déjà", b"\x00\xff",
            INFINITY, (1, (2, "x")), frozenset([3, 1, 2]),
            OperationId("cz", 9), Label(1, "r0"), Operator("nested", (7,)),
        )
        message = RequestMessage(op(args=zoo))
        (decoded,) = decode_frame(encode_message(message))
        assert decoded.operation.op.args == zoo
        response = ResponseMessage(op(), value={"b": 1, "a": (None, {"k": 2})})
        (decoded,) = decode_frame(encode_message(response))
        assert decoded == response

    def test_plain_set_and_frozenset_types_survive_decode(self):
        # ``set(x) == frozenset(x)`` in Python, so equality round-trip checks
        # cannot see a frozenset coming back where a plain set went in: the
        # types themselves are the contract here.
        message = ResponseMessage(op(), value=({"a", "b"}, frozenset({"a", "b"})))
        (decoded,) = decode_frame(encode_message(message))
        mutable, frozen = decoded.value
        assert type(mutable) is set and mutable == {"a", "b"}
        assert type(frozen) is frozenset and frozen == {"a", "b"}


# --------------------------------------------------------------------------- #
# Determinism and digests
# --------------------------------------------------------------------------- #

_DIGEST_FIXTURE = """
import sys
sys.path.insert(0, "src")
from tests.test_net_codec import fixture_digests
print(fixture_digests())
"""


def fixture_digests():
    gossip = sample_gossip(checkpoint=sample_checkpoint())
    frame = encode_frame([RequestMessage(op()), gossip])
    return message_digest(gossip), frame_digest(frame)


class TestDeterminism:
    def test_set_and_dict_iteration_order_cannot_leak(self):
        xs = [op("c%d" % i, i + 1) for i in range(8)]
        forward = GossipMessage(
            sender="r0",
            received=frozenset(xs),
            done=frozenset(xs[:4]),
            labels={x.id: Label(i, "r1") for i, x in enumerate(xs)},
            stable=frozenset(xs[:2]),
        )
        backward = GossipMessage(
            sender="r0",
            received=frozenset(reversed(xs)),
            done=frozenset(reversed(xs[:4])),
            labels={x.id: Label(i, "r1") for i, x in reversed(list(enumerate(xs)))},
            stable=frozenset(reversed(xs[:2])),
        )
        assert encode_message(forward) == encode_message(backward)

    @pytest.mark.parametrize("hashseed", ["0", "4242"])
    def test_digests_stable_across_hash_seeds(self, hashseed):
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", _DIGEST_FIXTURE],
            capture_output=True, text=True, env=env, check=True,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert out.stdout.strip() == repr(fixture_digests())

    def test_set_valued_checkpoint_digest_survives_decode(self):
        # CPython set iteration order depends on insertion history when
        # elements collide (9 and 1 both land in slot 1 of an 8-slot table),
        # so ``repr(frozenset([9, 1])) != repr(frozenset([1, 9]))``.  A
        # decoded set is rebuilt in canonical encoding order, which means a
        # digest over raw ``repr`` would reject every legitimate set-valued
        # checkpoint at the codec boundary; digests use ``canonical_repr``.
        ids = OpIdSummary({"c0": [(2, 2)]})
        forward = Checkpoint(
            base_state=frozenset([9, 1]), frontier=Label(3, "r0"), ids=ids,
            values={OperationId("c0", 2): frozenset([9, 1])},
        )
        backward = Checkpoint(
            base_state=frozenset([1, 9]), frontier=Label(3, "r0"), ids=ids,
            values={OperationId("c0", 2): frozenset([1, 9])},
        )
        assert forward.digest() == backward.digest()
        gossip = sample_gossip(checkpoint=forward)
        (decoded,) = decode_frame(encode_message(gossip))
        assert decoded.checkpoint.digest() == forward.digest()

    def test_binary_is_smaller_than_json(self):
        gossip = sample_gossip(checkpoint=sample_checkpoint())
        messages = [RequestMessage(op()), gossip, ResponseMessage(op(), 1)]
        assert len(encode_frame(messages)) * 3 <= len(json_frame(messages))


# --------------------------------------------------------------------------- #
# Varint / interval edge cases
# --------------------------------------------------------------------------- #


def read_varint(data):
    shift = value = index = 0
    while True:
        byte = data[index]
        value |= (byte & 0x7F) << shift
        shift += 7
        index += 1
        if not byte & 0x80:
            return value, index


class TestVarints:
    @pytest.mark.parametrize(
        "value", [0, 1, 127, 128, 129, 16383, 16384, 2**31, 2**63, 2**80]
    )
    def test_varint_round_trip_and_minimality(self, value):
        encoded = encode_varint(value)
        decoded, consumed = read_varint(encoded)
        assert decoded == value and consumed == len(encoded)
        # LEB128 minimality: 7 payload bits per byte.
        assert len(encoded) == max(1, (value.bit_length() + 6) // 7)

    @pytest.mark.parametrize("value", [0, -1, 1, -2, 2, 63, -64, -(2**40), 2**40])
    def test_zigzag_is_a_bijection_onto_unsigned(self, value):
        assert unzigzag(zigzag(value)) == value
        assert zigzag(value) >= 0

    @pytest.mark.parametrize(
        "ranges",
        [
            {},
            {"c0": [(0, 0)]},
            {"c0": [(1, 1), (3, 3), (5, 5)]},
            {"c0": [(1, 10**9)], "c1": [(5, 5), (10**6, 10**6 + 3)]},
            {"c0": [(-4, -2), (0, 2)]},  # negative seqnos survive zigzag
        ],
    )
    def test_interval_packing_round_trips(self, ranges):
        summary = OpIdSummary(ranges)
        message = CheckpointTransferMessage(
            sender="r0", requester="r1", epoch=0, digest="00",
            frontier=Label(0, "r0"), ids=summary, values_chunk={},
            chunk_index=0, chunk_count=1, base_state=0,
        )
        (decoded,) = decode_frame(encode_message(message))
        assert_summary_equal(decoded.ids, summary)


# --------------------------------------------------------------------------- #
# Malformed frames
# --------------------------------------------------------------------------- #


class TestFrameErrors:
    def test_bad_magic(self):
        frame = bytearray(encode_message(RequestMessage(op())))
        frame[0] ^= 0xFF
        with pytest.raises(FrameError):
            decode_frame(bytes(frame))

    def test_unknown_version(self):
        frame = bytearray(encode_message(RequestMessage(op())))
        frame[2] = 0x7F
        with pytest.raises(FrameError):
            decode_frame(bytes(frame))

    def test_truncation_at_every_prefix_never_crashes(self):
        frame = encode_message(sample_gossip(checkpoint=sample_checkpoint()))
        for cut in range(len(frame)):
            with pytest.raises(FrameError):
                decode_frame(frame[:cut])

    def test_trailing_garbage_rejected(self):
        frame = encode_message(RequestMessage(op()))
        with pytest.raises(FrameError):
            decode_frame(frame + b"\x00")


# --------------------------------------------------------------------------- #
# Property tests
# --------------------------------------------------------------------------- #

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
    st.binary(max_size=12),
    st.just(INFINITY),
    st.builds(OperationId, st.sampled_from(["ca", "cb"]), st.integers(0, 99)),
    st.builds(Label, st.integers(0, 999), st.sampled_from(["r0", "r1"])),
)
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.tuples(children, children),
        st.frozensets(scalars, max_size=4),  # set elements must be hashable
        st.dictionaries(st.text(max_size=6), children, max_size=4),
    ),
    max_leaves=12,
)


@settings(max_examples=150, deadline=None)
@given(values)
def test_any_value_round_trips_through_response_values(value):
    message = ResponseMessage(op(), value=value)
    (decoded,) = decode_frame(encode_message(message))
    assert decoded == message


@settings(max_examples=150, deadline=None)
@given(
    st.dictionaries(
        st.sampled_from(["c0", "c1", "c2"]),
        st.lists(
            st.tuples(st.integers(0, 500), st.integers(0, 80)).map(
                lambda pair: (pair[0], pair[0] + pair[1])
            ),
            max_size=6,
        ),
        max_size=3,
    )
)
def test_any_summary_round_trips(ranges):
    summary = OpIdSummary(ranges)
    message = CheckpointTransferMessage(
        sender="r0", requester="r1", epoch=1, digest="aa",
        frontier=Label(1, "r0"), ids=summary, values_chunk={},
        chunk_index=0, chunk_count=1,
    )
    (decoded,) = decode_frame(encode_message(message))
    assert_summary_equal(decoded.ids, summary)


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["c0", "c1"]),
            st.integers(1, 60),
            st.booleans(),
            st.integers(0, 30),
        ),
        min_size=1,
        max_size=12,
        unique_by=lambda item: (item[0], item[1]),
    )
)
def test_any_gossip_population_round_trips(population):
    xs = [op(c, n, strict=strict) for c, n, strict, _rank in population]
    message = GossipMessage(
        sender="r1",
        received=frozenset(xs),
        done=frozenset(x for x, (_, _, _, rank) in zip(xs, population) if rank % 2),
        labels={
            x.id: Label(rank, "r0")
            for x, (_, _, _, rank) in zip(xs, population)
            if rank % 3
        },
        stable=frozenset(
            x for x, (_, _, _, rank) in zip(xs, population) if rank % 4 == 0
        ),
    )
    (decoded,) = decode_frame(encode_message(message))
    assert decoded == message
