"""Tests for the sharded multi-object service layer
(:mod:`repro.service`): the keyed data-type adapter, the consistent-hash
router, and the sharded algorithm frontend."""

import random

import pytest

from repro.algorithm.memoized import MemoizedReplicaCore
from repro.common import ConfigurationError
from repro.datatypes import CounterType, GSetType, RegisterType
from repro.service.frontend import ShardedFrontend
from repro.service.keyed import KeyedStore
from repro.service.router import ShardRouter, stable_hash


class TestKeyedStore:
    def test_independent_keys_evolve_independently(self):
        store = KeyedStore(CounterType())
        state = store.initial_state()
        state, first = store.apply(state, KeyedStore.at("a", CounterType.increment()))
        state, second = store.apply(state, KeyedStore.at("b", CounterType.add(5)))
        state, third = store.apply(state, KeyedStore.at("a", CounterType.increment()))
        assert (first, second, third) == (1, 5, 2)
        assert store.lookup(state, "a") == 2
        assert store.lookup(state, "b") == 5

    def test_missing_key_reads_base_initial_state(self):
        store = KeyedStore(RegisterType())
        _, value = store.apply(store.initial_state(), KeyedStore.at("never", RegisterType.read()))
        assert value == RegisterType().initial_state()
        assert store.lookup(store.initial_state(), "never") == RegisterType().initial_state()

    def test_read_only_operator_does_not_materialize_keys(self):
        # Regression: is_read_only promises the state is unchanged, so a read
        # on an absent key must not create a phantom entry (which would make
        # keys() depend on whether/where reads executed and break the
        # pointwise-lifted Section 10.3 predicates).
        store = KeyedStore(CounterType())
        state = store.initial_state()
        same, _ = store.apply(state, KeyedStore.at("ghost", CounterType.read()))
        assert same == state
        state, _ = store.apply(state, KeyedStore.at("real", CounterType.increment()))
        after_read, _ = store.apply(state, KeyedStore.at("ghost", CounterType.read()))
        assert after_read == state
        _, keys = store.apply(after_read, KeyedStore.keys_op())
        assert keys == ("real",)

    def test_keys_operator_reports_written_keys(self):
        store = KeyedStore(CounterType())
        state = store.initial_state()
        state, _ = store.apply(state, KeyedStore.at("x", CounterType.increment()))
        state, _ = store.apply(state, KeyedStore.at("y", CounterType.add(2)))
        state, _ = store.apply(state, KeyedStore.at("z", CounterType.read()))  # no write
        same_state, keys = store.apply(state, KeyedStore.keys_op())
        assert same_state == state  # keys() is the identity on states
        assert keys == ("x", "y")

    def test_states_are_hashable_and_order_canonical(self):
        store = KeyedStore(CounterType())
        one = store.initial_state()
        for key in ("b", "a"):
            one, _ = store.apply(one, KeyedStore.at(key, CounterType.increment()))
        other = store.initial_state()
        for key in ("a", "b"):
            other, _ = store.apply(other, KeyedStore.at(key, CounterType.increment()))
        assert one == other
        assert hash(one) == hash(other)

    def test_check_operator_rejects_malformed(self):
        store = KeyedStore(CounterType())
        store.check_operator(KeyedStore.at("k", CounterType.increment()))
        store.check_operator(KeyedStore.keys_op())
        from repro.datatypes import Operator

        with pytest.raises(ValueError):
            store.check_operator(Operator("frobnicate"))
        with pytest.raises(ValueError):
            store.check_operator(Operator("at", ("only-key",)))
        with pytest.raises(ValueError):
            store.check_operator(Operator("at", (42, CounterType.increment())))
        with pytest.raises(ValueError):
            store.check_operator(Operator("at", ("k", "not-an-operator")))
        with pytest.raises(ValueError):
            # Inner operator is validated by the base type.
            store.check_operator(KeyedStore.at("k", Operator("bogus")))
        with pytest.raises(ValueError):
            store.check_operator(Operator("keys", ("extra",)))

    def test_key_of_and_inner_of(self):
        op = KeyedStore.at("shard-me", CounterType.read())
        assert KeyedStore.key_of(op) == "shard-me"
        assert KeyedStore.inner_of(op) == CounterType.read()
        assert KeyedStore.key_of(KeyedStore.keys_op()) is None
        with pytest.raises(ValueError):
            KeyedStore.inner_of(KeyedStore.keys_op())

    def test_commutativity_lifts_pointwise(self):
        store = KeyedStore(CounterType())
        inc_a = KeyedStore.at("a", CounterType.increment())
        inc_b = KeyedStore.at("b", CounterType.increment())
        double_a = KeyedStore.at("a", CounterType.double())
        read_a = KeyedStore.at("a", CounterType.read())
        # Different keys always commute and are independent.
        assert store.commute(inc_a, inc_b)
        assert store.independent(inc_a, inc_b)
        # Same key delegates to the base type.
        assert store.commute(inc_a, inc_a)
        assert not store.commute(inc_a, double_a)
        assert not store.oblivious(read_a, inc_a)
        assert store.is_read_only(read_a)
        assert not store.is_read_only(inc_a)
        assert store.is_read_only(KeyedStore.keys_op())
        # keys() state-commutes with writes but is not oblivious to them.
        assert store.commute(KeyedStore.keys_op(), inc_a)
        assert not store.oblivious(KeyedStore.keys_op(), inc_a)
        assert store.oblivious(KeyedStore.keys_op(), read_a)
        assert store.oblivious(inc_a, KeyedStore.keys_op())

    def test_outcome_matches_per_key_replay(self):
        store = KeyedStore(GSetType())
        operators = [
            KeyedStore.at("evens", GSetType.insert(2)),
            KeyedStore.at("odds", GSetType.insert(1)),
            KeyedStore.at("evens", GSetType.insert(4)),
        ]
        state = store.outcome(operators)
        assert store.lookup(state, "evens") == GSetType().outcome(
            [GSetType.insert(2), GSetType.insert(4)]
        )
        assert store.lookup(state, "odds") == GSetType().outcome([GSetType.insert(1)])


class TestShardRouter:
    def test_routing_is_deterministic_and_total(self):
        router = ShardRouter.for_count(4)
        again = ShardRouter.for_count(4)
        keys = [f"user:{i}" for i in range(500)]
        assert [router.shard_for(k) for k in keys] == [again.shard_for(k) for k in keys]
        assert set(router.spread(keys)) == set(router.shard_ids)

    def test_stable_hash_is_process_independent(self):
        # Pinned value: must never depend on PYTHONHASHSEED.
        assert stable_hash("k0") == stable_hash("k0")
        assert stable_hash("k0") != stable_hash("k1")

    def test_spread_is_reasonably_balanced(self):
        router = ShardRouter.for_count(4)
        counts = router.spread(f"k{i}" for i in range(2000))
        mean = 2000 / 4
        assert all(0.5 * mean <= count <= 1.5 * mean for count in counts.values())

    def test_adding_a_shard_moves_a_minority_of_keys(self):
        # The consistent-hashing contract: going from n to n+1 shards
        # relocates roughly 1/(n+1) of the keyspace, not all of it.
        three = ShardRouter.for_count(3)
        four = ShardRouter.for_count(4)
        keys = [f"k{i}" for i in range(1000)]
        moved = sum(1 for k in keys if three.shard_for(k) != four.shard_for(k))
        assert moved < 500
        # Keys that stay put keep their shard identity.
        stayed = [k for k in keys if four.shard_for(k) in three.shard_ids]
        assert any(three.shard_for(k) == four.shard_for(k) for k in stayed)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ShardRouter([])
        with pytest.raises(ConfigurationError):
            ShardRouter(["s0", "s0"])
        with pytest.raises(ConfigurationError):
            ShardRouter(["s0"], virtual_nodes=0)
        with pytest.raises(ConfigurationError):
            ShardRouter.for_count(0)
        assert len(ShardRouter.for_count(1)) == 1


class TestShardedFrontend:
    def make_frontend(self, **kwargs):
        defaults = dict(
            num_shards=3, replicas_per_shard=2, client_ids=["alice", "bob"]
        )
        defaults.update(kwargs)
        return ShardedFrontend(CounterType(), **defaults)

    def test_requests_route_by_key_and_responses_arrive(self):
        frontend = self.make_frontend()
        rng = random.Random(7)
        operations = []
        for index in range(9):
            client = "alice" if index % 2 == 0 else "bob"
            operations.append(
                frontend.request(client, f"k{index % 3}", CounterType.increment())
            )
        frontend.run_random(rng, 500)
        frontend.drain(rng)
        assert frontend.outstanding_operations() == 0
        # Each key's increments all landed on one shard, so the final read
        # per key equals the number of increments on it.
        for key in ("k0", "k1", "k2"):
            read = frontend.request("alice", key, CounterType.read(),
                                    prev=[frontend.last_operation_on(key)], strict=True)
            frontend.run_random(rng, 300)
            frontend.drain(rng)
            assert frontend.value_of(read) == 3

    def test_same_key_same_shard(self):
        frontend = self.make_frontend()
        first = frontend.request("alice", "stable-key", CounterType.increment())
        second = frontend.request("bob", "stable-key", CounterType.increment())
        assert frontend.shard_of_operation(first.id) == frontend.shard_of_operation(second.id)
        assert frontend.key_of_operation(first.id) == "stable-key"
        assert frontend.shard_of("stable-key") == frontend.shard_of_operation(first.id)

    def test_cross_shard_prev_is_rejected(self):
        frontend = self.make_frontend(num_shards=4)
        # Find two keys living on different shards.
        keys = [f"k{i}" for i in range(64)]
        by_shard = {}
        for key in keys:
            by_shard.setdefault(frontend.shard_of(key), key)
        assert len(by_shard) >= 2
        key_a, key_b = list(by_shard.values())[:2]
        op_a = frontend.request("alice", key_a, CounterType.increment())
        with pytest.raises(ConfigurationError):
            frontend.request("alice", key_b, CounterType.increment(), prev=[op_a.id])
        # Unknown prev is also rejected.
        from repro.common import OperationId

        with pytest.raises(ConfigurationError):
            frontend.request("alice", key_a, CounterType.increment(),
                             prev=[OperationId("alice", 999)])

    def test_operation_ids_unique_across_shards(self):
        frontend = self.make_frontend(num_shards=4)
        ids = [
            frontend.request("alice", f"k{i}", CounterType.increment()).id
            for i in range(20)
        ]
        assert len(set(ids)) == 20

    def test_invariants_and_traces_hold_per_shard(self):
        for delta in (False, True):
            frontend = self.make_frontend(delta_gossip=delta)
            rng = random.Random(11)
            for index in range(12):
                key = f"k{index % 4}"
                prev = [frontend.last_operation_on(key)] if rng.random() < 0.5 and \
                    frontend.last_operation_on(key) else []
                frontend.request(
                    "alice" if rng.random() < 0.5 else "bob", key,
                    CounterType.increment() if rng.random() < 0.7 else CounterType.read(),
                    prev=prev, strict=rng.random() < 0.3,
                )
                frontend.run_random(rng, 30)
                frontend.check_invariants()
            frontend.run_random(rng, 300)
            frontend.drain(rng)
            frontend.check_invariants()
            frontend.check_traces()
            assert frontend.outstanding_operations() == 0

    def test_eventual_orders_respect_per_key_prev_chains(self):
        frontend = self.make_frontend()
        rng = random.Random(3)
        chains = {}
        for index in range(10):
            key = f"k{index % 2}"
            prev = [chains[key]] if key in chains else []
            op = frontend.request("alice", key, CounterType.increment(), prev=prev)
            chains[key] = op.id
        frontend.run_random(rng, 400)
        frontend.drain(rng)
        for shard, order in frontend.eventual_orders().items():
            position = {op_id: i for i, op_id in enumerate(order)}
            system = frontend.systems[shard]
            for op in system.users.requested:
                for dep in op.prev:
                    assert position[dep] < position[op.id]

    def test_custom_replica_factory_is_forwarded(self):
        frontend = self.make_frontend(replica_factory=MemoizedReplicaCore)
        for system in frontend.systems.values():
            assert all(
                isinstance(replica, MemoizedReplicaCore)
                for replica in system.replicas.values()
            )

    def test_unknown_client_rejected(self):
        frontend = self.make_frontend()
        with pytest.raises(ConfigurationError):
            frontend.request("mallory", "k0", CounterType.increment())
