"""Advert/pull checkpoint gossip (bounded steady-state payloads).

The load-bearing property mirrors the delta-gossip and compaction arguments:
an advert only ever *replaces* the eager checkpoint body for receivers that
already hold (or have themselves folded) everything it covers — for them the
advert conveys exactly the stability knowledge the body would have — while a
receiver that is genuinely behind obtains the identical body through a
pull/transfer round trip.  A crash-free advert/pull system driven by the
same seeded scheduler therefore goes through an execution with identical
responses and identical invariant obligations as the eager twin, while its
steady-state full-state payload no longer carries the retained-value ledger
(benchmark E11 quantifies the scaling).

The suite covers: advert wire accounting and digests, transfer chunking and
reassembly, lockstep equivalence against eager shipping (action-level for
every replica variant, simulated, sharded), per-step invariants, and the
adversarial delivery cases — pull lost, transfer lost mid-chunk, sender
crash (incarnation bump) between advert and transfer, digest moved on by
concurrent compaction — each converging with clean invariants.
"""

import random

import pytest

from repro.algorithm.checkpoint import Checkpoint, CompactionPolicy
from repro.algorithm.commute import CommuteReplicaCore
from repro.algorithm.labels import LabelGenerator
from repro.algorithm.memoized import MemoizedReplicaCore
from repro.algorithm.messages import checkpoint_transfers
from repro.algorithm.replica import IncrementalReplicaCore, TransferAssembly
from repro.algorithm.system import AlgorithmSystem
from repro.common import ConfigurationError, OperationIdGenerator
from repro.core.operations import make_operation
from repro.datatypes import CounterType, GSetType, RegisterType
from repro.service.frontend import ShardedFrontend
from repro.sim.cluster import SimulatedCluster, SimulationParams
from repro.sim.workload import WorkloadSpec, run_workload
from repro.spec.users import SafeUsers
from repro.verification.invariants import AlgorithmInvariantChecker
from repro.verification.serializability import check_system_trace


# --------------------------------------------------------------------------- #
# Advert, digest and transfer-chunk basics                                    #
# --------------------------------------------------------------------------- #


def small_checkpoint(count=5, retention=None, client="c"):
    """A checkpoint folding *count* increments, built directly."""
    data_type = CounterType()
    gen = OperationIdGenerator(client)
    label_gen = LabelGenerator("r1")
    existing = []
    prefix, labels = [], {}
    for _ in range(count):
        op = make_operation(CounterType.increment(), gen.fresh())
        label = label_gen.fresh(existing)
        existing.append(label)
        labels[op.id] = label
        prefix.append(op)
    checkpoint, _ = Checkpoint.empty(data_type.initial_state()).extend(
        prefix, data_type, labels, value_retention=retention
    )
    return checkpoint, prefix


class TestAdvertBasics:
    def test_advert_covers_exactly_the_folded_ids(self):
        checkpoint, prefix = small_checkpoint(7)
        advert = checkpoint.advert()
        assert advert.count == 7
        assert advert.frontier == checkpoint.frontier
        for op in prefix:
            assert advert.covers(op.id)
        assert not advert.covers(make_operation(CounterType.increment(),
                                                OperationIdGenerator("z").fresh()).id)

    def test_advert_wire_size_is_independent_of_history_and_values(self):
        small, _ = small_checkpoint(5)
        large, _ = small_checkpoint(500)
        # One contiguous per-client interval each: identical advert size, in
        # stark contrast to the bodies (which drag the value ledger along).
        assert small.advert().wire_estimate() == large.advert().wire_estimate()
        assert large.wire_estimate() > 100 * large.advert().wire_estimate()

    def test_empty_checkpoint_has_no_advert(self):
        empty = Checkpoint.empty(0)
        assert empty.advert() is None

    def test_digest_is_deterministic_and_content_sensitive(self):
        a, _ = small_checkpoint(5)
        b, _ = small_checkpoint(5)
        c, _ = small_checkpoint(6)
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()

    def test_value_chunks_preserve_ledger_order(self):
        checkpoint, prefix = small_checkpoint(5)
        chunks = checkpoint.value_chunks(2)
        assert [len(chunk) for chunk in chunks] == [2, 2, 1]
        flattened = {}
        for chunk in chunks:
            flattened.update(chunk)
        assert list(flattened) == list(checkpoint.values)
        assert checkpoint.value_chunks(None) == [dict(checkpoint.values)]

    def test_transfer_chunks_reassemble_to_the_original(self):
        checkpoint, _ = small_checkpoint(7)
        transfers = checkpoint_transfers(
            checkpoint, sender="r1", requester="r2", epoch=3, chunk=3
        )
        assert len(transfers) == 3
        assert all(t.digest == checkpoint.digest() for t in transfers)
        assert [t.carries_state for t in transfers] == [False, False, True]
        assembly = TransferAssembly(
            digest=checkpoint.digest(), epoch=3, frontier=checkpoint.frontier,
            chunk_count=len(transfers),
        )
        for transfer in reversed(transfers):  # order must not matter
            assembly.chunks[transfer.chunk_index] = transfer
        assert assembly.complete()
        rebuilt = assembly.assemble()
        assert rebuilt.base_state == checkpoint.base_state
        assert rebuilt.frontier == checkpoint.frontier
        assert dict(rebuilt.values) == dict(checkpoint.values)
        assert rebuilt.digest() == checkpoint.digest()

    def test_incremental_gossip_carries_the_advert(self):
        """The textbook incremental-gossip helper must stay drop-in
        compatible under advert mode: the advert (like the eager checkpoint
        before it) rides on the incremental message."""
        from repro.algorithm.messages import incremental_gossip

        system, _gen, _rng = compacted_system_with_behind_replica()
        r1 = system.replicas["r1"]
        first = r1.make_gossip()
        second = r1.make_gossip()
        delta = incremental_gossip(first, second)
        assert delta.advert is not None
        assert delta.advert == second.advert
        assert delta.checkpoint is None

    def test_chunk_configuration_validation(self):
        system_kwargs = dict(num_replicas=2)
        with pytest.raises(ConfigurationError):
            SimulationParams(checkpoint_chunk=0)
        replica = SimulatedCluster(CounterType(), **system_kwargs).replicas["r0"]
        with pytest.raises(ConfigurationError):
            replica.configure_advert_gossip(True, checkpoint_chunk=0)


# --------------------------------------------------------------------------- #
# Lockstep equivalence: advert/pull vs eager shipping                         #
# --------------------------------------------------------------------------- #


def build_system(advert, factory=None, delta=False, data_type=None, users=None,
                 chunk=None):
    return AlgorithmSystem(
        data_type or CounterType(), ["r1", "r2", "r3"], ["alice", "bob"],
        replica_factory=factory, users=users,
        delta_gossip=delta, full_state_interval=5,
        compaction=CompactionPolicy(min_batch=1),
        advert_gossip=advert, checkpoint_chunk=chunk,
    )


def drive_random(system, seed, requests=8, steps=600, strict_fraction=0.3):
    rng = random.Random(seed)
    clients = list(system.client_ids)
    gens = {c: OperationIdGenerator(c) for c in clients}
    history = []
    for _ in range(requests):
        client = rng.choice(clients)
        operator = rng.choice(
            [CounterType.increment(), CounterType.add(2), CounterType.read()]
        )
        prev = [history[-1].id] if history and rng.random() < 0.5 else []
        op = make_operation(operator, gens[client].fresh(), prev=prev,
                            strict=rng.random() < strict_fraction)
        history.append(op)
        system.request(op)
    system.run_random(rng, steps=steps)
    system.drain(rng)
    system.run_random(rng, steps=steps)
    return system


def gossip_payload(system):
    return sum(ch.sent_payload for ch in system.gossip_channels.values())


class TestAdvertLockstepEquivalence:
    @pytest.mark.parametrize("seed", [0, 3, 11, 29])
    @pytest.mark.parametrize("delta", [False, True], ids=["full", "delta"])
    def test_seeded_executions_are_identical(self, seed, delta):
        eager = drive_random(build_system(advert=False, delta=delta), seed)
        advert = drive_random(build_system(advert=True, delta=delta), seed)

        assert eager.trace.responses == advert.trace.responses
        assert eager.ops() == advert.ops()
        assert eager.eventual_order() == advert.eventual_order()
        folded = sum(r.checkpoint.count for r in advert.replicas.values())
        assert folded > 0
        for rid in eager.replica_ids:
            assert (eager.replicas[rid].checkpoint.count
                    == advert.replicas[rid].checkpoint.count)
        # No replica ever fell behind in a crash-free run, so nothing pulled.
        assert all(not r._pull_queue and not r._transfer_in
                   for r in advert.replicas.values())

    @pytest.mark.parametrize("seed", [0, 11])
    def test_advert_mode_ships_less_payload(self, seed):
        eager = drive_random(build_system(advert=False), seed)
        advert = drive_random(build_system(advert=True), seed)
        assert gossip_payload(advert) < gossip_payload(eager)

    @pytest.mark.parametrize("factory", [IncrementalReplicaCore, MemoizedReplicaCore],
                             ids=["incremental", "memoized"])
    def test_optimized_replicas_agree_under_advert_gossip(self, factory):
        eager = drive_random(build_system(advert=False, factory=factory), seed=17)
        advert = drive_random(build_system(advert=True, factory=factory), seed=17)
        assert eager.trace.responses == advert.trace.responses
        assert sum(r.checkpoint.count for r in advert.replicas.values()) > 0

    def test_commute_replicas_agree_under_advert_gossip(self):
        def commuting_drive(system, seed):
            rng = random.Random(seed)
            gens = {c: OperationIdGenerator(c) for c in system.client_ids}
            for index in range(8):
                client = rng.choice(list(system.client_ids))
                system.request(make_operation(GSetType.insert(index),
                                              gens[client].fresh()))
            system.run_random(rng, steps=600)
            system.drain(rng)
            return system

        eager = commuting_drive(
            build_system(False, factory=CommuteReplicaCore, data_type=GSetType(),
                         users=SafeUsers(GSetType())), 23)
        advert = commuting_drive(
            build_system(True, factory=CommuteReplicaCore, data_type=GSetType(),
                         users=SafeUsers(GSetType())), 23)
        assert eager.trace.responses == advert.trace.responses
        assert sum(r.checkpoint.count for r in advert.replicas.values()) > 0

    def test_invariants_hold_at_every_step(self):
        system = AlgorithmSystem(
            CounterType(), ["r1", "r2"], ["alice"],
            compaction=CompactionPolicy(min_batch=1), advert_gossip=True,
        )
        gen = OperationIdGenerator("alice")
        rng = random.Random(1)
        for index in range(5):
            system.request(
                make_operation(CounterType.increment(), gen.fresh(), strict=(index == 4))
            )
        checker = AlgorithmInvariantChecker(system)
        system.run_random(rng, steps=200, step_hook=checker)
        system.drain(rng)
        checker.check_all()
        assert len(system.trace.responses) == 5
        assert len(system.compaction_ledger.prefix) > 0

    def test_trace_oracle_passes_with_advert_gossip(self):
        system = drive_random(build_system(advert=True, delta=True), seed=13)
        check_system_trace(system, check_nonstrict=False)

    def test_simulation_relation_holds_with_advert_gossip(self):
        from repro.verification.simulation_check import AlgorithmToSpecSimulation

        system = AlgorithmSystem(
            RegisterType(), ["r1", "r2"], ["alice"],
            compaction=CompactionPolicy(min_batch=1), advert_gossip=True,
        )
        sim = AlgorithmToSpecSimulation(system)
        gen = OperationIdGenerator("alice")
        rng = random.Random(2)
        for index in range(4):
            sim.request(make_operation(RegisterType.write(index), gen.fresh(),
                                       strict=(index == 3)))
        sim.run_random(rng, steps=250)
        assert sim.report().steps_checked > 0


# --------------------------------------------------------------------------- #
# Pull-based catch-up under adversarial delivery (action-level)               #
# --------------------------------------------------------------------------- #


def compacted_system_with_behind_replica(chunk=2, requests=6):
    """An advert-mode system in which r1/r2 folded everything while r3 (its
    own compaction off) crashed with volatile memory and recovered — so r3
    is missing the whole compacted prefix and must pull it."""
    system = AlgorithmSystem(
        CounterType(), ["r1", "r2", "r3"], ["alice"],
        compaction=CompactionPolicy(min_batch=1),
        advert_gossip=True, checkpoint_chunk=chunk,
    )
    system.replicas["r3"].configure_compaction(enabled=False)
    gen = OperationIdGenerator("alice")
    rng = random.Random(5)
    operations = [
        make_operation(CounterType.increment(), gen.fresh()) for _ in range(requests)
    ]
    for op in operations:
        system.request(op)
    system.run_random(rng, steps=400)
    system.drain(rng)
    assert system.replicas["r1"].checkpoint.count == requests
    assert system.replicas["r3"].checkpoint.count == 0
    system.replicas["r3"].crash(volatile_memory=True)
    system.replicas["r3"].recover_from_stable_storage()
    return system, gen, rng


def deliver_all(system, channel_key):
    """Deliver every message currently on one gossip channel, in order."""
    channel = system.gossip_channels[channel_key]
    for message in channel.contents():
        system.receive_gossip(channel_key[0], channel_key[1], message)


class TestPullCatchup:
    def test_behind_replica_pulls_and_adopts(self):
        system, _gen, rng = compacted_system_with_behind_replica()
        system.send_gossip("r1", "r3")
        deliver_all(system, ("r1", "r3"))
        # Staleness detected: a pull is on its way back to the advertiser.
        pulls = [m for m in system.gossip_channels[("r3", "r1")].contents()
                 if m.kind == "pull"]
        assert len(pulls) == 1
        assert pulls[0].digest == system.replicas["r1"].checkpoint.digest()
        deliver_all(system, ("r3", "r1"))
        transfers = [m for m in system.gossip_channels[("r1", "r3")].contents()
                     if m.kind == "transfer"]
        assert len(transfers) == 3  # 6 values in chunks of 2
        deliver_all(system, ("r1", "r3"))
        assert system.replicas["r3"].checkpoint.count == 6
        system.drain(rng)
        AlgorithmInvariantChecker(system).check_all()

    def test_transfer_chunks_adopt_only_when_complete_in_any_order(self):
        system, _gen, _rng = compacted_system_with_behind_replica()
        system.send_gossip("r1", "r3")
        deliver_all(system, ("r1", "r3"))
        deliver_all(system, ("r3", "r1"))
        transfers = [m for m in system.gossip_channels[("r1", "r3")].contents()
                     if m.kind == "transfer"]
        r3 = system.replicas["r3"]
        for transfer in reversed(transfers[1:]):
            system.receive_gossip("r1", "r3", transfer)
            assert r3.checkpoint.count == 0  # incomplete: nothing adopted yet
        system.receive_gossip("r1", "r3", transfers[0])
        assert r3.checkpoint.count == 6

    def test_lost_pull_is_retried_off_the_next_advert(self):
        system, _gen, rng = compacted_system_with_behind_replica()
        system.send_gossip("r1", "r3")
        deliver_all(system, ("r1", "r3"))
        channel = system.gossip_channels[("r3", "r1")]
        lost = channel.receive(channel.contents()[0])  # the pull vanishes
        assert lost.kind == "pull"
        assert system.replicas["r3"].checkpoint.count == 0
        # The periodic full-state gossip re-advertises; the pull re-fires.
        system.send_gossip("r1", "r3")
        deliver_all(system, ("r1", "r3"))
        assert any(m.kind == "pull" for m in channel.contents())
        system.drain(rng)
        assert system.replicas["r3"].checkpoint.count == 6
        AlgorithmInvariantChecker(system).check_all()

    def test_transfer_lost_mid_chunk_heals_on_retry(self):
        system, _gen, rng = compacted_system_with_behind_replica()
        system.send_gossip("r1", "r3")
        deliver_all(system, ("r1", "r3"))
        deliver_all(system, ("r3", "r1"))
        channel = system.gossip_channels[("r1", "r3")]
        transfers = [m for m in channel.contents() if m.kind == "transfer"]
        system.receive_gossip("r1", "r3", transfers[0])  # first chunk lands
        channel.receive(transfers[1])  # second chunk is lost in transit
        assert system.replicas["r3"].checkpoint.count == 0
        # Re-advert, re-pull: the fresh transfer set completes the assembly
        # (same digest, so the surviving chunk still counts).
        system.send_gossip("r1", "r3")
        system.drain(rng)
        assert system.replicas["r3"].checkpoint.count == 6
        AlgorithmInvariantChecker(system).check_all()

    def test_sender_crash_between_advert_and_transfer(self):
        system, _gen, rng = compacted_system_with_behind_replica()
        system.send_gossip("r1", "r3")
        deliver_all(system, ("r1", "r3"))
        deliver_all(system, ("r3", "r1"))
        transfers = [m for m in system.gossip_channels[("r1", "r3")].contents()
                     if m.kind == "transfer"]
        system.receive_gossip("r1", "r3", transfers[0])  # partial assembly
        old_epoch = transfers[0].epoch
        # The advertiser crashes with volatile memory: incarnation bump, but
        # the checkpoint itself is stable storage.
        system.replicas["r1"].crash(volatile_memory=True)
        system.replicas["r1"].recover_from_stable_storage()
        for transfer in transfers[1:]:  # stragglers from the dead incarnation
            system.gossip_channels[("r1", "r3")].receive(transfer)
        # Observing the bumped epoch drops r3's partial assembly...
        system.send_gossip("r1", "r3")
        deliver_all(system, ("r1", "r3"))
        assert "r1" not in system.replicas["r3"]._transfer_in
        # ...and the re-advert re-pulls; the recovered sender answers from
        # its persisted checkpoint under the new epoch.
        system.drain(rng)
        r3 = system.replicas["r3"]
        assert r3.checkpoint.count == 6
        assert system.replicas["r1"]._epoch > old_epoch
        AlgorithmInvariantChecker(system).check_all()

    def test_catching_up_replica_defers_replays_and_compaction(self):
        """The window between advert and completed pull is a genuine hazard:
        the behind replica's label order has a hole below the advertised
        frontier, so a local replay would compute wrong values and a local
        fold would diverge from the agreed prefix.  Both are gated until the
        hole closes."""
        system, gen, rng = compacted_system_with_behind_replica()
        r3 = system.replicas["r3"]
        system.send_gossip("r1", "r3")
        deliver_all(system, ("r1", "r3"))
        assert r3.catching_up()
        # A fresh request reaches the catching-up replica directly: it may
        # do the operation, but must not answer from its holed history...
        op = make_operation(CounterType.increment(), gen.fresh())
        system.request(op)
        system.send_request("alice", "r3", op)
        system.receive_request("alice", "r3")
        r3.do_all_ready()
        assert op in r3.done_here()
        assert not r3.response_ready(op)
        # ...nor compact, even when forced.
        r3.configure_compaction(CompactionPolicy(min_batch=1))
        assert r3.maybe_compact(force=True) == 0
        # Completing the pull closes the hole; the answer then reflects the
        # adopted prefix (6 folded increments) plus the new operation.
        system.drain(rng)
        assert not r3.catching_up()
        assert system.users.responded[op.id] == 7
        AlgorithmInvariantChecker(system).check_all()

    def test_memoized_state_is_rebuilt_when_catchup_heals_via_gossip(self):
        """The memo hazard behind the heal path: operations learned during
        the catch-up window must not be memoized onto a base missing the
        awaited prefix — and when the window closes through ordinary gossip
        (no adoption hook runs), the poisoned memo must be rebuilt, or a
        later response serves the wrong value."""
        system = AlgorithmSystem(
            CounterType(), ["r1", "r2", "r3"], ["alice"],
            replica_factory=MemoizedReplicaCore,
            compaction=CompactionPolicy(min_batch=1), advert_gossip=True,
        )
        # Only r1 folds, so r2 keeps the full history for the heal path.
        system.replicas["r2"].configure_compaction(enabled=False)
        system.replicas["r3"].configure_compaction(enabled=False)
        gen = OperationIdGenerator("alice")
        rng = random.Random(7)
        for _ in range(5):
            system.request(make_operation(CounterType.increment(), gen.fresh()))
        system.run_random(rng, steps=400)
        system.drain(rng)
        assert system.replicas["r1"].checkpoint.count == 5
        r3 = system.replicas["r3"]
        r3.crash(volatile_memory=True)
        r3.recover_from_stable_storage()
        # A sixth operation lands at r1 only, then r1's gossip reaches r3:
        # the advert opens the window while the payload makes op6 done here.
        op6 = make_operation(CounterType.increment(), gen.fresh())
        system.request(op6)
        system.send_request("alice", "r1", op6)
        system.receive_request("alice", "r1")
        system.replicas["r1"].do_all_ready()
        system.send_gossip("r1", "r3")
        deliver_all(system, ("r1", "r3"))
        assert r3.catching_up() and op6 in r3.done_here()
        assert op6 not in r3.memoized  # memoization held back in the window
        # The pull is lost; r2's full-history gossip heals the hole instead.
        channel = system.gossip_channels[("r3", "r1")]
        for message in [m for m in channel.contents() if m.kind == "pull"]:
            channel.receive(message)
        system.send_gossip("r2", "r3")
        deliver_all(system, ("r2", "r3"))
        assert not r3.catching_up()
        # A retransmit to the healed replica must answer with the full
        # history's value (6 increments), not a holed-memo value.
        system.send_request("alice", "r3", op6)
        system.receive_request("alice", "r3")
        assert r3.response_ready(op6)
        assert r3.make_response(op6).value == 6
        system.drain(rng)
        AlgorithmInvariantChecker(system).check_all()

    def test_commute_state_is_rebuilt_when_catchup_heals_via_gossip(self):
        """Same hazard for the Commute variant's ``cs_r`` / ``val_r``."""
        system = AlgorithmSystem(
            GSetType(), ["r1", "r2", "r3"], ["alice"],
            replica_factory=CommuteReplicaCore, users=SafeUsers(GSetType()),
            compaction=CompactionPolicy(min_batch=1), advert_gossip=True,
        )
        system.replicas["r2"].configure_compaction(enabled=False)
        system.replicas["r3"].configure_compaction(enabled=False)
        gen = OperationIdGenerator("alice")
        rng = random.Random(9)
        for index in range(5):
            system.request(make_operation(GSetType.insert(index), gen.fresh()))
        system.run_random(rng, steps=400)
        system.drain(rng)
        assert system.replicas["r1"].checkpoint.count == 5
        r3 = system.replicas["r3"]
        r3.crash(volatile_memory=True)
        r3.recover_from_stable_storage()
        op6 = make_operation(GSetType.insert(99), gen.fresh())
        system.request(op6)
        system.send_request("alice", "r1", op6)
        system.receive_request("alice", "r1")
        system.replicas["r1"].do_all_ready()
        system.send_gossip("r1", "r3")
        deliver_all(system, ("r1", "r3"))
        assert r3.catching_up()
        channel = system.gossip_channels[("r3", "r1")]
        for message in [m for m in channel.contents() if m.kind == "pull"]:
            channel.receive(message)
        system.send_gossip("r2", "r3")
        deliver_all(system, ("r2", "r3"))
        assert not r3.catching_up()
        system.send_request("alice", "r3", op6)
        system.receive_request("alice", "r3")
        assert r3.response_ready(op6)
        expected = system.replicas["r1"].compute_value(op6)
        assert r3.make_response(op6).value == expected
        assert r3.replayed_state() == system.replicas["r1"].replayed_state()
        system.drain(rng)
        AlgorithmInvariantChecker(system).check_all()

    def test_catch_up_can_heal_through_ordinary_gossip(self):
        """If some peer still tracks everything the advert covered, plain
        gossip re-delivers the missing operations and catch-up ends without
        any transfer — the advert's stability assertion is absorbed late."""
        system = AlgorithmSystem(
            CounterType(), ["r1", "r2", "r3"], ["alice"],
            compaction=CompactionPolicy(min_batch=1), advert_gossip=True,
        )
        # Only r1 compacts; r2 keeps tracking the full history.
        system.replicas["r2"].configure_compaction(enabled=False)
        system.replicas["r3"].configure_compaction(enabled=False)
        gen = OperationIdGenerator("alice")
        rng = random.Random(11)
        for _ in range(5):
            system.request(make_operation(CounterType.increment(), gen.fresh()))
        system.run_random(rng, steps=400)
        system.drain(rng)
        assert system.replicas["r1"].checkpoint.count == 5
        r3 = system.replicas["r3"]
        r3.crash(volatile_memory=True)
        r3.recover_from_stable_storage()
        system.send_gossip("r1", "r3")
        deliver_all(system, ("r1", "r3"))
        assert r3.catching_up()
        system.send_gossip("r2", "r3")  # full history, r2 never folded
        deliver_all(system, ("r2", "r3"))
        assert not r3.catching_up()
        assert r3.checkpoint.count == 0  # healed by payload, not transfer
        system.drain(rng)
        AlgorithmInvariantChecker(system).check_all()

    def test_stale_chunks_do_not_clobber_a_newer_assembly(self):
        """Delayed stragglers from a superseded transfer (older digest,
        lower frontier) must be ignored — on the unordered network they can
        interleave with the chunks of the replacement transfer."""
        system, gen, _rng = compacted_system_with_behind_replica()
        r1, r3 = system.replicas["r1"], system.replicas["r3"]
        system.send_gossip("r1", "r3")
        deliver_all(system, ("r1", "r3"))
        pull = next(m for m in system.gossip_channels[("r3", "r1")].contents()
                    if m.kind == "pull")
        old_transfers = r1.receive_pull_request(pull)
        # Model the sender compacting further before the old chunks land:
        # extend its checkpoint directly (two more increments above the
        # frontier) and chunk the newer body.
        label_gen = LabelGenerator("r1")
        label_gen.observed(r1.checkpoint.frontier)
        extra, labels, existing = [], {}, []
        for _ in range(2):
            op = make_operation(CounterType.increment(), gen.fresh())
            label = label_gen.fresh(existing)
            existing.append(label)
            labels[op.id] = label
            extra.append(op)
        newer, _apps = r1.checkpoint.extend(extra, r1.data_type, labels)
        new_transfers = checkpoint_transfers(
            newer, sender="r1", requester="r3", epoch=0, chunk=3
        )
        assert new_transfers[0].digest != old_transfers[0].digest
        # Interleave: new chunk 0, then every old chunk, then the rest new.
        r3.receive_transfer(new_transfers[0])
        for transfer in old_transfers:
            r3.receive_transfer(transfer)  # stragglers: ignored
        assert r3._transfer_in["r1"].digest == new_transfers[0].digest
        assert 0 in r3._transfer_in["r1"].chunks
        for transfer in new_transfers[1:]:
            r3.receive_transfer(transfer)
        assert r3.checkpoint.count == newer.count == 8

    def test_digest_mismatch_after_concurrent_compaction(self):
        system, gen, rng = compacted_system_with_behind_replica()
        system.send_gossip("r1", "r3")
        deliver_all(system, ("r1", "r3"))
        pull = next(m for m in system.gossip_channels[("r3", "r1")].contents()
                    if m.kind == "pull")
        advertised_digest = pull.digest
        # Before the pull is delivered, r1 compacts further (r3 participates
        # in stabilizing the new operations, so the frontier can advance).
        extra = [make_operation(CounterType.increment(), gen.fresh()) for _ in range(3)]
        for op in extra:
            system.request(op)
        system.run_random(rng, steps=300)
        system.drain(rng)
        current = system.replicas["r1"].checkpoint
        assert current.digest() != advertised_digest
        # Answering the stale-digest pull ships the *current* checkpoint —
        # nested over the advertised one, so adoption still catches r3 up.
        transfers = system.replicas["r1"].receive_pull_request(pull)
        assert all(t.digest == current.digest() for t in transfers)
        for transfer in transfers:
            system.replicas["r3"].receive_transfer(transfer)
        assert system.replicas["r3"].checkpoint.count >= 6
        system.drain(rng)
        AlgorithmInvariantChecker(system).check_all()
        states = {rid: r.replayed_state() for rid, r in system.replicas.items()}
        assert len(set(states.values())) == 1


# --------------------------------------------------------------------------- #
# Finer catch-up gating: state-independent values answer early                #
# --------------------------------------------------------------------------- #


def register_system_with_behind_replica(requests=6):
    """Like :func:`compacted_system_with_behind_replica`, over a register."""
    system = AlgorithmSystem(
        RegisterType(), ["r1", "r2", "r3"], ["alice"],
        compaction=CompactionPolicy(min_batch=1),
        advert_gossip=True, checkpoint_chunk=2,
    )
    system.replicas["r3"].configure_compaction(enabled=False)
    gen = OperationIdGenerator("alice")
    rng = random.Random(5)
    for index in range(requests):
        system.request(make_operation(RegisterType.write(index), gen.fresh()))
    system.run_random(rng, steps=400)
    system.drain(rng)
    assert system.replicas["r1"].checkpoint.count == requests
    assert system.replicas["r3"].checkpoint.count == 0
    system.replicas["r3"].crash(volatile_memory=True)
    system.replicas["r3"].recover_from_stable_storage()
    return system, gen, rng


class TestCatchupStateIndependentGating:
    """The catch-up response gate refuses only what it must: an operation
    whose reported value is the same in every state (a register write) is
    answerable from the holed local replay, because the missing prefix
    cannot change what it reports.  Everything state-dependent still waits
    for the pull — the PR 4 wrong-value hazard."""

    def test_predicate_per_data_type(self):
        from repro.service.keyed import KeyedStore

        register = RegisterType()
        assert register.state_independent(RegisterType.write(3))
        assert not register.state_independent(RegisterType.read())
        counter = CounterType()
        assert not counter.state_independent(CounterType.increment())
        store = KeyedStore(register)
        assert store.state_independent(
            KeyedStore.at("k", RegisterType.write(3)))
        assert not store.state_independent(
            KeyedStore.at("k", RegisterType.read()))
        assert not store.state_independent(KeyedStore.keys_op())

    def catching_up_with_done_op(self, system, gen, operator):
        """Put r3 into catch-up, then hand it one fresh done operation."""
        r3 = system.replicas["r3"]
        system.send_gossip("r1", "r3")
        deliver_all(system, ("r1", "r3"))
        assert r3.catching_up()
        op = make_operation(operator, gen.fresh())
        system.request(op)
        system.send_request("alice", "r3", op)
        system.receive_request("alice", "r3")
        r3.do_all_ready()
        assert op in r3.done_here()
        return r3, op

    def test_write_is_answered_during_catchup(self):
        system, gen, rng = register_system_with_behind_replica()
        r3, op = self.catching_up_with_done_op(
            system, gen, RegisterType.write("fresh"))
        assert r3.catching_up()
        assert r3.response_ready(op)
        system.send_response("r3", op)
        for message in system.response_channels[("r3", "alice")].contents():
            system.receive_response("r3", "alice", message)
        assert system.response(op) == "fresh"
        # Early answering must not weaken the compaction gate.
        r3.configure_compaction(CompactionPolicy(min_batch=1))
        assert r3.maybe_compact(force=True) == 0
        system.drain(rng)
        assert not r3.catching_up()
        AlgorithmInvariantChecker(system).check_all()
        check_system_trace(system)

    def test_read_still_refuses_during_catchup(self):
        system, gen, rng = register_system_with_behind_replica()
        r3, op = self.catching_up_with_done_op(system, gen, RegisterType.read())
        assert not r3.response_ready(op)
        system.drain(rng)
        assert not r3.catching_up()
        assert op.id in system.users.responded
        AlgorithmInvariantChecker(system).check_all()

    def test_strict_write_still_waits_for_stability(self):
        system, gen, _rng = register_system_with_behind_replica()
        r3 = system.replicas["r3"]
        system.send_gossip("r1", "r3")
        deliver_all(system, ("r1", "r3"))
        op = make_operation(RegisterType.write("s"), gen.fresh(), strict=True)
        system.request(op)
        system.send_request("alice", "r3", op)
        system.receive_request("alice", "r3")
        r3.do_all_ready()
        # Done only here: the strict gate (stable everywhere) still applies
        # on the state-independent early path.
        assert op in r3.done_here()
        assert not r3.response_ready(op)

    def test_counter_increment_still_refuses_during_catchup(self):
        # The original PR 4 hazard: an increment reports the post-state.
        system, gen, _rng = compacted_system_with_behind_replica()
        r3, op = self.catching_up_with_done_op(
            system, gen, CounterType.increment())
        assert not r3.response_ready(op)


# --------------------------------------------------------------------------- #
# Simulated cluster: twins, crash recovery, lossy catch-up                    #
# --------------------------------------------------------------------------- #


def sim_params(advert, **overrides):
    kwargs = dict(
        df=1.0, dg=1.0, gossip_period=2.0,
        compaction=CompactionPolicy(min_batch=4), compaction_interval=8.0,
        advert_gossip=advert,
    )
    kwargs.update(overrides)
    return SimulationParams(**kwargs)


def run_sim(advert, seed=9, delta=False, ops=40, **overrides):
    cluster = SimulatedCluster(
        RegisterType(), 3, ["c0", "c1"],
        params=sim_params(advert, delta_gossip=delta, **overrides), seed=seed,
    )
    spec = WorkloadSpec(
        operations_per_client=ops, mean_interarrival=0.5,
        strict_fraction=0.2, prev_policy="last_own",
        operator_factory=lambda rng, i: (
            RegisterType.write(rng.randint(0, 50))
            if rng.random() < 0.6 else RegisterType.read()),
    )
    run_workload(cluster, spec, seed=31)
    cluster.run_until_idle()
    return cluster


class TestSimulatedAdvertPull:
    @pytest.mark.parametrize("delta", [False, True], ids=["full", "delta"])
    def test_twin_runs_produce_identical_responses(self, delta):
        eager = run_sim(advert=False, delta=delta)
        advert = run_sim(advert=True, delta=delta)
        assert eager.responded == advert.responded
        assert sum(r.checkpoint.count for r in advert.replicas.values()) > 0
        # Crash-free: the catch-up plane stayed silent, yet the wire carried
        # strictly less checkpoint payload.
        assert advert.network.counters.pull == 0
        assert advert.network.counters.transfer == 0
        assert (advert.network.counters.gossip_payload
                < eager.network.counters.gossip_payload)

    def crash_recovery_cluster(self, chunk=3):
        params = sim_params(True, checkpoint_chunk=chunk,
                            compaction=CompactionPolicy(min_batch=1),
                            compaction_interval=4.0, retransmit_interval=4.0)
        cluster = SimulatedCluster(CounterType(), 3, ["c0"], params=params, seed=1)
        # r1 never folds on its own, so a volatile crash leaves it without
        # any checkpoint — the pull path is its only way back.
        cluster.replicas["r1"].configure_compaction(enabled=False)
        for _ in range(20):
            cluster.execute("c0", CounterType.increment())
        cluster.run(30)
        assert cluster.replicas["r0"].checkpoint.count == 20
        cluster.crash_replica("r1", volatile_memory=True)
        cluster.run(5)
        cluster.recover_replica("r1")
        cluster.replicas["r1"].configure_compaction(CompactionPolicy(min_batch=1))
        return cluster

    def finish_and_check(self, cluster):
        for _ in range(5):
            cluster.execute("c0", CounterType.increment())
        cluster.run(80)
        assert cluster.fully_converged()
        states = {rid: r.replayed_state() for rid, r in cluster.replicas.items()}
        assert len(set(states.values())) == 1
        AlgorithmInvariantChecker(cluster.algorithm_view()).check_all()

    def test_crash_recovery_catches_up_via_pull(self):
        cluster = self.crash_recovery_cluster()
        self.finish_and_check(cluster)
        assert cluster.network.counters.pull > 0
        assert cluster.network.counters.transfer > 0
        assert cluster.replicas["r1"].checkpoint.count >= 20

    def test_catch_up_survives_dropped_pulls_and_transfers(self):
        cluster = self.crash_recovery_cluster()
        to_drop = {"pull": 2, "transfer": 3}
        original = cluster.network.should_drop

        def lossy(kind, source, destination):
            if to_drop.get(kind, 0) > 0:
                to_drop[kind] -= 1
                cluster.network.counters.dropped += 1
                return True
            return original(kind, source, destination)

        cluster.network.should_drop = lossy
        self.finish_and_check(cluster)
        assert to_drop == {"pull": 0, "transfer": 0}  # the drops really hit
        assert cluster.replicas["r1"].checkpoint.count >= 20


# --------------------------------------------------------------------------- #
# Sharded service layer                                                       #
# --------------------------------------------------------------------------- #


class TestShardedAdvertPull:
    def drive(self, advert, seed=41):
        frontend = ShardedFrontend(
            CounterType(), num_shards=2, replicas_per_shard=2,
            client_ids=["alice", "bob"],
            compaction=CompactionPolicy(min_batch=1),
            advert_gossip=advert, checkpoint_chunk=2,
        )
        rng = random.Random(seed)
        keys = ["k0", "k1", "k2"]
        for index in range(10):
            client = rng.choice(list(frontend.client_ids))
            key = rng.choice(keys)
            frontend.request(client, key, CounterType.increment())
        frontend.run_random(rng, steps=500)
        frontend.drain(rng)
        return frontend

    def test_sharded_twins_agree_and_verify(self):
        eager = self.drive(advert=False)
        advert = self.drive(advert=True)
        assert eager.responded == advert.responded
        advert.check_invariants()
        advert.check_traces()
        folded = sum(
            r.checkpoint.count
            for system in advert.systems.values()
            for r in system.replicas.values()
        )
        assert folded > 0
