"""The stale-response NACK path for finite ``value_retention``.

A retransmitted request for a compacted operation whose response value aged
out of the retained-value ledger used to be dropped silently — the client
would never hear back.  The ROADMAP liveness corner is closed by an explicit
NACK: the replica queues a ``ResponseMessage(stale=True, sender=...)``, and
the front end declares the operation *failed* once every replica has NACKed
it (eviction of a compacted value is permanent, so the declaration is safe).
The failure is surfaced through ``failed`` maps on the front end, the
simulated cluster and the sharded service frontend, and through
:class:`~repro.common.StaleValueError` from ``value_of``.
"""

import random

import pytest

from repro.algorithm.checkpoint import CompactionPolicy
from repro.algorithm.frontend import FrontEndCore
from repro.algorithm.messages import RequestMessage, ResponseMessage
from repro.algorithm.replica import ReplicaCore
from repro.algorithm.system import AlgorithmSystem
from repro.common import OperationIdGenerator, StaleValueError
from repro.core.operations import make_operation
from repro.datatypes import CounterType
from repro.service.frontend import ShardedFrontend
from repro.sim.cluster import SimulatedCluster, SimulationParams
from repro.verification.invariants import AlgorithmInvariantChecker


# --------------------------------------------------------------------------- #
# Replica level: the NACK queue                                               #
# --------------------------------------------------------------------------- #


def compacted_evicted_pair():
    """Two replicas that answered, stabilized and folded one operation under
    ``value_retention=0`` — its value is gone everywhere."""
    ids = ["r1", "r2"]
    policy = CompactionPolicy(min_batch=1, value_retention=0)
    r1, r2 = (ReplicaCore(rid, ids, CounterType()) for rid in ids)
    for replica in (r1, r2):
        replica.configure_compaction(policy)
    op = make_operation(CounterType.increment(), OperationIdGenerator("alice").fresh())
    r1.receive_request(RequestMessage(op))
    r1.do_all_ready()
    r1.make_response(op)  # answers (and clears pending), response then lost
    for _ in range(3):
        r2.receive_gossip(r1.make_gossip("r2"))
        r1.receive_gossip(r2.make_gossip("r1"))
    assert r1.is_compacted(op.id) and r2.is_compacted(op.id)
    assert op.id not in r1.checkpoint.values
    return r1, r2, op


class TestReplicaNackQueue:
    def test_retransmit_for_evicted_value_queues_a_nack(self):
        r1, _r2, op = compacted_evicted_pair()
        r1.receive_request(RequestMessage(op))
        assert op not in r1.pending  # never re-tracked, never stuck
        assert r1.take_stale_nacks() == [op]
        assert r1.take_stale_nacks() == []  # drained

    def test_retained_value_still_answers_without_nack(self):
        ids = ["r1", "r2"]
        r1, r2 = (ReplicaCore(rid, ids, CounterType()) for rid in ids)
        for replica in (r1, r2):
            replica.configure_compaction(CompactionPolicy(min_batch=1))
        op = make_operation(CounterType.increment(), OperationIdGenerator("a").fresh())
        r1.receive_request(RequestMessage(op))
        r1.do_all_ready()
        r1.make_response(op)
        for _ in range(3):
            r2.receive_gossip(r1.make_gossip("r2"))
            r1.receive_gossip(r2.make_gossip("r1"))
        assert r1.is_compacted(op.id)
        r1.receive_request(RequestMessage(op))
        assert r1.take_stale_nacks() == []
        assert r1.response_ready(op)

    def test_crash_clears_queued_nacks(self):
        r1, _r2, op = compacted_evicted_pair()
        r1.receive_request(RequestMessage(op))
        r1.crash(volatile_memory=True)
        assert r1.take_stale_nacks() == []


# --------------------------------------------------------------------------- #
# Front end: NACK accounting and the failure declaration                      #
# --------------------------------------------------------------------------- #


class TestFrontEndNacks:
    def setup_method(self):
        self.frontend = FrontEndCore("alice", ["r1", "r2"])
        self.op = make_operation(CounterType.increment(),
                                 OperationIdGenerator("alice").fresh())
        self.frontend.request(self.op)

    def nack(self, sender):
        return ResponseMessage(self.op, None, stale=True, sender=sender)

    def test_partial_nacks_keep_waiting(self):
        assert self.frontend.receive_response(self.nack("r1")) is False
        assert self.op in self.frontend.wait
        assert not self.frontend.failed

    def test_nacks_from_every_replica_fail_the_operation(self):
        self.frontend.receive_response(self.nack("r1"))
        self.frontend.receive_response(self.nack("r2"))
        assert self.op not in self.frontend.wait
        assert self.frontend.failed[self.op.id] == "stale-value"
        assert not self.frontend.response_candidates()

    def test_duplicate_nacks_do_not_double_count(self):
        self.frontend.receive_response(self.nack("r1"))
        self.frontend.receive_response(self.nack("r1"))
        assert self.op in self.frontend.wait
        assert not self.frontend.failed

    def test_recorded_value_blocks_the_failure(self):
        self.frontend.receive_response(ResponseMessage(self.op, 1))
        self.frontend.receive_response(self.nack("r1"))
        self.frontend.receive_response(self.nack("r2"))
        # A deliverable value exists: the response action wins, no failure.
        assert self.op in self.frontend.wait
        assert not self.frontend.failed
        assert self.frontend.respond(self.op) == 1

    def test_late_genuine_value_resurrects_a_failed_operation(self):
        """Channels are non-FIFO: a value sent before the eviction can
        arrive after the NACKs.  The late answer wins — failure is a
        best-current-verdict, not a proof that no response was ever sent."""
        self.frontend.receive_response(self.nack("r1"))
        self.frontend.receive_response(self.nack("r2"))
        assert self.frontend.failed
        assert self.frontend.receive_response(ResponseMessage(self.op, 1)) is True
        assert not self.frontend.failed
        assert self.op in self.frontend.wait
        assert self.frontend.respond(self.op) == 1

    def test_respond_clears_the_nack_tally(self):
        self.frontend.receive_response(self.nack("r1"))
        self.frontend.receive_response(ResponseMessage(self.op, 1))
        self.frontend.respond(self.op)
        assert self.op.id not in self.frontend.nacked

    def test_unknown_replica_set_never_declares_failure(self):
        frontend = FrontEndCore("alice")  # replica set not threaded
        frontend.request(self.op)
        frontend.receive_response(self.nack("r1"))
        frontend.receive_response(self.nack("r2"))
        assert self.op in frontend.wait


# --------------------------------------------------------------------------- #
# Action-level system: the NACK flows end to end                              #
# --------------------------------------------------------------------------- #


class TestSystemNackPath:
    def test_retransmit_after_eviction_fails_explicitly(self):
        system = AlgorithmSystem(
            CounterType(), ["r1", "r2"], ["alice"],
            compaction=CompactionPolicy(min_batch=1, value_retention=0),
        )
        gen = OperationIdGenerator("alice")
        op = make_operation(CounterType.increment(), gen.fresh())
        system.request(op)
        system.send_request("alice", "r1", op)
        system.receive_request("alice", "r1")
        system.replicas["r1"].do_all_ready()
        system.send_response("r1", op)  # the response is never delivered
        rng = random.Random(3)
        for _ in range(3):
            for src, dst in (("r1", "r2"), ("r2", "r1")):
                system.send_gossip(src, dst)
                deliverable = system.gossip_channels[(src, dst)].contents()
                for message in deliverable:
                    system.receive_gossip(src, dst, message)
        assert all(r.is_compacted(op.id) for r in system.replicas.values())
        assert all(op.id not in r.checkpoint.values for r in system.replicas.values())
        # The client retransmits (Fig. 6 allows it) to both replicas.
        for replica in ("r1", "r2"):
            system.send_request("alice", replica, op)
            system.receive_request("alice", replica)
            nacks = system.response_channels[(replica, "alice")].contents()
            stale = [m for m in nacks if m.stale]
            assert stale, f"no NACK queued by {replica}"
            # An in-transit NACK is not a potential response (no value).
            assert (op, None) not in system.potential_rept("alice")
            system.receive_response(replica, "alice", stale[0])
        frontend = system.frontends["alice"]
        assert frontend.failed[op.id] == "stale-value"
        assert op not in frontend.wait
        AlgorithmInvariantChecker(system).check_all()
        # The original response, stuck in transit since before the eviction,
        # finally arrives: the operation is resurrected and answered.
        leftover = system.response_channels[("r1", "alice")].contents()
        assert leftover and not leftover[0].stale
        system.receive_response("r1", "alice", leftover[0])
        assert op.id not in frontend.failed
        assert op in frontend.wait
        system.response(op)
        assert system.users.responded[op.id] == 1
        AlgorithmInvariantChecker(system).check_all()


# --------------------------------------------------------------------------- #
# Simulated cluster and sharded frontend surfacing                            #
# --------------------------------------------------------------------------- #


class TestSimulatedNackSurfacing:
    def test_lost_response_plus_eviction_surfaces_failure(self):
        # Deliberately the default sticky "affinity" routing: the NACK from
        # the primary must act as a redirect, steering later retransmits to
        # the remaining replicas until every one has NACKed.
        params = SimulationParams(
            compaction=CompactionPolicy(min_batch=1, value_retention=0),
            compaction_interval=2.0,
            retransmit_interval=4.0,
        )
        cluster = SimulatedCluster(CounterType(), 2, ["c0"], params=params, seed=7)
        target = cluster.submit("c0", CounterType.increment())
        original_send = cluster._send_response_message

        def drop_real_responses(replica, message):
            if message.operation.id == target.id and not message.stale:
                return  # every real response for the target is lost
            original_send(replica, message)

        cluster._send_response_message = drop_real_responses
        cluster.run_until_idle(max_time=400.0)
        assert target.id not in cluster.responded
        assert cluster.failed[target.id] == "stale-value"
        assert cluster.outstanding_operations() == 0  # run_until_idle settled
        with pytest.raises(StaleValueError):
            cluster.value_of(target)
        AlgorithmInvariantChecker(cluster.algorithm_view()).check_all()

    def test_sharded_frontend_surfaces_stale_failures(self):
        frontend = ShardedFrontend(
            CounterType(), num_shards=2, replicas_per_shard=2,
            client_ids=["alice"],
            compaction=CompactionPolicy(min_batch=1, value_retention=0),
        )
        op = frontend.request("alice", "hot-key", CounterType.increment())
        shard = frontend.shard_of_operation(op.id)
        system = frontend.systems[shard]
        # Shard-level front ends live under the composite per-shard client
        # identity the directory mints ids with ("alice@<shard>").
        client = op.id.client
        replicas = list(system.replica_ids)
        system.send_request(client, replicas[0], op)
        system.receive_request(client, replicas[0], rng=random.Random(0))
        system.replicas[replicas[0]].do_all_ready()
        system.send_response(replicas[0], op)  # lost
        for _ in range(3):
            for src in replicas:
                for dst in replicas:
                    if src == dst:
                        continue
                    system.send_gossip(src, dst)
                    for message in system.gossip_channels[(src, dst)].contents():
                        system.receive_gossip(src, dst, message)
        for replica in replicas:
            system.send_request(client, replica, op)
            system.receive_request(client, replica, rng=random.Random(0))
            for message in system.response_channels[(replica, client)].contents():
                if message.stale:
                    system.receive_response(replica, client, message)
        assert frontend.failed[op.id] == "stale-value"
        assert frontend.outstanding_operations() == 0
        with pytest.raises(StaleValueError):
            frontend.value_of(op)
