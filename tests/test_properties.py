"""Property-based tests (hypothesis) on the core data structures and the
algorithm's convergence invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.algorithm.labels import Label, LabelGenerator, label_min
from repro.algorithm.messages import RequestMessage
from repro.algorithm.replica import ReplicaCore
from repro.common import INFINITY, OperationIdGenerator
from repro.core.operations import client_specified_constraints, make_operation
from repro.core.orders import (
    PartialOrder,
    linear_extensions,
    topological_total_order,
    transitive_closure,
    valset,
)
from repro.datatypes import CounterType, GSetType, RegisterType

# ---------------------------------------------------------------------------
# Relation / partial-order algebra
# ---------------------------------------------------------------------------

small_pairs = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 6)).filter(lambda p: p[0] != p[1]),
    max_size=10,
)


@settings(max_examples=60, deadline=None)
@given(small_pairs)
def test_transitive_closure_is_transitive_and_monotone(pairs):
    closure = transitive_closure(pairs)
    assert set(pairs) - {(a, b) for a, b in pairs if a == b} <= closure | set(pairs)
    # Transitivity.
    for a, b in closure:
        for c, d in closure:
            if b == c:
                assert (a, d) in closure
    # Idempotence.
    assert transitive_closure(closure) == closure


@settings(max_examples=60, deadline=None)
@given(small_pairs)
def test_acyclic_relations_build_partial_orders(pairs):
    closure = transitive_closure(pairs)
    if any(a == b for a, b in closure):
        return  # cyclic inputs are rejected elsewhere
    order = PartialOrder(pairs)
    for a, b in pairs:
        assert order.precedes(a, b)
    # Antisymmetry of the strict order.
    assert not any(order.precedes(b, a) and order.precedes(a, b) for a, b in order.pairs)


@settings(max_examples=40, deadline=None)
@given(small_pairs, st.sets(st.integers(0, 6), min_size=1, max_size=5))
def test_topological_order_is_a_linear_extension(pairs, universe):
    closure = transitive_closure(pairs)
    if any(a == b for a, b in closure):
        return
    order = topological_total_order(pairs, universe)
    assert set(order) == set(universe)
    position = {value: index for index, value in enumerate(order)}
    for a, b in pairs:
        if a in position and b in position:
            assert position[a] < position[b]


@settings(max_examples=30, deadline=None)
@given(st.sets(st.integers(0, 4), min_size=1, max_size=4))
def test_linear_extension_count_of_antichain_is_factorial(universe):
    import math

    extensions = list(linear_extensions(set(), universe))
    assert len(extensions) == math.factorial(len(universe))
    assert all(set(ext) == universe for ext in extensions)


# ---------------------------------------------------------------------------
# valset properties (Lemmas 2.5 / 2.6)
# ---------------------------------------------------------------------------


@st.composite
def counter_operation_sets(draw):
    gen = OperationIdGenerator("c")
    count = draw(st.integers(2, 4))
    operators = [
        draw(st.sampled_from([CounterType.increment(), CounterType.add(2),
                              CounterType.double(), CounterType.read()]))
        for _ in range(count)
    ]
    ops = [make_operation(op, gen.fresh()) for op in operators]
    constraint_candidates = [
        (a.id, b.id) for i, a in enumerate(ops) for b in ops[i + 1:]
    ]
    chosen = draw(st.lists(st.sampled_from(constraint_candidates), max_size=3, unique=True)) \
        if constraint_candidates else []
    return ops, chosen


@settings(max_examples=40, deadline=None)
@given(counter_operation_sets())
def test_valset_nonempty_and_antitone(data):
    ops, constraints = data
    counter = CounterType(initial=1)
    base = PartialOrder()
    try:
        constrained = PartialOrder(constraints)
    except ValueError:
        return
    for target in ops:
        unconstrained_values = valset(counter, target, ops, base)
        constrained_values = valset(counter, target, ops, constrained)
        assert unconstrained_values, "Lemma 2.5: valset must be nonempty"
        assert constrained_values <= unconstrained_values, "Lemma 2.6"


# ---------------------------------------------------------------------------
# Commutativity metadata vs. actual semantics
# ---------------------------------------------------------------------------

counter_operators = st.sampled_from(
    [CounterType.read(), CounterType.increment(), CounterType.add(3), CounterType.double()]
)
register_operators = st.sampled_from(
    [RegisterType.read(), RegisterType.write(1), RegisterType.write(2)]
)
gset_operators = st.sampled_from(
    [GSetType.insert("a"), GSetType.insert("b"), GSetType.contains("a"), GSetType.size()]
)


@settings(max_examples=60, deadline=None)
@given(counter_operators, counter_operators, st.integers(0, 5))
def test_counter_commute_metadata_is_sound(a, b, start):
    counter = CounterType(initial=start)
    if counter.commute(a, b):
        assert counter.outcome([a, b]) == counter.outcome([b, a])


@settings(max_examples=40, deadline=None)
@given(register_operators, register_operators)
def test_register_commute_metadata_is_sound(a, b):
    register = RegisterType(initial=0)
    if register.commute(a, b):
        assert register.outcome([a, b]) == register.outcome([b, a])


@settings(max_examples=40, deadline=None)
@given(gset_operators, gset_operators)
def test_gset_commute_metadata_is_sound(a, b):
    gset = GSetType()
    if gset.commute(a, b):
        assert gset.outcome([a, b]) == gset.outcome([b, a])


@settings(max_examples=40, deadline=None)
@given(counter_operators, counter_operators, st.integers(0, 5))
def test_obliviousness_metadata_is_sound(a, b, start):
    counter = CounterType(initial=start)
    if counter.oblivious(a, b):
        alone = counter.apply(counter.initial_state(), a)[1]
        after_b = counter.value_of_last([b, a])
        assert alone == after_b


# ---------------------------------------------------------------------------
# Labels
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 50), st.sampled_from(["r0", "r1", "r2"])),
                min_size=1, max_size=8))
def test_fresh_labels_exceed_every_constraint(constraints):
    labels = [Label(rank, replica) for rank, replica in constraints]
    generator = LabelGenerator("r9")
    fresh = generator.fresh(labels)
    assert all(fresh > label for label in labels)
    assert fresh.replica == "r9"


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 30), min_size=2, max_size=6))
def test_label_min_is_commutative_and_associative(ranks):
    labels = [Label(rank, "r0") for rank in ranks] + [INFINITY]
    total = labels[0]
    for label in labels[1:]:
        assert label_min(total, label) == label_min(label, total)
        total = label_min(total, label)
    assert total == min(
        (l for l in labels if l is not INFINITY), key=lambda l: (l.rank, l.replica)
    )


# ---------------------------------------------------------------------------
# Gossip convergence: labels agree after full exchange, regardless of order
# ---------------------------------------------------------------------------


@st.composite
def gossip_scenarios(draw):
    num_ops = draw(st.integers(1, 5))
    placements = [draw(st.sampled_from(["r0", "r1", "r2"])) for _ in range(num_ops)]
    rounds = draw(st.integers(2, 3))
    seed = draw(st.integers(0, 1000))
    return placements, rounds, seed


@settings(max_examples=25, deadline=None)
@given(gossip_scenarios())
def test_replicas_converge_to_common_minimum_labels(scenario):
    placements, rounds, seed = scenario
    rng = random.Random(seed)
    replica_ids = ("r0", "r1", "r2")
    replicas = {rid: ReplicaCore(rid, replica_ids, GSetType()) for rid in replica_ids}
    gen = OperationIdGenerator("c")
    ops = []
    for index, rid in enumerate(placements):
        op = make_operation(GSetType.insert(index), gen.fresh())
        ops.append(op)
        replicas[rid].receive_request(RequestMessage(op))
        replicas[rid].do_all_ready()
    pairs = [(a, b) for a in replica_ids for b in replica_ids if a != b]
    for _ in range(rounds):
        rng.shuffle(pairs)
        for source, destination in pairs:
            replicas[destination].receive_gossip(replicas[source].make_gossip())
    for op in ops:
        labels = {replicas[rid].label_of(op.id) for rid in replica_ids}
        assert len(labels) == 1, "all replicas must agree on the minimum label"
        assert all(op in replicas[rid].stable_here() for rid in replica_ids)
    # The agreed labels define the same total order everywhere.
    orders = {tuple(x.id for x in replicas[rid].done_order()) for rid in replica_ids}
    assert len(orders) == 1


# ---------------------------------------------------------------------------
# Client-specified constraints
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 6), st.integers(0, 1000))
def test_csc_of_chained_operations_is_acyclic(length, seed):
    rng = random.Random(seed)
    gen = OperationIdGenerator("c")
    history = []
    for _ in range(length):
        prev = [rng.choice(history).id] if history and rng.random() < 0.7 else []
        history.append(make_operation(CounterType.increment(), gen.fresh(), prev=prev))
    closure = transitive_closure(client_specified_constraints(history))
    assert not any(a == b for a, b in closure)
