"""Delta gossip (§10.4, ack-based) and the incremental replay cache.

The load-bearing property: delta gossip only ever omits knowledge the
destination has *acknowledged*, so merging a delta leaves the receiver in
exactly the state the corresponding full-state message would have produced.
Consequently a delta-gossip system and a full-gossip system driven by the
same seeded scheduler go through identical executions — same responses, same
``ops``, same ``po`` — while the delta system ships a fraction of the
payload.  Crashes are covered by the incarnation epoch plus the periodic
full-state fallback.
"""

import random

import pytest

from repro.algorithm.messages import RequestMessage
from repro.algorithm.replica import IncrementalReplicaCore, ReplicaCore
from repro.algorithm.system import AlgorithmSystem
from repro.common import ConfigurationError, OperationIdGenerator
from repro.core.operations import make_operation
from repro.datatypes import CounterType, RegisterType
from repro.sim.cluster import SimulatedCluster, SimulationParams
from repro.sim.workload import WorkloadSpec, run_workload
from repro.verification.invariants import AlgorithmInvariantChecker
from repro.verification.serializability import check_system_trace
from repro.verification.simulation_check import AlgorithmToSpecSimulation


def build_system(delta: bool, full_state_interval: int = 5,
                 replica_ids=("r1", "r2", "r3"), clients=("alice", "bob")):
    return AlgorithmSystem(
        CounterType(), list(replica_ids), list(clients),
        delta_gossip=delta, full_state_interval=full_state_interval,
    )


def drive_random(system: AlgorithmSystem, seed: int, requests: int = 8,
                 steps: int = 600) -> AlgorithmSystem:
    """Issue a seeded workload and schedule with a seeded scheduler."""
    rng = random.Random(seed)
    clients = list(system.client_ids)
    gens = {c: OperationIdGenerator(c) for c in clients}
    history = []
    for _ in range(requests):
        client = rng.choice(clients)
        operator = rng.choice(
            [CounterType.increment(), CounterType.add(2), CounterType.read()]
        )
        prev = [history[-1].id] if history and rng.random() < 0.5 else []
        op = make_operation(operator, gens[client].fresh(), prev=prev,
                            strict=rng.random() < 0.3)
        history.append(op)
        system.request(op)
    system.run_random(rng, steps=steps)
    system.drain(rng)
    system.run_random(rng, steps=steps)
    return system


def gossip_payload(system: AlgorithmSystem) -> int:
    return sum(ch.sent_payload for ch in system.gossip_channels.values())


class TestDeltaFullEquivalence:
    @pytest.mark.parametrize("seed", [0, 3, 11, 29])
    def test_seeded_executions_are_identical(self, seed):
        full = drive_random(build_system(delta=False), seed)
        delta = drive_random(build_system(delta=True), seed)

        assert full.trace.responses == delta.trace.responses
        assert full.ops() == delta.ops()
        assert set(full.partial_order().pairs) == set(delta.partial_order().pairs)
        assert full.eventual_order() == delta.eventual_order()
        for rid in full.replica_ids:
            assert full.replicas[rid].done_here() == delta.replicas[rid].done_here()
            assert full.replicas[rid].labels == delta.replicas[rid].labels

    @pytest.mark.parametrize("seed", [0, 3, 11, 29])
    def test_delta_ships_less_payload(self, seed):
        full = drive_random(build_system(delta=False), seed)
        delta = drive_random(build_system(delta=True), seed)
        sent_full = gossip_payload(full)
        sent_delta = gossip_payload(delta)
        assert sent_delta < sent_full / 2

    def test_trace_checks_pass_with_delta(self):
        system = drive_random(build_system(delta=True), seed=13)
        check_system_trace(system, check_nonstrict=False)


class TestDeltaInvariants:
    def test_invariants_hold_at_every_step(self):
        system = build_system(delta=True, full_state_interval=4,
                              replica_ids=("r1", "r2"), clients=("alice",))
        gen = OperationIdGenerator("alice")
        rng = random.Random(1)
        for index in range(5):
            system.request(
                make_operation(CounterType.increment(), gen.fresh(), strict=(index == 4))
            )
        checker = AlgorithmInvariantChecker(system)
        system.run_random(rng, steps=200, step_hook=checker)
        system.drain(rng)
        checker.check_all()
        assert len(system.trace.responses) == 5

    def test_simulation_relation_holds_with_delta(self):
        system = AlgorithmSystem(RegisterType(), ["r1", "r2"], ["alice"],
                                 delta_gossip=True, full_state_interval=3)
        sim = AlgorithmToSpecSimulation(system)
        gen = OperationIdGenerator("alice")
        rng = random.Random(2)
        for index in range(4):
            sim.request(make_operation(RegisterType.write(index), gen.fresh(),
                                       strict=(index == 3)))
        sim.run_random(rng, steps=250)
        assert sim.report().steps_checked > 0


class TestDeltaMechanics:
    def setup_pair(self, full_state_interval=100):
        ids = ["r1", "r2"]
        r1 = ReplicaCore("r1", ids, CounterType())
        r2 = ReplicaCore("r2", ids, CounterType())
        for replica in (r1, r2):
            replica.configure_delta_gossip(True, full_state_interval)
        return r1, r2

    def feed(self, replica, count, gen):
        ops = [make_operation(CounterType.increment(), gen.fresh()) for _ in range(count)]
        for op in ops:
            replica.receive_request(RequestMessage(op))
        replica.do_all_ready()
        return ops

    def exchange(self, r1, r2, rounds=1):
        for _ in range(rounds):
            r2.receive_gossip(r1.make_gossip("r2"))
            r1.receive_gossip(r2.make_gossip("r1"))

    def test_steady_state_delta_is_empty(self):
        r1, r2 = self.setup_pair()
        self.feed(r1, 5, OperationIdGenerator("c"))
        self.exchange(r1, r2, rounds=3)
        message = r1.make_gossip("r2")
        assert message.is_delta
        assert message.size_estimate() == 0

    def test_first_message_is_full(self):
        r1, r2 = self.setup_pair()
        self.feed(r1, 3, OperationIdGenerator("c"))
        message = r1.make_gossip("r2")
        assert not message.is_delta
        assert len(message.done) == 3

    def test_delta_carries_only_new_operations(self):
        r1, r2 = self.setup_pair()
        gen = OperationIdGenerator("c")
        self.feed(r1, 4, gen)
        self.exchange(r1, r2, rounds=2)
        fresh = self.feed(r1, 2, gen)
        message = r1.make_gossip("r2")
        assert message.is_delta
        assert message.done == frozenset(fresh)
        # The effective view still describes the sender's full knowledge.
        assert len(message.effective_done()) == 6
        assert {x.id for x in message.effective_done()} == set(message.effective_labels())

    def test_periodic_full_state_fallback(self):
        r1, r2 = self.setup_pair(full_state_interval=3)
        self.feed(r1, 3, OperationIdGenerator("c"))
        self.exchange(r1, r2)  # seqno 1: full (no basis yet)
        kinds = []
        for _ in range(6):
            message = r1.make_gossip("r2")
            kinds.append(message.is_delta)
            r2.receive_gossip(message)
            r1.receive_gossip(r2.make_gossip("r1"))
        # Every third send to the peer reverts to full state.
        assert False in kinds and True in kinds
        assert kinds.count(False) >= 2

    def test_crash_recovery_via_epoch_and_full_state(self):
        r1, r2 = self.setup_pair()
        self.feed(r1, 5, OperationIdGenerator("c"))
        self.exchange(r1, r2, rounds=3)
        assert r1.make_gossip("r2").size_estimate() == 0

        r2.crash(volatile_memory=True)
        r2.recover_from_stable_storage()
        assert not r2.done_here()

        # The recovered replica's first gossip carries its bumped epoch;
        # observing it voids every pre-crash ack, so the reply is full state.
        r1.receive_gossip(r2.make_gossip("r1"))
        message = r1.make_gossip("r2")
        assert not message.is_delta
        r2.receive_gossip(message)
        r2.do_all_ready()
        assert r2.done_here() == r1.done_here()
        assert r2.labels == r1.labels

    def test_delta_gossip_resumes_after_peer_crash(self):
        """After the epoch bump the sender restarts its seqno stream, so once
        the recovered peer acknowledges the new stream, deltas resume (they
        must not stay full-state forever) and the receiver's out-of-order
        buffer stays empty."""
        r1, r2 = self.setup_pair()
        self.feed(r1, 5, OperationIdGenerator("c"))
        self.exchange(r1, r2, rounds=3)
        r2.crash(volatile_memory=True)
        r2.recover_from_stable_storage()
        self.exchange(r1, r2, rounds=2)  # epoch observed, new stream acked
        message = r1.make_gossip("r2")
        assert message.is_delta
        assert message.size_estimate() == 0
        assert r2._peer_in["r1"].above == set()

    def test_lost_message_gap_healed_by_full_state(self):
        """A delta-mode message lost in transit leaves a seqno gap; the next
        full-state message jumps the receiver's frontier over it, so acks
        (and therefore small deltas) resume instead of stalling forever."""
        r1, r2 = self.setup_pair(full_state_interval=3)
        gen = OperationIdGenerator("c")
        self.feed(r1, 3, gen)
        self.exchange(r1, r2, rounds=2)
        r1.make_gossip("r2")  # lost in transit: consumes a seqno, never arrives
        self.feed(r1, 1, gen)
        for _ in range(4):  # within this window a periodic full message fires
            self.exchange(r1, r2)
        assert r2._peer_in["r1"].above == set()
        message = r1.make_gossip("r2")
        assert message.is_delta
        assert message.size_estimate() == 0

    def test_stale_ack_regression_is_sound(self):
        r1, r2 = self.setup_pair()
        gen = OperationIdGenerator("c")
        self.feed(r1, 3, gen)
        self.exchange(r1, r2, rounds=2)
        stale = r2.make_gossip("r1")  # carries the current ack
        self.feed(r1, 2, gen)
        self.exchange(r1, r2, rounds=2)
        # A reordered old message regresses the ack; deltas just get larger.
        r1.receive_gossip(stale)
        message = r1.make_gossip("r2")
        r2.receive_gossip(message)
        assert r2.done_here() == r1.done_here()

    def test_full_state_interval_validation(self):
        r1, _ = self.setup_pair()
        with pytest.raises(ConfigurationError):
            r1.configure_delta_gossip(True, full_state_interval=0)


class TestDeltaInSimulation:
    def run_cluster(self, delta: bool, batch: bool = False, seed: int = 7):
        params = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0,
                                  delta_gossip=delta, full_state_interval=8,
                                  batch_gossip=batch)
        cluster = SimulatedCluster(CounterType(), 4, ["c0", "c1"],
                                   params=params, seed=seed)
        spec = WorkloadSpec(operations_per_client=15, mean_interarrival=1.0,
                            strict_fraction=0.3)
        run_workload(cluster, spec, seed=seed + 2)
        return cluster

    def test_delta_cluster_matches_full_cluster(self):
        full = self.run_cluster(delta=False)
        delta = self.run_cluster(delta=True)
        assert full.responded == delta.responded
        assert delta.network.counters.gossip_payload < full.network.counters.gossip_payload

    def test_batched_gossip_answers_everything(self):
        batched = self.run_cluster(delta=True, batch=True)
        assert batched.outstanding_operations() == 0
        assert set(batched.responded) == set(self.run_cluster(delta=True).responded)
        # After the drain phase all replicas have converged.
        done_sets = [frozenset(rep.done_here()) for rep in batched.replicas.values()]
        assert len(set(done_sets)) == 1

    def test_cluster_crash_recovery_with_delta(self):
        params = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0,
                                  delta_gossip=True, full_state_interval=4)
        cluster = SimulatedCluster(CounterType(), 3, ["c0"], params=params, seed=11)
        for _ in range(6):
            cluster.execute("c0", CounterType.increment())
        cluster.crash_replica("r1", volatile_memory=True)
        cluster.run(10.0)
        for _ in range(3):
            cluster.execute("c0", CounterType.increment())
        cluster.recover_replica("r1")
        cluster.run(60.0)
        recovered = cluster.replicas["r1"]
        reference = cluster.replicas["r0"]
        assert recovered.done_here() == reference.done_here()
        _, value = cluster.execute("c0", CounterType.read(), strict=True)
        assert value == 9


class TestIncrementalReplay:
    def test_values_identical_and_replay_work_lower(self):
        def drive(factory, seed=3):
            system = AlgorithmSystem(CounterType(), ["r1", "r2"], ["a"],
                                     replica_factory=factory)
            gen = OperationIdGenerator("a")
            rng = random.Random(seed)
            for index in range(10):
                system.request(make_operation(CounterType.increment(), gen.fresh(),
                                              strict=(index % 4 == 0)))
            system.run_random(rng, steps=800)
            system.drain(rng)
            system.run_random(rng, steps=800)
            applications = sum(
                r.stats.value_applications for r in system.replicas.values()
            )
            return system, applications

        plain, plain_apps = drive(None)
        incremental, incremental_apps = drive(IncrementalReplicaCore)
        assert plain.trace.responses == incremental.trace.responses
        assert incremental_apps < plain_apps

    def test_label_reordering_invalidates_cached_suffix(self):
        ids = ["r1", "r2"]
        r1 = IncrementalReplicaCore("r1", ids, RegisterType())
        r2 = ReplicaCore("r2", ids, RegisterType())
        gen = OperationIdGenerator("c")
        a = make_operation(RegisterType.write("a"), gen.fresh())
        b = make_operation(RegisterType.write("b"), gen.fresh())
        # r2 does b first (small label), r1 does a then b's gossip arrives,
        # reordering r1's unstable tail.
        r2.receive_request(RequestMessage(b))
        r2.do_all_ready()
        r1.receive_request(RequestMessage(a))
        r1.do_all_ready()
        assert r1.compute_value(a) == "a"  # warms the replay cache
        r1.receive_gossip(r2.make_gossip())
        r1.do_all_ready()
        order = [x.id for x in r1.done_order()]
        # Recompute after the merge: cached checkpoints for reordered
        # positions must not leak a stale state.
        state = RegisterType().initial_state()
        expected = {}
        for op in r1.done_order():
            state, value = RegisterType().apply(state, op.op)
            expected[op.id] = value
        for op in r1.done_here():
            assert r1.compute_value(op) == expected[op.id]
        assert order == [x.id for x in r1.done_order()]

    def test_crash_clears_the_cache(self):
        ids = ["r1", "r2"]
        replica = IncrementalReplicaCore("r1", ids, CounterType())
        gen = OperationIdGenerator("c")
        op = make_operation(CounterType.increment(), gen.fresh())
        replica.receive_request(RequestMessage(op))
        replica.do_all_ready()
        assert replica.compute_value(op) == 1
        replica.crash(volatile_memory=True)
        assert replica._replay_order == []
        assert replica._replay_values == {}
