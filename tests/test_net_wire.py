"""Wire-codec lockstep twins and the clock-skew adversary.

:class:`~repro.net.wire.WireCluster` claims that pushing every message
through ``encode → bytes → decode`` changes *nothing* about the execution:
the codec is lossless and the hook consumes no randomness.  The twin suite
enforces that the way delta gossip and the fast core were proven — same
seeds, same responses, same witness order, same replayed states, same
trace — across gossip modes, data types, random faults and a crash with
volatile memory loss.

The clock-skew fault rides along (it is observable only through the wire's
``sent_at`` timestamps): enabling it must never perturb the primary
schedule, while the cluster's measured gossip-lag bounds must show the
skew.
"""

import pytest

from repro.algorithm.checkpoint import CompactionPolicy
from repro.datatypes import CounterType, GSetType, RegisterType
from repro.net.wire import WireCluster
from repro.sim.cluster import SimulatedCluster, SimulationParams
from repro.sim.faults import (
    ClockSkew,
    DuplicateMessages,
    FaultSchedule,
    GossipOutage,
    ReplicaCrash,
    fault_from_dict,
    fault_to_dict,
)
from repro.sim.workload import WorkloadSpec, run_workload

CONFIGS = {
    "full": {},
    "delta": dict(delta_gossip=True, incremental_replay=True),
    "advert": dict(
        delta_gossip=True,
        incremental_replay=True,
        batch_gossip=True,
        compaction=CompactionPolicy(min_batch=8, value_retention=32),
        compaction_interval=10.0,
        advert_gossip=True,
    ),
}

DATA_TYPES = {"counter": CounterType, "register": RegisterType, "gset": GSetType}


def run_cluster(cluster_class, config, data_type_name="counter", faults=(), seed=13):
    from repro.conformance.scenario import DATA_TYPES as REGISTRY

    type_factory, operator_mix = REGISTRY[data_type_name]
    # retransmit_interval matters under crashes: the liveness oracle's
    # casualty relaxation assumes wiped-but-unanswered operations get
    # re-delivered by the front end (as the conformance generator does).
    params = SimulationParams(
        df=1.0, dg=1.0, gossip_period=2.0, retransmit_interval=4.0, **CONFIGS[config]
    )
    cluster = cluster_class(type_factory(), 3, ["c1", "c2"], params=params, seed=seed)
    schedule = FaultSchedule()
    for fault in faults:
        schedule.add(fault)
    schedule.install(cluster)
    spec = WorkloadSpec(
        operations_per_client=40,
        mean_interarrival=0.5,
        strict_fraction=0.2,
        prev_policy="last_own",
        operator_factory=operator_mix,
    )
    run_workload(cluster, spec, seed=7)
    if schedule.last_fault_time() > cluster.now:
        cluster.run(schedule.last_fault_time() - cluster.now + params.gossip_period)
    cluster.run_until_idle()
    return cluster


def assert_twin_equivalent(base, wire):
    assert base.responded == wire.responded
    assert base.failed == wire.failed
    assert base.eventual_order() == wire.eventual_order()
    assert base.trace == wire.trace
    base_states = {rid: r.replayed_state() for rid, r in base.replicas.items()}
    wire_states = {rid: r.replayed_state() for rid, r in wire.replicas.items()}
    assert base_states == wire_states


class TestWireTwins:
    @pytest.mark.parametrize("config", sorted(CONFIGS))
    @pytest.mark.parametrize("data_type_name", sorted(DATA_TYPES))
    def test_wire_cluster_matches_plain_cluster(self, data_type_name, config):
        base = run_cluster(SimulatedCluster, config, data_type_name)
        wire = run_cluster(WireCluster, config, data_type_name)
        assert_twin_equivalent(base, wire)
        # And the harness really did push bytes: every kind that the plain
        # run counted appears in the wire accounting.
        assert wire.wire_stats.frames > 0
        assert wire.wire_stats.bytes_by_kind["gossip"] > 0
        assert wire.wire_stats.bytes_by_kind["request"] > 0

    @pytest.mark.parametrize("config", ["delta", "advert"])
    def test_wire_twins_survive_faults_and_crash(self, config):
        faults = [
            ReplicaCrash("r1", at=12.0, recover_at=30.0, volatile_memory=True),
            GossipOutage("r2", start=6.0, end=10.0),
            DuplicateMessages(start=4.0, end=20.0, probability=0.3),
        ]
        base = run_cluster(SimulatedCluster, config, faults=list(faults))
        wire = run_cluster(WireCluster, config, faults=list(faults))
        assert_twin_equivalent(base, wire)
        # Crash/recovery forces the catch-up paths (full-state or
        # pull/transfer) across the codec too.  A volatile-memory crash may
        # legitimately lose operations, so run the casualty-aware oracle
        # suite rather than the fault-free trace check.
        from repro.conformance.oracles import check_cluster_outcome

        check_cluster_outcome(wire)

    def test_corrupt_transfer_rejection_crosses_the_codec(self):
        from repro.sim.faults import CorruptTransfers

        from repro.conformance.oracles import check_cluster_outcome

        faults = [
            ReplicaCrash("r1", at=10.0, recover_at=24.0, volatile_memory=True),
            CorruptTransfers(start=0.0, end=40.0, probability=1.0),
        ]
        wire = run_cluster(WireCluster, "advert", faults=faults)
        # The tampered chunks crossed the wire and were rejected by digest
        # on arrival — then healed by a later re-pull (after the window).
        rejections = sum(
            r.stats.transfer_rejections for r in wire.replicas.values()
        )
        assert rejections > 0
        assert wire.wire_stats.bytes_by_kind["transfer"] > 0
        check_cluster_outcome(wire)


class TestClockSkew:
    def test_enabling_skew_never_perturbs_the_schedule(self):
        skew = ClockSkew(start=2.0, end=60.0, max_skew=5.0)
        plain = run_cluster(SimulatedCluster, "delta")
        skewed = run_cluster(SimulatedCluster, "delta", faults=[skew])
        assert_twin_equivalent(plain, skewed)

    def test_skew_shows_up_in_gossip_lag_bounds(self):
        plain = run_cluster(SimulatedCluster, "delta")
        skewed = run_cluster(
            SimulatedCluster, "delta", faults=[ClockSkew(0.0, 200.0, max_skew=50.0)]
        )
        assert plain.gossip_lag_bounds is not None
        assert skewed.gossip_lag_bounds is not None
        lo, hi = plain.gossip_lag_bounds
        skewed_lo, skewed_hi = skewed.gossip_lag_bounds
        # True lag is always positive; ±50 time-unit skew dwarfs it and must
        # widen the observed bounds (negative lags become possible).
        assert lo > 0.0
        assert skewed_lo < lo
        assert skewed_hi > hi

    def test_skew_on_the_wire_twin_too(self):
        skew = ClockSkew(start=0.0, end=100.0, max_skew=8.0, replicas=["r0", "r2"])
        base = run_cluster(WireCluster, "delta")
        skewed = run_cluster(WireCluster, "delta", faults=[skew])
        assert_twin_equivalent(base, skewed)

    def test_offsets_come_from_the_fault_stream_only(self):
        # Two clusters, same seed: installing the fault on one must leave
        # the network's primary rng stream in the identical state, which the
        # schedule-identity twin above observes end-to-end; here we check
        # the offsets themselves are reproducible.
        def offsets(seed):
            params = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0)
            cluster = SimulatedCluster(CounterType(), 3, ["c1"], params=params, seed=seed)
            ClockSkew(start=1.0, end=5.0, max_skew=4.0).install(cluster)
            cluster.run(2.0)
            return dict(cluster.network.clock_skews)

        first, second = offsets(21), offsets(21)
        assert first == second
        assert set(first) == {"r0", "r1", "r2"}
        assert all(-4.0 <= v <= 4.0 for v in first.values())
        # The fault stream is a dedicated constant-seeded rng (by design:
        # enabling an adversary must not consume primary randomness), so
        # the offsets are identical across cluster seeds as well.
        assert offsets(22) == first

    def test_skew_clears_at_window_end(self):
        params = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0)
        cluster = SimulatedCluster(CounterType(), 3, ["c1"], params=params, seed=3)
        ClockSkew(start=1.0, end=5.0, max_skew=4.0, replicas=["r1"]).install(cluster)
        cluster.run(0.5)
        assert cluster.network.clock_skews == {}
        cluster.run(1.0)
        assert set(cluster.network.clock_skews) == {"r1"}
        cluster.run(4.0)
        assert cluster.network.clock_skews == {}

    def test_registry_round_trip(self):
        fault = ClockSkew(start=3.0, end=9.0, max_skew=2.5, replicas=["r0"])
        doc = fault_to_dict(fault)
        assert doc["kind"] == "clock_skew"
        rebuilt = fault_from_dict(doc)
        assert rebuilt == fault

    def test_validation(self):
        with pytest.raises(Exception):
            ClockSkew(start=5.0, end=5.0).install(
                SimulatedCluster(CounterType(), 3, ["c1"], seed=0)
            )
        with pytest.raises(Exception):
            ClockSkew(start=0.0, end=1.0, max_skew=-1.0).install(
                SimulatedCluster(CounterType(), 3, ["c1"], seed=0)
            )
