"""Tests for the ESDS-I / ESDS-II specification automata (Section 5)."""


import pytest

from repro.automata import Action, Composition, RandomScheduler
from repro.common import OperationIdGenerator, SpecificationError
from repro.core.operations import make_operation
from repro.core.orders import PartialOrder
from repro.datatypes import CounterType
from repro.spec.esds1 import EsdsSpecI
from repro.spec.esds2 import EsdsSpecII
from repro.spec.users import Users
from repro.verification.invariants import SpecInvariantChecker


@pytest.fixture
def gen():
    return OperationIdGenerator("alice")


def _request_and_enter(spec, operation):
    spec.step(Action("request", operation=operation))
    new_po = spec._minimal_new_po_for(operation)
    spec.step(Action("enter", operation=operation, new_po=new_po))
    return new_po


@pytest.mark.parametrize("spec_class", [EsdsSpecI, EsdsSpecII])
class TestSharedBehaviour:
    def test_request_adds_to_wait(self, spec_class, gen):
        spec = spec_class(CounterType())
        op = make_operation(CounterType.increment(), gen.fresh())
        spec.step(Action("request", operation=op))
        assert op in spec.wait

    def test_enter_requires_prev_in_ops(self, spec_class, gen):
        spec = spec_class(CounterType())
        ghost = gen.fresh()
        op = make_operation(CounterType.increment(), gen.fresh(), prev=[ghost])
        spec.step(Action("request", operation=op))
        with pytest.raises(SpecificationError):
            spec.step(Action("enter", operation=op, new_po=PartialOrder({(ghost, op.id)})))

    def test_enter_requires_waiting_operation(self, spec_class, gen):
        spec = spec_class(CounterType())
        op = make_operation(CounterType.increment(), gen.fresh())
        with pytest.raises(SpecificationError):
            spec.step(Action("enter", operation=op, new_po=PartialOrder()))

    def test_enter_requires_po_extension(self, spec_class, gen):
        spec = spec_class(CounterType())
        a = make_operation(CounterType.increment(), gen.fresh())
        b = make_operation(CounterType.increment(), gen.fresh())
        _request_and_enter(spec, a)
        _request_and_enter(spec, b)
        spec.step(Action("add_constraints", new_po=spec.po.extended_with({(a.id, b.id)})))
        c = make_operation(CounterType.read(), gen.fresh())
        spec.step(Action("request", operation=c))
        # A new_po that drops the existing constraint must be rejected.
        with pytest.raises(SpecificationError):
            spec.step(Action("enter", operation=c, new_po=PartialOrder()))

    def test_enter_must_include_csc(self, spec_class, gen):
        spec = spec_class(CounterType())
        a = make_operation(CounterType.increment(), gen.fresh())
        _request_and_enter(spec, a)
        b = make_operation(CounterType.read(), gen.fresh(), prev=[a.id])
        spec.step(Action("request", operation=b))
        with pytest.raises(SpecificationError):
            spec.step(Action("enter", operation=b, new_po=spec.po))

    def test_calculate_requires_entered_operation(self, spec_class, gen):
        spec = spec_class(CounterType())
        op = make_operation(CounterType.increment(), gen.fresh())
        spec.step(Action("request", operation=op))
        with pytest.raises(SpecificationError):
            spec.step(Action("calculate", operation=op, value=1))

    def test_calculate_value_must_be_in_valset(self, spec_class, gen):
        spec = spec_class(CounterType())
        op = make_operation(CounterType.increment(), gen.fresh())
        _request_and_enter(spec, op)
        with pytest.raises(SpecificationError):
            spec.step(Action("calculate", operation=op, value=99))
        spec.step(Action("calculate", operation=op, value=1))
        assert (op, 1) in spec.rept

    def test_strict_calculate_requires_stability(self, spec_class, gen):
        spec = spec_class(CounterType())
        op = make_operation(CounterType.increment(), gen.fresh(), strict=True)
        _request_and_enter(spec, op)
        with pytest.raises(SpecificationError):
            spec.step(Action("calculate", operation=op, value=1))
        spec.step(Action("stabilize", operation=op))
        spec.step(Action("calculate", operation=op, value=1))

    def test_response_requires_calculated_value(self, spec_class, gen):
        spec = spec_class(CounterType())
        op = make_operation(CounterType.increment(), gen.fresh())
        _request_and_enter(spec, op)
        with pytest.raises(SpecificationError):
            spec.step(Action("response", operation=op, value=1))
        spec.step(Action("calculate", operation=op, value=1))
        spec.step(Action("response", operation=op, value=1))
        assert op not in spec.wait
        assert not spec.rept

    def test_add_constraints_only_grows(self, spec_class, gen):
        spec = spec_class(CounterType())
        a = make_operation(CounterType.increment(), gen.fresh())
        b = make_operation(CounterType.double(), gen.fresh())
        _request_and_enter(spec, a)
        _request_and_enter(spec, b)
        grown = spec.po.extended_with({(a.id, b.id)})
        spec.step(Action("add_constraints", new_po=grown))
        assert spec.po.precedes(a.id, b.id)
        with pytest.raises(SpecificationError):
            spec.step(Action("add_constraints", new_po=PartialOrder()))

    def test_stabilize_requires_comparability(self, spec_class, gen):
        spec = spec_class(CounterType())
        a = make_operation(CounterType.increment(), gen.fresh())
        b = make_operation(CounterType.double(), gen.fresh())
        _request_and_enter(spec, a)
        _request_and_enter(spec, b)
        # a and b are incomparable, so neither may stabilize yet.
        with pytest.raises(SpecificationError):
            spec.step(Action("stabilize", operation=a))
        spec.step(Action("add_constraints", new_po=spec.po.extended_with({(a.id, b.id)})))
        spec.step(Action("stabilize", operation=a))
        assert a in spec.stabilized


class TestEsds1Specifics:
    def test_repeated_enter_rejected(self, gen):
        spec = EsdsSpecI(CounterType())
        op = make_operation(CounterType.increment(), gen.fresh())
        _request_and_enter(spec, op)
        with pytest.raises(SpecificationError):
            spec.step(Action("enter", operation=op, new_po=spec.po))

    def test_stabilize_requires_stable_prefix(self, gen):
        spec = EsdsSpecI(CounterType())
        a = make_operation(CounterType.increment(), gen.fresh())
        b = make_operation(CounterType.double(), gen.fresh(), prev=[a.id])
        _request_and_enter(spec, a)
        _request_and_enter(spec, b)
        # b's only predecessor a is not stable yet: no gaps allowed in ESDS-I.
        with pytest.raises(SpecificationError):
            spec.step(Action("stabilize", operation=b))
        spec.step(Action("stabilize", operation=a))
        spec.step(Action("stabilize", operation=b))

    def test_repeated_stabilize_rejected(self, gen):
        spec = EsdsSpecI(CounterType())
        op = make_operation(CounterType.increment(), gen.fresh())
        _request_and_enter(spec, op)
        spec.step(Action("stabilize", operation=op))
        with pytest.raises(SpecificationError):
            spec.step(Action("stabilize", operation=op))


class TestEsds2Specifics:
    def test_repeated_enter_allowed(self, gen):
        spec = EsdsSpecII(CounterType())
        op = make_operation(CounterType.increment(), gen.fresh())
        _request_and_enter(spec, op)
        spec.step(Action("enter", operation=op, new_po=spec.po))

    def test_stabilize_with_gaps_allowed(self, gen):
        spec = EsdsSpecII(CounterType())
        a = make_operation(CounterType.increment(), gen.fresh())
        b = make_operation(CounterType.double(), gen.fresh(), prev=[a.id])
        _request_and_enter(spec, a)
        _request_and_enter(spec, b)
        # In ESDS-II, b may stabilize although a has not (a "gap"), because
        # its prefix {a} is totally ordered.
        spec.step(Action("stabilize", operation=b))
        assert b in spec.stabilized and a not in spec.stabilized

    def test_stabilize_requires_totally_ordered_prefix(self, gen):
        spec = EsdsSpecII(CounterType())
        a = make_operation(CounterType.increment(), gen.fresh())
        b = make_operation(CounterType.double(), gen.fresh())
        c = make_operation(CounterType.read(), gen.fresh(), prev=[a.id, b.id])
        for op in (a, b, c):
            _request_and_enter(spec, op)
        # c is comparable with both a and b, but a and b are mutually
        # incomparable, so c's value is not determined yet.
        with pytest.raises(SpecificationError):
            spec.step(Action("stabilize", operation=c))

    def test_repeated_stabilize_is_noop(self, gen):
        spec = EsdsSpecII(CounterType())
        op = make_operation(CounterType.increment(), gen.fresh())
        _request_and_enter(spec, op)
        spec.step(Action("stabilize", operation=op))
        spec.step(Action("stabilize", operation=op))
        assert op in spec.stabilized


@pytest.mark.parametrize("spec_class", [EsdsSpecI, EsdsSpecII])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_exploration_preserves_spec_invariants(spec_class, seed):
    """Random executions of ESDS x Users maintain the Section 5.2 invariants."""

    def factory(rng, requested):
        if len(requested) >= 5:
            return None
        gen = OperationIdGenerator("alice", start=len(requested))
        operator = rng.choice([CounterType.increment(), CounterType.add(2), CounterType.read()])
        prev = []
        if requested and rng.random() < 0.5:
            prev = [rng.choice(sorted(requested, key=repr)).id]
        return make_operation(operator, gen.fresh(), prev=prev, strict=rng.random() < 0.3)

    spec = spec_class(CounterType())
    users = Users(factory)
    composition = Composition([spec, users], name="spec x users")
    checker = SpecInvariantChecker(spec)
    scheduler = RandomScheduler(composition, seed=seed, invariant=lambda _a: checker.check_all())
    scheduler.run(steps=80)
    assert len(scheduler.execution) > 0
