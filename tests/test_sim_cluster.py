"""End-to-end tests of the simulated ESDS deployment (§9 timing behaviour)."""

import pytest

from repro.algorithm.memoized import MemoizedReplicaCore
from repro.analysis.bounds import (
    TimingAssumptions,
    check_latency_records_against_bounds,
    response_time_bound,
)
from repro.common import ConfigurationError
from repro.datatypes import BankAccountType, CounterType, RegisterType
from repro.sim.cluster import SimulatedCluster, SimulationParams
from repro.sim.workload import WorkloadSpec, run_workload
from repro.verification.serializability import check_recorded_trace

PARAMS = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0)


class TestConfiguration:
    def test_needs_two_replicas(self):
        with pytest.raises(ConfigurationError):
            SimulatedCluster(CounterType(), num_replicas=1)

    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationParams(frontend_policy="nope")

    def test_bad_fanout_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationParams(request_fanout=0)

    def test_prev_must_reference_known_operation(self):
        cluster = SimulatedCluster(CounterType(), 2, ["c0"], params=PARAMS)
        other = SimulatedCluster(CounterType(), 2, ["c0"], params=PARAMS)
        foreign, _ = other.execute("c0", CounterType.increment())
        with pytest.raises(ConfigurationError):
            cluster.submit("c0", CounterType.read(), prev=[foreign.id])

    def test_operator_validated_on_submit(self):
        cluster = SimulatedCluster(CounterType(), 2, ["c0"], params=PARAMS)
        with pytest.raises(ValueError):
            cluster.submit("c0", RegisterType.write(1))


class TestExecuteFacade:
    def test_nonstrict_latency_is_round_trip(self):
        cluster = SimulatedCluster(CounterType(), 3, ["c0"], params=PARAMS, seed=1)
        start = cluster.now
        _, value = cluster.execute("c0", CounterType.increment())
        assert value == 1
        assert cluster.now - start == pytest.approx(2 * PARAMS.df)

    def test_strict_operation_waits_for_stability(self):
        cluster = SimulatedCluster(CounterType(), 3, ["c0"], params=PARAMS, seed=1)
        start = cluster.now
        _, value = cluster.execute("c0", CounterType.increment(), strict=True)
        assert value == 1
        elapsed = cluster.now - start
        assert elapsed > 2 * PARAMS.df
        assert elapsed <= 2 * PARAMS.df + 3 * (PARAMS.gossip_period + PARAMS.dg) + 1e-9

    def test_read_your_writes_via_prev(self):
        cluster = SimulatedCluster(RegisterType(), 3, ["alice", "bob"], params=PARAMS, seed=2)
        write, _ = cluster.execute("alice", RegisterType.write("x"))
        _, value = cluster.execute("bob", RegisterType.read(), prev=[write.id], strict=True)
        assert value == "x"

    def test_values_accumulate_across_operations(self):
        cluster = SimulatedCluster(BankAccountType(), 2, ["c0"], params=PARAMS, seed=3)
        cluster.execute("c0", BankAccountType.deposit(10))
        cluster.execute("c0", BankAccountType.deposit(5))
        _, balance = cluster.execute("c0", BankAccountType.balance(), strict=True)
        assert balance == 15

    def test_responded_and_value_of(self):
        cluster = SimulatedCluster(CounterType(), 2, ["c0"], params=PARAMS)
        op, value = cluster.execute("c0", CounterType.increment())
        assert cluster.value_of(op) == value
        assert cluster.outstanding_operations() == 0


class TestTheorem93Bounds:
    @pytest.mark.parametrize("policy", ["affinity", "round_robin", "random"])
    def test_all_latencies_within_delta(self, policy):
        params = SimulationParams(df=1.0, dg=2.0, gossip_period=3.0, frontend_policy=policy)
        cluster = SimulatedCluster(CounterType(), 4,
                                   [f"c{i}" for i in range(4)], params=params, seed=7)
        spec = WorkloadSpec(operations_per_client=15, mean_interarrival=1.0,
                            strict_fraction=0.3, prev_policy="random_own")
        result = run_workload(cluster, spec, seed=11)
        assert cluster.outstanding_operations() == 0
        timing = TimingAssumptions(df=params.df, dg=params.dg, gossip_period=params.gossip_period)
        violations = check_latency_records_against_bounds(result.metrics.records, timing)
        assert violations == []

    def test_bound_values(self):
        timing = TimingAssumptions(df=1.0, dg=2.0, gossip_period=3.0)
        cluster = SimulatedCluster(CounterType(), 2, ["c0"],
                                   params=SimulationParams(df=1.0, dg=2.0, gossip_period=3.0))
        plain = cluster.make_operation("c0", CounterType.increment())
        assert response_time_bound(plain, timing) == 2.0
        strict = cluster.make_operation("c0", CounterType.increment(), strict=True)
        assert response_time_bound(strict, timing) == 2.0 + 3 * 5.0


class TestTraceConsistency:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_strict_responses_explained_by_minlabel_order(self, seed):
        params = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0, jitter=0.5)
        cluster = SimulatedCluster(CounterType(), 3, ["c0", "c1"], params=params, seed=seed)
        spec = WorkloadSpec(operations_per_client=12, mean_interarrival=0.7,
                            strict_fraction=0.4, prev_policy="last_own",
                            poisson_arrivals=True)
        run_workload(cluster, spec, seed=seed + 50)
        assert cluster.outstanding_operations() == 0
        check_recorded_trace(cluster.data_type, cluster.trace,
                             witness=cluster.eventual_order())

    def test_memoized_replicas_equivalent_externally(self):
        params = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0)
        plain = SimulatedCluster(CounterType(), 3, ["c0"], params=params, seed=9)
        memo = SimulatedCluster(CounterType(), 3, ["c0"], params=params, seed=9,
                                replica_factory=MemoizedReplicaCore)
        spec = WorkloadSpec(operations_per_client=15, mean_interarrival=0.5,
                            strict_fraction=0.3)
        plain_result = run_workload(plain, spec, seed=13)
        memo_result = run_workload(memo, spec, seed=13)
        plain_values = {r.operation.id: r.value for r in plain_result.metrics.records}
        memo_values = {r.operation.id: r.value for r in memo_result.metrics.records}
        assert plain_values == memo_values
        assert memo.total_value_applications() < plain.total_value_applications()


class TestStabilizationTracking:
    def test_stabilization_times_recorded(self):
        params = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0, track_stabilization=True)
        cluster = SimulatedCluster(CounterType(), 3, ["c0"], params=params, seed=4)
        cluster.execute("c0", CounterType.increment())
        cluster.run(duration=20.0)
        assert cluster.metrics.stabilization_times
        summary = cluster.metrics.stabilization_summary()
        assert summary.count == 1
        assert summary.mean <= params.df + 3 * (params.gossip_period + params.dg)
