"""Direct unit tests for :mod:`repro.sim.faults` — the fault classes'
scheduling, end-time accounting and observable effect on the cluster, tested
in isolation (the end-to-end behaviour is covered by the fault-tolerance and
scenario-fuzz suites)."""

import pytest

from repro.algorithm.checkpoint import CompactionPolicy
from repro.algorithm.messages import PullRequestMessage
from repro.datatypes import CounterType
from repro.sim.cluster import (
    CORRUPTION_MARKER,
    SimulatedCluster,
    SimulationParams,
    _tamper_transfer,
)
from repro.sim.faults import (
    AsymmetricPartition,
    CorruptTransfers,
    DelaySpike,
    DuplicateMessages,
    FaultSchedule,
    GossipOutage,
    ReplicaCrash,
    StragglerReplica,
)


def make_cluster(**params_kwargs):
    params = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0, **params_kwargs)
    return SimulatedCluster(CounterType(), 3, ["c0"], params=params, seed=1)


class TestReplicaCrash:
    def test_crash_and_recovery_are_scheduled_at_the_given_times(self):
        cluster = make_cluster()
        ReplicaCrash("r1", at=5.0, recover_at=9.0).install(cluster)
        cluster.run(4.9)
        assert "r1" not in cluster._crashed
        cluster.run(0.2)  # past t=5.0
        assert "r1" in cluster._crashed
        cluster.run(3.7)  # t=8.8, still down
        assert "r1" in cluster._crashed
        cluster.run(0.4)  # past t=9.0
        assert "r1" not in cluster._crashed

    def test_crash_without_recovery_is_permanent(self):
        cluster = make_cluster()
        ReplicaCrash("r2", at=1.0).install(cluster)
        cluster.run(50.0)
        assert "r2" in cluster._crashed

    def test_volatile_memory_flag_controls_state_loss(self):
        for volatile, expect_empty in ((True, True), (False, False)):
            cluster = make_cluster()
            _op, _value = cluster.execute("c0", CounterType.increment())
            replica = next(
                rid for rid, rep in cluster.replicas.items() if rep.done_here()
            )
            ReplicaCrash(replica, at=cluster.now + 1.0,
                         volatile_memory=volatile).install(cluster)
            cluster.run(2.0)
            assert (not cluster.replicas[replica].done_here()) == expect_empty

    def test_end_time(self):
        assert ReplicaCrash("r0", at=3.0).end_time() == 3.0
        assert ReplicaCrash("r0", at=3.0, recover_at=8.5).end_time() == 8.5

    def test_recover_before_crash_rejected(self):
        with pytest.raises(ValueError):
            ReplicaCrash("r0", at=5.0, recover_at=5.0).install(make_cluster())


class TestGossipOutage:
    def test_partition_applies_only_inside_the_window(self):
        cluster = make_cluster()
        GossipOutage("r1", start=2.0, end=6.0).install(cluster)
        cluster.run(1.9)
        assert "r1" not in cluster.network.partitioned
        cluster.run(0.2)
        assert "r1" in cluster.network.partitioned
        cluster.run(4.0)  # past t=6.0
        assert "r1" not in cluster.network.partitioned

    def test_partitioned_replica_drops_messages_both_ways(self):
        cluster = make_cluster()
        cluster.network.partition("r1")
        dropped_before = cluster.network.counters.dropped
        assert cluster.network.should_drop("gossip", "r0", "r1")
        assert cluster.network.should_drop("gossip", "r1", "r0")
        assert not cluster.network.should_drop("gossip", "r0", "r2")
        assert cluster.network.counters.dropped == dropped_before + 2

    def test_end_time_and_validation(self):
        assert GossipOutage("r1", start=2.0, end=6.0).end_time() == 6.0
        with pytest.raises(ValueError):
            GossipOutage("r1", start=6.0, end=6.0).install(make_cluster())


class TestDelaySpike:
    def test_delays_multiplied_during_window_only(self):
        cluster = make_cluster(spike_factor=4.0)
        DelaySpike(start=2.0, end=7.0).install(cluster)
        cluster.run(1.0)
        assert cluster.network.delay_for("gossip", cluster.now) == 1.0
        cluster.run(2.0)  # inside the window
        assert cluster.network.delay_for("gossip", cluster.now) == 4.0
        assert cluster.network.delay_for("request", cluster.now) == 4.0
        cluster.run(5.0)  # past the window
        assert cluster.network.delay_for("gossip", cluster.now) == 1.0

    def test_spike_factor_below_one_never_speeds_up(self):
        cluster = make_cluster(spike_factor=0.5)
        DelaySpike(start=0.0, end=5.0).install(cluster)
        cluster.run(1.0)
        assert cluster.network.delay_for("gossip", cluster.now) == 1.0

    def test_end_time_and_validation(self):
        assert DelaySpike(start=1.0, end=4.0).end_time() == 4.0
        with pytest.raises(ValueError):
            DelaySpike(start=4.0, end=4.0).install(make_cluster())


class TestAsymmetricPartition:
    def test_severs_only_the_named_direction_inside_the_window(self):
        cluster = make_cluster()
        AsymmetricPartition("r0", "r1", start=2.0, end=6.0).install(cluster)
        cluster.run(1.9)
        assert ("r0", "r1") not in cluster.network.partitioned_links
        assert not cluster.network.should_drop("gossip", "r0", "r1")
        cluster.run(0.2)  # inside the window
        assert cluster.network.should_drop("gossip", "r0", "r1")
        assert not cluster.network.should_drop("gossip", "r1", "r0")  # reverse flows
        assert not cluster.network.should_drop("gossip", "r0", "r2")
        cluster.run(4.0)  # past t=6.0
        assert not cluster.network.should_drop("gossip", "r0", "r1")

    def test_drops_are_counted(self):
        cluster = make_cluster()
        cluster.network.partition_link("r2", "r0")
        before = cluster.network.counters.dropped
        assert cluster.network.should_drop("gossip", "r2", "r0")
        assert cluster.network.counters.dropped == before + 1

    def test_end_time_and_validation(self):
        assert AsymmetricPartition("r0", "r1", start=2.0, end=6.0).end_time() == 6.0
        with pytest.raises(ValueError):
            AsymmetricPartition("r0", "r1", start=6.0, end=6.0).install(make_cluster())


class TestStragglerReplica:
    def test_slows_messages_to_and_from_the_straggler_inside_the_window(self):
        cluster = make_cluster()
        StragglerReplica("r1", factor=3.0, start=2.0, end=7.0).install(cluster)
        cluster.run(1.0)
        assert cluster.network.delay_for("gossip", cluster.now, "r1", "r0") == 1.0
        cluster.run(2.0)  # inside the window
        assert cluster.network.delay_for("gossip", cluster.now, "r1", "r0") == 3.0
        assert cluster.network.delay_for("gossip", cluster.now, "r0", "r1") == 3.0
        assert cluster.network.delay_for("gossip", cluster.now, "r0", "r2") == 1.0
        assert cluster.network.delay_for("request", cluster.now, "c0", "r1") == 3.0
        cluster.run(5.0)  # past t=7.0
        assert cluster.network.delay_for("gossip", cluster.now, "r1", "r0") == 1.0

    def test_two_stragglers_compound(self):
        cluster = make_cluster()
        cluster.network.set_straggler("r0", 2.0)
        cluster.network.set_straggler("r1", 3.0)
        assert cluster.network.delay_for("gossip", cluster.now, "r0", "r1") == 6.0

    def test_factor_below_one_rejected(self):
        cluster = make_cluster()
        with pytest.raises(ValueError):
            cluster.network.set_straggler("r1", 0.5)

    def test_end_time_and_validation(self):
        assert StragglerReplica("r1", factor=2.0, start=1.0, end=4.0).end_time() == 4.0
        with pytest.raises(ValueError):
            StragglerReplica("r1", factor=2.0, start=4.0, end=4.0).install(make_cluster())


class TestDuplicateMessages:
    def test_duplication_window_and_counter(self):
        cluster = make_cluster()
        network = cluster.network
        assert network.maybe_duplicate("gossip", 0.0, "r0", "r1") is None
        network.start_duplication(until=10.0, probability=1.0)
        extra = network.maybe_duplicate("gossip", 5.0, "r0", "r1")
        assert extra is not None and extra > 0.0
        assert network.counters.duplicated == 1
        # Extra deliveries are *not* folded into the per-kind send counters,
        # so the overhead metrics stay comparable across the adversary.
        assert network.counters.gossip == 0
        assert network.maybe_duplicate("gossip", 10.0, "r0", "r1") is None  # window over
        network.start_duplication(until=20.0, probability=0.0)
        assert network.maybe_duplicate("gossip", 15.0, "r0", "r1") is None

    def test_end_time_and_validation(self):
        assert DuplicateMessages(start=1.0, end=9.0, probability=0.5).end_time() == 9.0
        with pytest.raises(ValueError):
            DuplicateMessages(start=9.0, end=9.0).install(make_cluster())
        with pytest.raises(ValueError):
            make_cluster().network.start_duplication(until=1.0, probability=1.5)

    @staticmethod
    def _run_twin(duplicate):
        params = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0, delta_gossip=True)
        cluster = SimulatedCluster(CounterType(), 3, ["c0"], params=params, seed=11)
        if duplicate:
            DuplicateMessages(start=0.0, end=60.0, probability=1.0).install(cluster)
        values = [cluster.execute("c0", CounterType.increment())[1] for _ in range(5)]
        for _ in range(8):  # explicit gossip rounds: spread the tail ops
            cluster.run(params.gossip_period + params.dg)
        return values, cluster

    def test_duplicated_delivery_is_idempotent(self):
        """Twin runs with and without a 100% duplication window: because the
        duplication coin and the copies' delays come from the dedicated
        fault stream, the primary schedule is identical — and duplicated
        deliveries must change *nothing* observable.  In particular a
        duplicated delta-gossip message re-delivers the same seqno (the
        cumulative-ack stream dedupes it; the delta is not consumed twice)
        and a duplicated increment is not applied twice."""
        base_values, base = self._run_twin(duplicate=False)
        dup_values, dup = self._run_twin(duplicate=True)
        assert dup.network.counters.duplicated > 0
        assert base.network.counters.duplicated == 0
        assert dup_values == base_values
        assert dup.eventual_order() == base.eventual_order()
        for replica_id in base.replicas:
            state = dup.replicas[replica_id].replayed_state()
            assert state == base.replicas[replica_id].replayed_state()
            assert state == 5  # five increments applied exactly once each


def _checkpointed_cluster(seed=5):
    """A small converged cluster whose replicas hold a non-empty checkpoint."""
    params = SimulationParams(
        df=1.0,
        dg=1.0,
        gossip_period=1.0,
        compaction=CompactionPolicy(min_batch=1),
        compaction_interval=1.0,
    )
    cluster = SimulatedCluster(CounterType(), 3, ["c0"], params=params, seed=seed)
    for _ in range(4):
        cluster.execute("c0", CounterType.increment())
    cluster.run_until_idle(300.0)
    for replica in cluster.replicas.values():
        replica.maybe_compact(force=True)
    assert cluster.replicas["r0"].checkpoint.count > 0
    return cluster


class TestCorruptTransfers:
    def test_corruption_window_and_counter(self):
        cluster = make_cluster()
        network = cluster.network
        assert not network.should_corrupt_transfer(0.0)
        network.start_corruption(until=10.0, probability=1.0)
        assert network.should_corrupt_transfer(5.0)
        assert network.counters.corrupted == 1
        assert not network.should_corrupt_transfer(10.0)  # window over

    def test_end_time_and_validation(self):
        assert CorruptTransfers(start=1.0, end=9.0).end_time() == 9.0
        with pytest.raises(ValueError):
            CorruptTransfers(start=9.0, end=9.0).install(make_cluster())
        with pytest.raises(ValueError):
            make_cluster().network.start_corruption(until=1.0, probability=-0.1)

    def test_tampered_transfer_rejected_clean_transfer_adopted(self):
        """The digest check end of the story, in isolation: a receiver that
        assembles a tampered checkpoint transfer must reject it wholesale
        (no adoption, rejection counted) and a clean copy of the same
        transfer must then be adopted."""
        donor = _checkpointed_cluster().replicas["r0"]
        # A replica from an untouched twin deployment plays the behind
        # receiver: empty checkpoint, empty history — maximally behind.
        receiver = SimulatedCluster(
            CounterType(), 3, ["c0"], params=SimulationParams(), seed=99
        ).replicas["r1"]
        pull = PullRequestMessage(
            requester="r1",
            target="r0",
            digest=donor.checkpoint.digest(),
            frontier=donor.checkpoint.frontier,
            have_frontier=receiver.checkpoint.frontier,
        )
        chunks = donor.receive_pull_request(pull)
        assert chunks, "donor has a checkpoint, the pull must be answered"

        tampered = [_tamper_transfer(chunk) for chunk in chunks]
        assert any(
            CORRUPTION_MARKER in repr(chunk.values_chunk) + repr(chunk.base_state)
            for chunk in tampered
        )
        for chunk in tampered:
            receiver.receive_transfer(chunk)
        assert receiver.stats.transfer_rejections == 1
        assert receiver.checkpoint.count == 0  # nothing adopted

        for chunk in chunks:
            receiver.receive_transfer(chunk)
        assert receiver.stats.transfer_rejections == 1
        assert receiver.checkpoint.count == donor.checkpoint.count
        assert receiver.checkpoint.digest() == donor.checkpoint.digest()

    def test_corrupted_catchup_rejects_then_heals(self):
        """End to end: a volatile crash forces advert/pull catch-up, a
        100% corruption window makes every transfer chunk arrive tampered —
        the recovering replica must reject every assembly (never adopting a
        corrupt body) and keep re-pulling off later adverts until the window
        closes, after which it converges with the others."""
        params = SimulationParams(
            df=1.0,
            dg=1.0,
            gossip_period=1.0,
            frontend_policy="round_robin",
            retransmit_interval=4.0,
            compaction=CompactionPolicy(min_batch=1),
            compaction_interval=1.0,
            advert_gossip=True,
        )
        cluster = SimulatedCluster(CounterType(), 3, ["c0", "c1"], params=params, seed=2)
        (
            FaultSchedule()
            .add(ReplicaCrash("r1", at=8.0, recover_at=13.0, volatile_memory=True))
            .add(CorruptTransfers(start=8.0, end=19.0, probability=1.0))
        ).install(cluster)
        for index in range(24):
            cluster.submit("c0" if index % 2 == 0 else "c1", CounterType.increment())
            cluster.run(0.5)
        cluster.run(25.0)  # past the corruption window plus slack
        for _ in range(12):  # explicit gossip rounds: let the re-pull heal
            cluster.run(params.gossip_period + params.dg)

        rejections = sum(
            replica.stats.transfer_rejections for replica in cluster.replicas.values()
        )
        assert cluster.network.counters.corrupted > 0
        assert rejections > 0, "the corruption window never hit an assembled transfer"
        # ... and the reject-and-re-pull loop healed once clean bodies flowed:
        # every replica converges to the same count — all surviving
        # increments, i.e. the full eventual order (the volatile crash may
        # cost an increment or two that only r1 had applied; convergence and
        # agreement with the system-wide order are the guarantees here).
        states = {
            replica_id: replica.replayed_state()
            for replica_id, replica in cluster.replicas.items()
        }
        assert len(set(states.values())) == 1, f"replicas diverged: {states}"
        assert set(states.values()).pop() >= 22  # at most a couple of casualties


class TestFaultSchedule:
    def test_add_chains_and_install_installs_everything(self):
        cluster = make_cluster()
        schedule = (
            FaultSchedule()
            .add(ReplicaCrash("r0", at=1.0, recover_at=3.0))
            .add(GossipOutage("r1", start=2.0, end=5.0))
            .add(DelaySpike(start=0.5, end=1.5))
        )
        assert len(schedule.faults) == 3
        schedule.install(cluster)
        cluster.run(2.5)
        assert "r0" in cluster._crashed
        assert "r1" in cluster.network.partitioned
        cluster.run(3.0)
        assert "r0" not in cluster._crashed
        assert "r1" not in cluster.network.partitioned

    def test_last_fault_time_is_the_max_end_time(self):
        schedule = (
            FaultSchedule()
            .add(ReplicaCrash("r0", at=1.0, recover_at=12.0))
            .add(DelaySpike(start=2.0, end=4.0))
        )
        assert schedule.last_fault_time() == 12.0

    def test_empty_schedule(self):
        schedule = FaultSchedule()
        assert schedule.last_fault_time() == 0.0
        cluster = make_cluster()
        schedule.install(cluster)  # no-op besides starting the cluster
        assert cluster._gossip_started
