"""Direct unit tests for :mod:`repro.sim.faults` — the fault classes'
scheduling, end-time accounting and observable effect on the cluster, tested
in isolation (the end-to-end behaviour is covered by the fault-tolerance and
scenario-fuzz suites)."""

import pytest

from repro.datatypes import CounterType
from repro.sim.cluster import SimulatedCluster, SimulationParams
from repro.sim.faults import DelaySpike, FaultSchedule, GossipOutage, ReplicaCrash


def make_cluster(**params_kwargs):
    params = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0, **params_kwargs)
    return SimulatedCluster(CounterType(), 3, ["c0"], params=params, seed=1)


class TestReplicaCrash:
    def test_crash_and_recovery_are_scheduled_at_the_given_times(self):
        cluster = make_cluster()
        ReplicaCrash("r1", at=5.0, recover_at=9.0).install(cluster)
        cluster.run(4.9)
        assert "r1" not in cluster._crashed
        cluster.run(0.2)  # past t=5.0
        assert "r1" in cluster._crashed
        cluster.run(3.7)  # t=8.8, still down
        assert "r1" in cluster._crashed
        cluster.run(0.4)  # past t=9.0
        assert "r1" not in cluster._crashed

    def test_crash_without_recovery_is_permanent(self):
        cluster = make_cluster()
        ReplicaCrash("r2", at=1.0).install(cluster)
        cluster.run(50.0)
        assert "r2" in cluster._crashed

    def test_volatile_memory_flag_controls_state_loss(self):
        for volatile, expect_empty in ((True, True), (False, False)):
            cluster = make_cluster()
            _op, _value = cluster.execute("c0", CounterType.increment())
            replica = next(
                rid for rid, rep in cluster.replicas.items() if rep.done_here()
            )
            ReplicaCrash(replica, at=cluster.now + 1.0,
                         volatile_memory=volatile).install(cluster)
            cluster.run(2.0)
            assert (not cluster.replicas[replica].done_here()) == expect_empty

    def test_end_time(self):
        assert ReplicaCrash("r0", at=3.0).end_time() == 3.0
        assert ReplicaCrash("r0", at=3.0, recover_at=8.5).end_time() == 8.5

    def test_recover_before_crash_rejected(self):
        with pytest.raises(ValueError):
            ReplicaCrash("r0", at=5.0, recover_at=5.0).install(make_cluster())


class TestGossipOutage:
    def test_partition_applies_only_inside_the_window(self):
        cluster = make_cluster()
        GossipOutage("r1", start=2.0, end=6.0).install(cluster)
        cluster.run(1.9)
        assert "r1" not in cluster.network.partitioned
        cluster.run(0.2)
        assert "r1" in cluster.network.partitioned
        cluster.run(4.0)  # past t=6.0
        assert "r1" not in cluster.network.partitioned

    def test_partitioned_replica_drops_messages_both_ways(self):
        cluster = make_cluster()
        cluster.network.partition("r1")
        dropped_before = cluster.network.counters.dropped
        assert cluster.network.should_drop("gossip", "r0", "r1")
        assert cluster.network.should_drop("gossip", "r1", "r0")
        assert not cluster.network.should_drop("gossip", "r0", "r2")
        assert cluster.network.counters.dropped == dropped_before + 2

    def test_end_time_and_validation(self):
        assert GossipOutage("r1", start=2.0, end=6.0).end_time() == 6.0
        with pytest.raises(ValueError):
            GossipOutage("r1", start=6.0, end=6.0).install(make_cluster())


class TestDelaySpike:
    def test_delays_multiplied_during_window_only(self):
        cluster = make_cluster(spike_factor=4.0)
        DelaySpike(start=2.0, end=7.0).install(cluster)
        cluster.run(1.0)
        assert cluster.network.delay_for("gossip", cluster.now) == 1.0
        cluster.run(2.0)  # inside the window
        assert cluster.network.delay_for("gossip", cluster.now) == 4.0
        assert cluster.network.delay_for("request", cluster.now) == 4.0
        cluster.run(5.0)  # past the window
        assert cluster.network.delay_for("gossip", cluster.now) == 1.0

    def test_spike_factor_below_one_never_speeds_up(self):
        cluster = make_cluster(spike_factor=0.5)
        DelaySpike(start=0.0, end=5.0).install(cluster)
        cluster.run(1.0)
        assert cluster.network.delay_for("gossip", cluster.now) == 1.0

    def test_end_time_and_validation(self):
        assert DelaySpike(start=1.0, end=4.0).end_time() == 4.0
        with pytest.raises(ValueError):
            DelaySpike(start=4.0, end=4.0).install(make_cluster())


class TestFaultSchedule:
    def test_add_chains_and_install_installs_everything(self):
        cluster = make_cluster()
        schedule = (
            FaultSchedule()
            .add(ReplicaCrash("r0", at=1.0, recover_at=3.0))
            .add(GossipOutage("r1", start=2.0, end=5.0))
            .add(DelaySpike(start=0.5, end=1.5))
        )
        assert len(schedule.faults) == 3
        schedule.install(cluster)
        cluster.run(2.5)
        assert "r0" in cluster._crashed
        assert "r1" in cluster.network.partitioned
        cluster.run(3.0)
        assert "r0" not in cluster._crashed
        assert "r1" not in cluster.network.partitioned

    def test_last_fault_time_is_the_max_end_time(self):
        schedule = (
            FaultSchedule()
            .add(ReplicaCrash("r0", at=1.0, recover_at=12.0))
            .add(DelaySpike(start=2.0, end=4.0))
        )
        assert schedule.last_fault_time() == 12.0

    def test_empty_schedule(self):
        schedule = FaultSchedule()
        assert schedule.last_fault_time() == 0.0
        cluster = make_cluster()
        schedule.install(cluster)  # no-op besides starting the cluster
        assert cluster._gossip_started
