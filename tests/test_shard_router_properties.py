"""Property-based tests for the consistent-hash :class:`ShardRouter`.

The sharded service layer's correctness argument (PR 2) leans on three
router properties that example-based tests only spot-check:

* **determinism** — routing is a pure function of (shard set, virtual-node
  count, key): two independently built routers agree on every key, so any
  frontend replica can route without coordination;
* **monotonicity** — growing the ring only moves keys *to* the new shard
  (the classic consistent-hashing guarantee); a resharding from ``n`` to
  ``n+1`` shards therefore never shuffles keys between surviving shards;
* **bounded movement / balance** — with enough virtual nodes the new shard
  takes roughly a ``1/(n+1)`` fraction of the keyspace and no shard owns a
  wildly outsized share.

Hypothesis drives the first two with arbitrary unicode keys and shard
layouts; the quantitative bounds use fixed deterministic key sets (they are
statements about the ring geometry, not about any particular draw, and a
seeded corpus keeps the thresholds meaningful).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.router import ShardRouter

#: Shard identifiers: short, printable, unique within a draw.
shard_ids = st.lists(
    st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126),
        min_size=1,
        max_size=8,
    ),
    min_size=1,
    max_size=6,
    unique=True,
)

keys = st.text(min_size=0, max_size=32)


@settings(max_examples=200, deadline=None)
@given(ids=shard_ids, key=keys, virtual_nodes=st.integers(min_value=1, max_value=16))
def test_routing_is_deterministic_and_total(ids, key, virtual_nodes):
    first = ShardRouter(ids, virtual_nodes=virtual_nodes)
    second = ShardRouter(ids, virtual_nodes=virtual_nodes)
    owner = first.shard_for(key)
    assert owner in first.shard_ids
    assert second.shard_for(key) == owner  # rebuilt ring, same answer
    assert first.shard_for(key) == owner  # and stable across calls


@settings(max_examples=100, deadline=None)
@given(ids=shard_ids, key=keys)
def test_shard_order_does_not_matter(ids, key):
    """The ring is a function of the shard *set*: listing the shards in a
    different order routes every key identically."""
    forward = ShardRouter(ids)
    backward = ShardRouter(list(reversed(ids)))
    assert forward.shard_for(key) == backward.shard_for(key)


@settings(max_examples=75, deadline=None)
@given(
    ids=st.lists(
        st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1,
            max_size=8,
        ),
        min_size=2,
        max_size=6,
        unique=True,
    ),
    sample_keys=st.lists(keys, min_size=1, max_size=50, unique=True),
)
def test_adding_a_shard_only_moves_keys_to_it(ids, sample_keys):
    """Consistent-hashing monotonicity: growing the ring from n-1 to n
    shards never moves a key between two pre-existing shards."""
    new_shard = ids[-1]
    before = ShardRouter(ids[:-1])
    after = ShardRouter(ids)
    for key in sample_keys:
        old_owner = before.shard_for(key)
        new_owner = after.shard_for(key)
        assert new_owner == old_owner or new_owner == new_shard


def _corpus(count):
    return [f"key-{index:05d}" for index in range(count)]


def test_key_movement_is_roughly_one_over_n():
    """Growing s0..s4 to s0..s5 should relocate about 1/6 of the keyspace;
    assert the moved fraction stays within a generous band around it (the
    exact share depends on the ring geometry, not on the key draw)."""
    corpus = _corpus(8000)
    before = ShardRouter.for_count(5, virtual_nodes=128)
    after = ShardRouter.for_count(6, virtual_nodes=128)
    moved = sum(1 for key in corpus if before.shard_for(key) != after.shard_for(key))
    fraction = moved / len(corpus)
    assert 0.5 / 6 < fraction < 2.0 / 6, f"moved fraction {fraction:.3f}"
    for key in corpus:
        if before.shard_for(key) != after.shard_for(key):
            assert after.shard_for(key) == "s5"


def test_virtual_nodes_balance_the_keyspace():
    """With a healthy virtual-node count every shard owns a share within
    ~2x of fair; with a single point per shard the split can be arbitrarily
    lopsided (documented contrast, not a guarantee we rely on)."""
    corpus = _corpus(8000)
    fair = len(corpus) / 4
    balanced = ShardRouter.for_count(4, virtual_nodes=256).spread(corpus)
    assert set(balanced) == {"s0", "s1", "s2", "s3"}
    assert sum(balanced.values()) == len(corpus)
    for shard, count in balanced.items():
        assert fair / 2 < count < fair * 2, f"{shard} owns {count} of {len(corpus)}"
    coarse = ShardRouter.for_count(4, virtual_nodes=1).spread(corpus)
    assert max(coarse.values()) >= max(balanced.values())


@settings(max_examples=75, deadline=None)
@given(
    ids=st.lists(
        st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1,
            max_size=8,
        ),
        min_size=2,
        max_size=6,
        unique=True,
    ),
    sample_keys=st.lists(keys, min_size=1, max_size=50, unique=True),
)
def test_removing_a_shard_only_moves_its_own_keys(ids, sample_keys):
    """Shrinking monotonicity (the drain direction): removing a shard moves
    exactly the keys it owned, and never shuffles keys between survivors."""
    departing = ids[-1]
    before = ShardRouter(ids)
    after = before.remove_shard(departing)
    for key in sample_keys:
        old_owner = before.shard_for(key)
        new_owner = after.shard_for(key)
        assert new_owner != departing
        if old_owner != departing:
            assert new_owner == old_owner


@settings(max_examples=50, deadline=None)
@given(
    ids=st.lists(
        st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1,
            max_size=8,
        ),
        min_size=2,
        max_size=5,
        unique=True,
    ),
    sample_keys=st.lists(keys, min_size=1, max_size=40, unique=True),
)
def test_movement_plan_matches_the_routing_delta(ids, sample_keys):
    """``movement_plan`` is exact: a key changes owner between the rings iff
    its hash falls in some planned range, and the range's (source,
    destination) pair matches the two routers' verdicts."""
    from repro.service.router import stable_hash

    old = ShardRouter(ids[:-1])
    new = ShardRouter(ids)
    plan = ShardRouter.movement_plan(old, new)
    # Ranges are disjoint and sorted.
    for earlier, later in zip(plan, plan[1:]):
        assert earlier.end <= later.start
    for key in sample_keys:
        point = stable_hash(key)
        containing = [move for move in plan if move.contains(point)]
        if old.shard_for(key) == new.shard_for(key):
            assert not containing
        else:
            assert len(containing) == 1
            move = containing[0]
            assert move.source == old.shard_for(key)
            assert move.destination == new.shard_for(key)


def test_add_and_drain_movement_is_symmetric():
    """Adding a shard and draining it again move the same keyspace share in
    opposite directions — ~1/n both ways, with identical range extents."""
    base = ShardRouter.for_count(5, virtual_nodes=128)
    grown = base.add_shard("s5")
    plan_in = ShardRouter.movement_plan(base, grown)
    plan_out = ShardRouter.movement_plan(grown, base)
    assert all(move.destination == "s5" for move in plan_in)
    assert all(move.source == "s5" for move in plan_out)
    span_in = sum(move.end - move.start for move in plan_in)
    span_out = sum(move.end - move.start for move in plan_out)
    assert span_in == span_out  # the same arcs, reversed
    # Sources of the in-plan match destinations of the out-plan, arc by arc.
    assert [(m.start, m.end, m.source) for m in plan_in] == [
        (m.start, m.end, m.destination) for m in plan_out
    ]
