"""Tests for repro.common: identifiers, generators and the infinity label."""

from repro.common import (
    INFINITY,
    Infinity,
    OperationId,
    OperationIdGenerator,
    client_of,
    freeze_ids,
)


class TestOperationId:
    def test_equality_and_hash(self):
        a = OperationId("alice", 1)
        b = OperationId("alice", 1)
        assert a == b
        assert hash(a) == hash(b)
        assert a != OperationId("alice", 2)
        assert a != OperationId("bob", 1)

    def test_ordering_is_total(self):
        ids = [OperationId("b", 0), OperationId("a", 1), OperationId("a", 0)]
        assert sorted(ids) == [OperationId("a", 0), OperationId("a", 1), OperationId("b", 0)]

    def test_client_of(self):
        assert client_of(OperationId("carol", 7)) == "carol"

    def test_str_contains_client_and_seqno(self):
        text = str(OperationId("alice", 3))
        assert "alice" in text and "3" in text


class TestOperationIdGenerator:
    def test_fresh_ids_are_unique(self):
        gen = OperationIdGenerator("alice")
        ids = [gen.fresh() for _ in range(100)]
        assert len(set(ids)) == 100

    def test_ids_carry_client(self):
        gen = OperationIdGenerator("bob")
        assert all(op_id.client == "bob" for op_id in (gen.fresh() for _ in range(5)))

    def test_start_offset(self):
        gen = OperationIdGenerator("alice", start=10)
        assert gen.fresh().seqno == 10

    def test_iteration_yields_fresh_ids(self):
        gen = OperationIdGenerator("alice")
        iterator = iter(gen)
        first, second = next(iterator), next(iterator)
        assert first != second

    def test_two_generators_same_client_collide(self):
        # Documented behaviour: uniqueness is per-generator; the system gives
        # each client exactly one generator.
        a = OperationIdGenerator("alice")
        b = OperationIdGenerator("alice")
        assert a.fresh() == b.fresh()


class TestInfinity:
    def test_singleton(self):
        assert Infinity() is INFINITY

    def test_greater_than_everything(self):
        assert INFINITY > 10
        assert not (INFINITY < 10)
        assert INFINITY >= INFINITY
        assert INFINITY <= INFINITY

    def test_equality_only_with_itself(self):
        assert INFINITY == INFINITY
        assert INFINITY != 10**9

    def test_hashable(self):
        assert len({INFINITY, Infinity()}) == 1


def test_freeze_ids_returns_frozenset():
    ids = freeze_ids([OperationId("a", 0), OperationId("a", 0), OperationId("a", 1)])
    assert isinstance(ids, frozenset)
    assert len(ids) == 2
