"""Tests for the well-formed client automata (Section 4, Section 10.3)."""

import random

import pytest

from repro.automata import Action
from repro.common import OperationIdGenerator, WellFormednessError
from repro.core.operations import make_operation
from repro.datatypes import CounterType
from repro.spec.users import SafeUsers, Users


@pytest.fixture
def gen():
    return OperationIdGenerator("alice")


class TestUsers:
    def test_request_records_operation(self, gen):
        users = Users()
        op = make_operation(CounterType.increment(), gen.fresh())
        users.step(Action("request", operation=op))
        assert op in users.requested

    def test_duplicate_identifier_rejected(self, gen):
        users = Users()
        op_id = gen.fresh()
        users.step(Action("request", operation=make_operation(CounterType.increment(), op_id)))
        duplicate = make_operation(CounterType.double(), op_id)
        assert not users.request_is_well_formed(duplicate)
        with pytest.raises(WellFormednessError):
            users.assert_well_formed(duplicate)

    def test_prev_must_reference_requested_operations(self, gen):
        users = Users()
        ghost = gen.fresh()
        op = make_operation(CounterType.read(), gen.fresh(), prev=[ghost])
        assert not users.request_is_well_formed(op)
        with pytest.raises(WellFormednessError):
            users.assert_well_formed(op)

    def test_prev_referencing_requested_operation_allowed(self, gen):
        users = Users()
        first = make_operation(CounterType.increment(), gen.fresh())
        users.step(Action("request", operation=first))
        second = make_operation(CounterType.read(), gen.fresh(), prev=[first.id])
        assert users.request_is_well_formed(second)

    def test_response_records_value(self, gen):
        users = Users()
        op = make_operation(CounterType.increment(), gen.fresh())
        users.step(Action("request", operation=op))
        users.step(Action("response", operation=op, value=1))
        assert users.responded[op.id] == 1

    def test_invariants_4_1_and_4_2(self, gen):
        users = Users()
        first = make_operation(CounterType.increment(), gen.fresh())
        second = make_operation(CounterType.read(), gen.fresh(), prev=[first.id])
        users.step(Action("request", operation=first))
        users.step(Action("request", operation=second))
        users.check_invariants()

    def test_candidate_actions_use_factory(self, gen):
        op = make_operation(CounterType.increment(), gen.fresh())
        users = Users(operation_factory=lambda rng, requested: op)
        candidates = users.candidate_actions(random.Random(0))
        assert candidates and candidates[0].kind == "request"
        # After requesting it, the same factory output is no longer well formed.
        users.step(candidates[0])
        assert users.candidate_actions(random.Random(0)) == []

    def test_no_factory_no_candidates(self):
        assert Users().candidate_actions(random.Random(0)) == []


class TestSafeUsers:
    def test_conflicting_unordered_operations_rejected(self, gen):
        users = SafeUsers(CounterType())
        inc = make_operation(CounterType.increment(), gen.fresh())
        users.step(Action("request", operation=inc))
        double = make_operation(CounterType.double(), gen.fresh())
        assert not users.request_is_well_formed(double)
        with pytest.raises(WellFormednessError):
            users.assert_well_formed(double)

    def test_ordered_conflicting_operations_allowed(self, gen):
        users = SafeUsers(CounterType())
        inc = make_operation(CounterType.increment(), gen.fresh())
        users.step(Action("request", operation=inc))
        double = make_operation(CounterType.double(), gen.fresh(), prev=[inc.id])
        assert users.request_is_well_formed(double)

    def test_commuting_operations_need_no_order(self, gen):
        users = SafeUsers(CounterType())
        first = make_operation(CounterType.increment(), gen.fresh())
        users.step(Action("request", operation=first))
        second = make_operation(CounterType.add(5), gen.fresh())
        assert users.request_is_well_formed(second)

    def test_transitive_ordering_is_enough(self, gen):
        users = SafeUsers(CounterType())
        a = make_operation(CounterType.increment(), gen.fresh())
        b = make_operation(CounterType.double(), gen.fresh(), prev=[a.id])
        users.step(Action("request", operation=a))
        users.step(Action("request", operation=b))
        c = make_operation(CounterType.double(), gen.fresh(), prev=[b.id])
        # c conflicts with a (increment vs double) but is ordered after it
        # transitively through b.
        assert users.request_is_well_formed(c)

    def test_independence_mode_requires_ordering_reads(self, gen):
        users = SafeUsers(CounterType(), require_independence=True)
        inc = make_operation(CounterType.increment(), gen.fresh())
        users.step(Action("request", operation=inc))
        read = make_operation(CounterType.read(), gen.fresh())
        # reads commute with increments but are not oblivious to them, so the
        # stronger discipline rejects the unordered read.
        assert not users.request_is_well_formed(read)
        ordered_read = make_operation(CounterType.read(), gen.fresh(), prev=[inc.id])
        assert users.request_is_well_formed(ordered_read)
