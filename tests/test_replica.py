"""Tests for the replica state machine (§6.3) and its optimized variants (§10)."""

import pytest

from repro.algorithm.labels import Label
from repro.algorithm.memoized import MemoizedReplicaCore
from repro.algorithm.commute import CommuteReplicaCore
from repro.algorithm.messages import GossipMessage, RequestMessage
from repro.algorithm.replica import ReplicaCore
from repro.common import INFINITY, ConfigurationError, OperationIdGenerator, SpecificationError
from repro.core.operations import make_operation
from repro.datatypes import CounterType, GSetType

REPLICAS = ("r1", "r2", "r3")


@pytest.fixture
def gen():
    return OperationIdGenerator("alice")


def make_replica(factory=ReplicaCore, rid="r1", data_type=None):
    return factory(rid, REPLICAS, data_type or CounterType())


def submit(replica, operation):
    replica.receive_request(RequestMessage(operation))


class TestConstruction:
    def test_requires_at_least_two_replicas(self):
        with pytest.raises(ConfigurationError):
            ReplicaCore("r1", ("r1",), CounterType())

    def test_replica_must_be_in_list(self):
        with pytest.raises(ConfigurationError):
            ReplicaCore("rX", REPLICAS, CounterType())


class TestDoIt:
    def test_do_it_assigns_own_label(self, gen):
        replica = make_replica()
        op = make_operation(CounterType.increment(), gen.fresh())
        submit(replica, op)
        label = replica.do_it(op)
        assert label.replica == "r1"
        assert op in replica.done_here()
        assert replica.label_of(op.id) == label

    def test_do_it_requires_received(self, gen):
        replica = make_replica()
        op = make_operation(CounterType.increment(), gen.fresh())
        with pytest.raises(SpecificationError):
            replica.do_it(op)

    def test_do_it_requires_prev_done(self, gen):
        replica = make_replica()
        first = make_operation(CounterType.increment(), gen.fresh())
        second = make_operation(CounterType.read(), gen.fresh(), prev=[first.id])
        submit(replica, second)
        assert not replica.can_do(second)
        with pytest.raises(SpecificationError):
            replica.do_it(second)
        submit(replica, first)
        replica.do_it(first)
        assert replica.can_do(second)
        replica.do_it(second)

    def test_do_it_rejected_twice(self, gen):
        replica = make_replica()
        op = make_operation(CounterType.increment(), gen.fresh())
        submit(replica, op)
        replica.do_it(op)
        with pytest.raises(SpecificationError):
            replica.do_it(op)

    def test_labels_increase_with_each_do_it(self, gen):
        replica = make_replica()
        labels = []
        for _ in range(5):
            op = make_operation(CounterType.increment(), gen.fresh())
            submit(replica, op)
            labels.append(replica.do_it(op))
        assert all(a < b for a, b in zip(labels, labels[1:]))

    def test_explicit_label_must_be_own_and_larger(self, gen):
        replica = make_replica()
        first = make_operation(CounterType.increment(), gen.fresh())
        submit(replica, first)
        replica.do_it(first, Label(5, "r1"))
        second = make_operation(CounterType.increment(), gen.fresh())
        submit(replica, second)
        with pytest.raises(SpecificationError):
            replica.do_it(second, Label(3, "r1"))
        with pytest.raises(SpecificationError):
            replica.do_it(second, Label(9, "r2"))
        replica.do_it(second, Label(9, "r1"))

    def test_do_all_ready_resolves_dependency_chains(self, gen):
        replica = make_replica()
        a = make_operation(CounterType.increment(), gen.fresh())
        b = make_operation(CounterType.increment(), gen.fresh(), prev=[a.id])
        c = make_operation(CounterType.read(), gen.fresh(), prev=[b.id])
        for op in (c, b, a):  # delivered out of order
            submit(replica, op)
        done = replica.do_all_ready()
        assert set(done) == {a, b, c}
        assert replica.done_order() == [a, b, c]


class TestResponses:
    def test_value_reflects_label_order(self, gen):
        replica = make_replica()
        inc = make_operation(CounterType.increment(), gen.fresh())
        read = make_operation(CounterType.read(), gen.fresh())
        for op in (inc, read):
            submit(replica, op)
            replica.do_it(op)
        assert replica.compute_value(read) == 1
        assert replica.compute_value(inc) == 1

    def test_nonstrict_response_ready_once_done(self, gen):
        replica = make_replica()
        op = make_operation(CounterType.increment(), gen.fresh())
        submit(replica, op)
        assert not replica.response_ready(op)
        replica.do_it(op)
        assert replica.response_ready(op)
        message = replica.make_response(op)
        assert message.value == 1
        assert op not in replica.pending

    def test_strict_response_needs_stability_everywhere(self, gen):
        replica = make_replica()
        op = make_operation(CounterType.increment(), gen.fresh(), strict=True)
        submit(replica, op)
        replica.do_it(op)
        assert not replica.response_ready(op)
        # Fake knowledge that the operation is stable everywhere.
        for rid in REPLICAS:
            replica.stable[rid].add(op)
        assert replica.response_ready(op)

    def test_make_response_requires_readiness(self, gen):
        replica = make_replica()
        op = make_operation(CounterType.increment(), gen.fresh(), strict=True)
        submit(replica, op)
        replica.do_it(op)
        with pytest.raises(SpecificationError):
            replica.make_response(op)

    def test_compute_value_requires_done(self, gen):
        replica = make_replica()
        op = make_operation(CounterType.increment(), gen.fresh())
        with pytest.raises(SpecificationError):
            replica.compute_value(op)


class TestGossip:
    def _two_replicas_with_ops(self, gen):
        r1 = make_replica(rid="r1")
        r2 = make_replica(rid="r2")
        a = make_operation(CounterType.increment(), gen.fresh())
        b = make_operation(CounterType.double(), gen.fresh())
        submit(r1, a)
        r1.do_it(a)
        submit(r2, b)
        r2.do_it(b)
        return r1, r2, a, b

    def test_gossip_transfers_operations_and_labels(self, gen):
        r1, r2, a, b = self._two_replicas_with_ops(gen)
        r2.receive_gossip(r1.make_gossip())
        assert a in r2.done_here()
        assert r2.label_of(a.id) == r1.label_of(a.id)

    def test_gossip_keeps_minimum_label(self, gen):
        r1, r2, a, b = self._two_replicas_with_ops(gen)
        # r2 learns a from r1 then r1 learns b from r2; labels converge to the
        # per-operation minimum on both sides after a second exchange.
        r2.receive_gossip(r1.make_gossip())
        r1.receive_gossip(r2.make_gossip())
        r2.receive_gossip(r1.make_gossip())
        for op in (a, b):
            assert r1.label_of(op.id) == r2.label_of(op.id)

    def test_self_gossip_rejected(self, gen):
        r1 = make_replica(rid="r1")
        message = r1.make_gossip()
        with pytest.raises(SpecificationError):
            r1.receive_gossip(message)

    def test_gossip_from_unknown_replica_rejected(self, gen):
        r1 = make_replica(rid="r1")
        message = GossipMessage(sender="zz", received=frozenset(), done=frozenset())
        with pytest.raises(SpecificationError):
            r1.receive_gossip(message)

    def test_stability_requires_full_round(self, gen):
        replicas = {rid: make_replica(rid=rid) for rid in REPLICAS}
        op = make_operation(CounterType.increment(), gen.fresh())
        submit(replicas["r1"], op)
        replicas["r1"].do_it(op)

        def full_round():
            for src in REPLICAS:
                for dst in REPLICAS:
                    if src != dst:
                        replicas[dst].receive_gossip(replicas[src].make_gossip())

        full_round()  # everyone has done the op
        assert all(op in replicas[r].done_here() for r in REPLICAS)
        full_round()  # everyone learns it is done everywhere -> stable
        assert all(op in replicas[r].stable_here() for r in REPLICAS)
        full_round()  # everyone learns it is stable everywhere
        assert all(replicas[r].is_stable_everywhere(op) for r in REPLICAS)

    def test_duplicate_gossip_is_idempotent(self, gen):
        r1, r2, a, b = self._two_replicas_with_ops(gen)
        message = r1.make_gossip()
        r2.receive_gossip(message)
        before = r2.snapshot()
        r2.receive_gossip(message)
        after = r2.snapshot()
        assert before == after


class TestCrashRecovery:
    def test_crash_without_volatile_memory_keeps_state(self, gen):
        replica = make_replica()
        op = make_operation(CounterType.increment(), gen.fresh())
        submit(replica, op)
        replica.do_it(op)
        replica.crash(volatile_memory=False)
        assert op in replica.done_here()

    def test_crash_with_volatile_memory_keeps_only_stable_storage(self, gen):
        replica = make_replica()
        op = make_operation(CounterType.increment(), gen.fresh())
        submit(replica, op)
        label = replica.do_it(op)
        replica.crash(volatile_memory=True)
        assert replica.done_here() == set()
        assert replica.label_of(op.id) is INFINITY
        replica.recover_from_stable_storage()
        # The recovered label is no greater than the pre-crash label (§9.3).
        assert replica.label_of(op.id) <= label


class TestMemoizedReplica:
    def _stable_setup(self, gen, factory):
        replicas = {rid: factory(rid, REPLICAS, CounterType()) for rid in REPLICAS}
        ops = []
        for index in range(4):
            op = make_operation(CounterType.increment(), gen.fresh())
            ops.append(op)
            submit(replicas["r1"], op)
        replicas["r1"].do_all_ready()
        for _ in range(3):
            for src in REPLICAS:
                for dst in REPLICAS:
                    if src != dst:
                        replicas[dst].receive_gossip(replicas[src].make_gossip())
        return replicas, ops

    def test_solid_and_memoized_cover_stable_ops(self, gen):
        replicas, ops = self._stable_setup(gen, MemoizedReplicaCore)
        replica = replicas["r1"]
        assert set(ops) <= replica.solid_operations()
        assert set(ops) <= replica.memoized

    def test_memoized_values_match_plain_replica(self, gen):
        memo_replicas, ops = self._stable_setup(gen, MemoizedReplicaCore)
        plain_replicas, plain_ops = self._stable_setup(
            OperationIdGenerator("alice"), ReplicaCore
        )
        for memo_op, plain_op in zip(ops, plain_ops):
            assert (
                memo_replicas["r2"].compute_value(memo_op)
                == plain_replicas["r2"].compute_value(plain_op)
            )

    def test_memoize_precondition(self, gen):
        replica = MemoizedReplicaCore("r1", REPLICAS, CounterType())
        op = make_operation(CounterType.increment(), gen.fresh())
        submit(replica, op)
        replica.do_it(op)
        # Not solid yet (nothing stable), so memoize must be refused.
        with pytest.raises(SpecificationError):
            replica.memoize(op)

    def test_memoization_reduces_value_applications(self, gen):
        memo_replicas, ops = self._stable_setup(gen, MemoizedReplicaCore)
        plain_replicas, plain_ops = self._stable_setup(
            OperationIdGenerator("alice"), ReplicaCore
        )
        for op in ops:
            memo_replicas["r1"].compute_value(op)
        for op in plain_ops:
            plain_replicas["r1"].compute_value(op)
        assert (
            memo_replicas["r1"].stats.value_applications
            < plain_replicas["r1"].stats.value_applications
        )


class TestCommuteReplica:
    def test_values_recorded_at_do_time(self, gen):
        replica = CommuteReplicaCore("r1", REPLICAS, CounterType())
        op = make_operation(CounterType.increment(), gen.fresh())
        submit(replica, op)
        replica.do_it(op)
        assert replica.compute_value(op) == 1
        # No replay is needed: value_applications stays zero.
        assert replica.stats.value_applications == 0

    def test_replicas_converge_on_commuting_workload(self, gen):
        replicas = {rid: CommuteReplicaCore(rid, REPLICAS, GSetType()) for rid in REPLICAS}
        elements = ["a", "b", "c", "d"]
        for index, element in enumerate(elements):
            rid = REPLICAS[index % len(REPLICAS)]
            op = make_operation(GSetType.insert(element), gen.fresh())
            submit(replicas[rid], op)
            replicas[rid].do_it(op)
        for _ in range(3):
            for src in REPLICAS:
                for dst in REPLICAS:
                    if src != dst:
                        replicas[dst].receive_gossip(replicas[src].make_gossip())
        states = {replica.current_state for replica in replicas.values()}
        assert states == {frozenset(elements)}

    def test_strict_response_requires_memoization(self, gen):
        replica = CommuteReplicaCore("r1", REPLICAS, CounterType())
        op = make_operation(CounterType.increment(), gen.fresh(), strict=True)
        submit(replica, op)
        replica.do_it(op)
        for rid in REPLICAS:
            replica.stable[rid].add(op)
        # response_ready advances memoization itself once the op is solid.
        assert replica.response_ready(op)
        assert op in replica.memoized
