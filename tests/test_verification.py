"""Invariant checking and forward-simulation checks on random executions
(Sections 7 and 8)."""

import random

import pytest

from repro.algorithm.memoized import MemoizedReplicaCore
from repro.algorithm.system import AlgorithmSystem
from repro.common import InvariantViolation, OperationIdGenerator, SimulationRelationError
from repro.core.operations import make_operation
from repro.datatypes import CounterType, GSetType, RegisterType
from repro.verification.invariants import AlgorithmInvariantChecker
from repro.verification.simulation_check import (
    AlgorithmToSpecSimulation,
    check_esds2_implements_esds1,
)


def drive_random_run(system, rng, operations, checker=None, sim=None, steps_between=6):
    """Submit *operations* while interleaving random algorithm steps."""
    target = sim if sim is not None else system
    for op in operations:
        target.request(op)
        for _ in range(rng.randint(1, steps_between)):
            if target.random_step(rng) is None:
                break
            if checker is not None:
                checker.check_all()
    for _ in range(500):
        if target.random_step(rng) is None:
            break
        if checker is not None:
            checker.check_all()


def build_operations(rng, clients, count, data_type_name="counter", strict_rate=0.3):
    gens = {c: OperationIdGenerator(c) for c in clients}
    history = []
    for _ in range(count):
        client = rng.choice(clients)
        if data_type_name == "counter":
            operator = rng.choice(
                [CounterType.increment(), CounterType.add(3), CounterType.read()]
            )
        elif data_type_name == "gset":
            operator = rng.choice(
                [GSetType.insert(rng.randint(0, 5)), GSetType.size()]
            )
        else:
            operator = rng.choice([RegisterType.write(rng.randint(0, 9)), RegisterType.read()])
        prev = [rng.choice(history).id] if history and rng.random() < 0.4 else []
        op = make_operation(operator, gens[client].fresh(), prev=prev,
                            strict=rng.random() < strict_rate)
        history.append(op)
        yield op


class TestAlgorithmInvariants:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_invariants_hold_on_random_executions(self, seed):
        rng = random.Random(seed)
        system = AlgorithmSystem(CounterType(), ["r1", "r2", "r3"], ["alice", "bob"])
        checker = AlgorithmInvariantChecker(system)
        operations = list(build_operations(rng, ["alice", "bob"], 5))
        drive_random_run(system, rng, operations, checker=checker)
        checker.check_all()

    @pytest.mark.parametrize("seed", [5, 6])
    def test_invariants_hold_with_memoized_replicas(self, seed):
        rng = random.Random(seed)
        system = AlgorithmSystem(
            GSetType(), ["r1", "r2"], ["alice"], replica_factory=MemoizedReplicaCore
        )
        checker = AlgorithmInvariantChecker(system)
        operations = list(build_operations(rng, ["alice"], 5, data_type_name="gset"))
        drive_random_run(system, rng, operations, checker=checker)
        checker.check_all()

    def test_checker_detects_corrupted_state(self):
        rng = random.Random(0)
        system = AlgorithmSystem(CounterType(), ["r1", "r2"], ["alice"])
        gen = OperationIdGenerator("alice")
        op = make_operation(CounterType.increment(), gen.fresh())
        system.request(op)
        system.send_request("alice", "r1", op)
        system.receive_request("alice", "r1")
        system.do_it("r1", op)
        checker = AlgorithmInvariantChecker(system)
        checker.check_all()
        # Corrupt: pretend r2 knows the operation is stable at r1 although it
        # is not even done at r2 (violates Invariant 7.2/7.4 territory).
        system.replicas["r2"].stable["r2"].add(op)
        with pytest.raises(InvariantViolation):
            checker.check_all()


class TestAlgorithmImplementsEsds2:
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_lockstep_simulation_small_runs(self, seed):
        rng = random.Random(seed)
        system = AlgorithmSystem(CounterType(), ["r1", "r2"], ["alice", "bob"])
        sim = AlgorithmToSpecSimulation(system)
        operations = list(build_operations(rng, ["alice", "bob"], 4))
        drive_random_run(system, rng, operations, sim=sim)
        assert sim.concrete_steps > 0
        assert sim.report().steps_checked == sim.concrete_steps

    def test_lockstep_simulation_with_register(self):
        rng = random.Random(21)
        system = AlgorithmSystem(RegisterType(), ["r1", "r2", "r3"], ["alice"])
        sim = AlgorithmToSpecSimulation(system)
        operations = list(
            build_operations(rng, ["alice"], 4, data_type_name="register", strict_rate=0.5)
        )
        drive_random_run(system, rng, operations, sim=sim)
        assert sim.abstract_steps >= sim.concrete_steps / 4

    def test_relation_check_detects_divergence(self):
        system = AlgorithmSystem(CounterType(), ["r1", "r2"], ["alice"])
        sim = AlgorithmToSpecSimulation(system)
        gen = OperationIdGenerator("alice")
        op = make_operation(CounterType.increment(), gen.fresh())
        sim.request(op)
        # Tamper with the specification state behind the checker's back.
        sim.spec.wait.clear()
        with pytest.raises(SimulationRelationError):
            sim.check_relation()


class TestEsds2ImplementsEsds1:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_simulation_over_random_executions(self, seed):
        def factory(rng, requested):
            if len(requested) >= 5:
                return None
            gen = OperationIdGenerator("alice", start=len(requested))
            operator = rng.choice(
                [CounterType.increment(), CounterType.add(2), CounterType.read()]
            )
            prev = []
            if requested and rng.random() < 0.4:
                prev = [rng.choice(sorted(requested, key=repr)).id]
            return make_operation(operator, gen.fresh(), prev=prev,
                                  strict=rng.random() < 0.3)

        report = check_esds2_implements_esds1(CounterType(), factory, steps=70, seed=seed)
        assert report.steps_checked > 0
