"""Tests for the behavioural guarantee checkers (Theorems 5.7, 5.8, Cor. 5.9)."""

import pytest

from repro.common import OperationIdGenerator
from repro.core.operations import make_operation
from repro.datatypes import CounterType, RegisterType
from repro.spec.guarantees import (
    TraceRecord,
    check_all_responses_explained,
    check_atomicity_when_all_strict,
    check_eventual_total_order,
    check_strict_responses_explained,
    find_explaining_total_order,
)


@pytest.fixture
def gen():
    return OperationIdGenerator("alice")


class TestTraceRecord:
    def test_requests_and_responses_views(self, gen):
        trace = TraceRecord()
        op = make_operation(CounterType.increment(), gen.fresh())
        trace.record_request(op)
        trace.record_response(op, 1)
        assert trace.requests == [op]
        assert trace.responses == [(op, 1)]

    def test_indices_and_earlier_strict(self, gen):
        trace = TraceRecord()
        a = make_operation(CounterType.increment(), gen.fresh(), strict=True)
        b = make_operation(CounterType.read(), gen.fresh())
        trace.record_request(a)
        trace.record_response(a, 1)
        trace.record_request(b)
        trace.record_response(b, 1)
        assert trace.request_index(a.id) == 0
        assert trace.response_index(b.id) == 3
        assert trace.strict_responses_before(trace.request_index(b.id)) == [(a, 1)]
        assert trace.request_index(gen.fresh()) is None

    def test_csc(self, gen):
        trace = TraceRecord()
        a = make_operation(CounterType.increment(), gen.fresh())
        b = make_operation(CounterType.read(), gen.fresh(), prev=[a.id])
        trace.record_request(a)
        trace.record_request(b)
        assert trace.csc() == {(a.id, b.id)}


class TestEventualTotalOrder:
    def _make_trace(self, gen):
        counter = CounterType(initial=1)
        inc = make_operation(CounterType.increment(), gen.fresh())
        double = make_operation(CounterType.double(), gen.fresh())
        read = make_operation(CounterType.read(), gen.fresh(),
                              prev=[inc.id, double.id], strict=True)
        trace = TraceRecord()
        for op in (inc, double, read):
            trace.record_request(op)
        return counter, inc, double, read, trace

    def test_witness_explaining_strict_response(self, gen):
        counter, inc, double, read, trace = self._make_trace(gen)
        trace.record_response(read, 4)  # inc then double from 1 -> 4
        assert check_eventual_total_order(counter, trace, [inc.id, double.id, read.id])
        assert not check_eventual_total_order(counter, trace, [double.id, inc.id, read.id])

    def test_witness_must_respect_csc(self, gen):
        counter, inc, double, read, trace = self._make_trace(gen)
        trace.record_response(read, 4)
        assert not check_eventual_total_order(counter, trace, [read.id, inc.id, double.id])

    def test_witness_must_cover_all_requests(self, gen):
        counter, inc, double, read, trace = self._make_trace(gen)
        trace.record_response(read, 4)
        assert not check_eventual_total_order(counter, trace, [inc.id, read.id])

    def test_search_without_witness(self, gen):
        counter, inc, double, read, trace = self._make_trace(gen)
        trace.record_response(read, 3)  # double then inc
        assert check_strict_responses_explained(counter, trace)

    def test_unexplainable_strict_response_detected(self, gen):
        counter, inc, double, read, trace = self._make_trace(gen)
        trace.record_response(read, 7)  # impossible under any order
        assert not check_strict_responses_explained(counter, trace)

    def test_nonstrict_responses_do_not_constrain_the_witness(self, gen):
        counter, inc, double, read, trace = self._make_trace(gen)
        nonstrict = make_operation(CounterType.read(), gen.fresh())
        trace.record_request(nonstrict)
        trace.record_response(nonstrict, 1)  # stale read, fine for nonstrict
        trace.record_response(read, 4)
        assert check_eventual_total_order(
            counter, trace, [inc.id, double.id, read.id, nonstrict.id]
        )


class TestPerResponseExplanations:
    def test_every_response_has_an_order(self, gen):
        register = RegisterType()
        w1 = make_operation(RegisterType.write("a"), gen.fresh())
        w2 = make_operation(RegisterType.write("b"), gen.fresh())
        r = make_operation(RegisterType.read(), gen.fresh())
        trace = TraceRecord()
        for op in (w1, w2, r):
            trace.record_request(op)
        trace.record_response(r, "a")
        assert find_explaining_total_order(register, trace, (r, "a")) is not None
        assert check_all_responses_explained(register, trace)

    def test_impossible_response_has_no_order(self, gen):
        register = RegisterType()
        w1 = make_operation(RegisterType.write("a"), gen.fresh())
        r = make_operation(RegisterType.read(), gen.fresh(), prev=[w1.id])
        trace = TraceRecord()
        trace.record_request(w1)
        trace.record_request(r)
        trace.record_response(r, "zzz")
        assert find_explaining_total_order(register, trace, (r, "zzz")) is None
        assert not check_all_responses_explained(register, trace)

    def test_earlier_strict_responses_must_also_be_explained(self, gen):
        counter = CounterType(initial=1)
        inc = make_operation(CounterType.increment(), gen.fresh(), strict=True)
        double = make_operation(CounterType.double(), gen.fresh(), strict=True)
        trace = TraceRecord()
        trace.record_request(inc)
        trace.record_request(double)
        # Both strict responses claim to have gone first: inconsistent.
        trace.record_response(inc, 2)     # inc applied to 1 -> 2 (first)
        trace.record_response(double, 2)  # double applied to 1 -> 2 (first)
        late_read = make_operation(CounterType.read(), gen.fresh())
        trace.record_request(late_read)
        trace.record_response(late_read, 4)
        assert find_explaining_total_order(counter, trace, (late_read, 4)) is None


class TestAtomicityCorollary:
    def test_all_strict_trace_is_atomic(self, gen):
        counter = CounterType()
        a = make_operation(CounterType.increment(), gen.fresh(), strict=True)
        b = make_operation(CounterType.increment(), gen.fresh(), strict=True)
        trace = TraceRecord()
        trace.record_request(a)
        trace.record_request(b)
        trace.record_response(a, 1)
        trace.record_response(b, 2)
        assert check_atomicity_when_all_strict(counter, trace)
        assert check_atomicity_when_all_strict(counter, trace, eventual_order=[a.id, b.id])
        assert not check_atomicity_when_all_strict(counter, trace, eventual_order=[b.id, a.id])

    def test_rejects_traces_with_nonstrict_requests(self, gen):
        counter = CounterType()
        a = make_operation(CounterType.increment(), gen.fresh())
        trace = TraceRecord()
        trace.record_request(a)
        with pytest.raises(ValueError):
            check_atomicity_when_all_strict(counter, trace)
