"""Tests for the baseline services (centralized atomic, primary copy, Ladin)."""

import pytest

from repro.baselines.atomic import CentralizedAtomicService
from repro.baselines.lazy_ladin import LadinLazyReplicationService, MultipartTimestamp
from repro.baselines.primary_copy import PrimaryCopyService
from repro.datatypes import CounterType, GSetType
from repro.sim.cluster import SimulatedCluster, SimulationParams
from repro.sim.workload import WorkloadSpec, run_workload
from repro.spec.guarantees import check_atomicity_when_all_strict

PARAMS = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0, service_time=0.0)


class TestCentralizedAtomic:
    def test_values_follow_arrival_order(self):
        service = CentralizedAtomicService(CounterType(), ["c0"], params=PARAMS)
        values = [service.execute("c0", CounterType.increment())[1] for _ in range(3)]
        assert values == [1, 2, 3]
        assert service.current_state() == 3

    def test_latency_is_round_trip(self):
        service = CentralizedAtomicService(CounterType(), ["c0"], params=PARAMS)
        start = service.now
        service.execute("c0", CounterType.increment())
        assert service.now - start == pytest.approx(2 * PARAMS.df)

    def test_serialization_explains_every_response(self):
        service = CentralizedAtomicService(CounterType(), ["c0", "c1"], params=PARAMS)
        for index in range(4):
            client = f"c{index % 2}"
            service.submit(client, CounterType.increment(), strict=True, at=float(index))
        service.run_until_idle()
        order = [op.id for op in service.serialization()]
        assert check_atomicity_when_all_strict(service.data_type, service.trace, order)

    def test_throughput_capped_by_service_time(self):
        params = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0, service_time=0.5)
        service = CentralizedAtomicService(CounterType(), ["c0", "c1"], params=params)
        spec = WorkloadSpec(operations_per_client=40, mean_interarrival=0.25)
        result = run_workload(service, spec, seed=1, drain_time=200.0)
        # Offered load is 8 ops/time-unit but one server at 0.5 per op caps at 2.
        assert result.throughput <= 2.0 + 0.2


class TestPrimaryCopy:
    def test_waits_for_backup_acknowledgements(self):
        service = PrimaryCopyService(CounterType(), 3, ["c0"], params=PARAMS)
        start = service.now
        _, value = service.execute("c0", CounterType.increment())
        assert value == 1
        assert service.now - start == pytest.approx(2 * PARAMS.df + 2 * PARAMS.dg)

    def test_single_replica_degenerates_to_atomic(self):
        service = PrimaryCopyService(CounterType(), 1, ["c0"], params=PARAMS)
        start = service.now
        service.execute("c0", CounterType.increment())
        assert service.now - start == pytest.approx(2 * PARAMS.df)

    def test_backups_converge_to_primary(self):
        service = PrimaryCopyService(CounterType(), 3, ["c0"], params=PARAMS)
        for _ in range(5):
            service.execute("c0", CounterType.increment())
        service.run(duration=10.0)
        states = service.replica_states()
        assert set(states.values()) == {5}

    def test_configuration_validation(self):
        with pytest.raises(ValueError):
            PrimaryCopyService(CounterType(), 0, ["c0"])


class TestMultipartTimestamp:
    def test_merge_and_dominates(self):
        a = MultipartTimestamp((1, 0, 2))
        b = MultipartTimestamp((0, 3, 1))
        merged = a.merge(b)
        assert merged == MultipartTimestamp((1, 3, 2))
        assert merged.dominates(a) and merged.dominates(b)
        assert not a.dominates(b)

    def test_bump(self):
        ts = MultipartTimestamp.zero(3).bump(1)
        assert ts == MultipartTimestamp((0, 1, 0))


class TestLadinLazyReplication:
    def test_causal_update_then_dependent_query(self):
        service = LadinLazyReplicationService(CounterType(), 3, ["c0"], params=PARAMS)
        service.execute("c0", CounterType.increment())
        _, value = service.execute("c0", CounterType.read())
        assert value == 1

    def test_queries_by_other_clients_may_be_stale(self):
        service = LadinLazyReplicationService(GSetType(), 3, ["c0", "c1"], params=PARAMS)
        service.execute("c0", GSetType.insert("x"))
        # c1 has no dependency on c0's update, so an immediate query may miss it.
        _, seen = service.execute("c1", GSetType.contains("x"))
        assert seen in (True, False)
        # After enough gossip, replicas converge and c1 sees the element.
        service.run(duration=20.0)
        _, seen_later = service.execute("c1", GSetType.contains("x"))
        assert seen_later is True

    def test_replicas_converge_after_gossip(self):
        service = LadinLazyReplicationService(GSetType(), 3, ["c0"], params=PARAMS)
        for element in "abcd":
            service.execute("c0", GSetType.insert(element))
        service.run(duration=30.0)
        assert service.converged()
        assert set(service.replica_values()) == {frozenset("abcd")}

    def test_forced_updates_totally_ordered_across_replicas(self):
        service = LadinLazyReplicationService(
            CounterType(), 3, ["c0", "c1"], params=PARAMS, forced_operators={"double", "increment"}
        )
        service.submit("c0", CounterType.increment(), at=0.0)
        service.submit("c1", CounterType.double(), at=0.0)
        service.run(duration=40.0)
        assert service.converged()
        values = set(service.replica_values())
        assert len(values) == 1  # all replicas agree on one of the two orders
        assert values <= {1, 2}

    def test_needs_two_replicas(self):
        with pytest.raises(ValueError):
            LadinLazyReplicationService(CounterType(), 1, ["c0"])


class TestCrossSystemComparison:
    def test_esds_nonstrict_latency_beats_primary_copy(self):
        params = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0)
        esds = SimulatedCluster(CounterType(), 3, ["c0"], params=params, seed=1)
        primary = PrimaryCopyService(CounterType(), 3, ["c0"], params=params, seed=1)
        spec = WorkloadSpec(operations_per_client=10, mean_interarrival=1.0, strict_fraction=0.0)
        esds_result = run_workload(esds, spec, seed=2)
        primary_result = run_workload(primary, spec, seed=2)
        assert esds_result.mean_latency < primary_result.mean_latency

    def test_all_strict_esds_close_to_primary_copy(self):
        params = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0)
        esds = SimulatedCluster(CounterType(), 3, ["c0"], params=params, seed=3)
        primary = PrimaryCopyService(CounterType(), 3, ["c0"], params=params, seed=3)
        spec = WorkloadSpec(operations_per_client=8, mean_interarrival=3.0, strict_fraction=1.0)
        esds_result = run_workload(esds, spec, seed=4)
        primary_result = run_workload(primary, spec, seed=4)
        # Strict ESDS pays for gossip-based stabilization, so it is slower than
        # primary copy but in the same order of magnitude (not the 2df fast path).
        assert esds_result.mean_latency > primary_result.mean_latency
        assert esds_result.mean_latency <= 4 * primary_result.mean_latency
