"""Tests for relations, partial orders and outcome/val/valset (§2.1, §2.3)."""

import pytest

from repro.common import OperationIdGenerator
from repro.core.operations import make_operation
from repro.core.orders import (
    PartialOrder,
    induced_order,
    is_consistent,
    is_strict_partial_order,
    linear_extensions,
    outcome,
    span,
    topological_total_order,
    transitive_closure,
    val,
    valset,
    value_under_prefix_order,
)
from repro.datatypes import CounterType, RegisterType


class TestTransitiveClosure:
    def test_simple_chain(self):
        closure = transitive_closure({(1, 2), (2, 3)})
        assert (1, 3) in closure
        assert closure == {(1, 2), (2, 3), (1, 3)}

    def test_cycle_detected_by_reflexive_pairs(self):
        closure = transitive_closure({(1, 2), (2, 1)})
        assert (1, 1) in closure and (2, 2) in closure

    def test_empty(self):
        assert transitive_closure(set()) == set()

    def test_is_strict_partial_order(self):
        assert is_strict_partial_order({(1, 2), (2, 3), (1, 3)})
        assert not is_strict_partial_order({(1, 2), (2, 3)})  # not transitive
        assert not is_strict_partial_order({(1, 1)})


class TestConsistency:
    def test_consistent_relations(self):
        assert is_consistent({(1, 2)}, {(2, 3)})

    def test_inconsistent_relations(self):
        assert not is_consistent({(1, 2)}, {(2, 1)})

    def test_span_and_induced(self):
        relation = {(1, 2), (3, 4)}
        assert span(relation) == {1, 2, 3, 4}
        assert induced_order(relation, {1, 2}) == {(1, 2)}


class TestPartialOrder:
    def test_rejects_cycles(self):
        with pytest.raises(ValueError):
            PartialOrder({(1, 2), (2, 1)})

    def test_precedes_uses_transitive_closure(self):
        order = PartialOrder({(1, 2), (2, 3)})
        assert order.precedes(1, 3)
        assert not order.precedes(3, 1)

    def test_comparable(self):
        order = PartialOrder({(1, 2)})
        assert order.comparable(1, 2)
        assert order.comparable(2, 1)
        assert order.comparable(1, 1)
        assert not order.comparable(1, 3)

    def test_extended_with_conflicting_pair_raises(self):
        order = PartialOrder({(1, 2)})
        with pytest.raises(ValueError):
            order.extended_with({(2, 1)})

    def test_extension_preserves_existing_pairs(self):
        order = PartialOrder({(1, 2)})
        extended = order.extended_with({(2, 3)})
        assert order <= extended
        assert extended.precedes(1, 3)

    def test_restriction_is_partial_order(self):
        """Lemma 2.2."""
        order = PartialOrder({(1, 2), (2, 3)})
        restricted = order.restricted_to({1, 3})
        assert restricted.precedes(1, 3)
        assert restricted.span() <= {1, 3}

    def test_totally_orders(self):
        order = PartialOrder({(1, 2), (2, 3)})
        assert order.totally_orders({1, 2, 3})
        assert not PartialOrder({(1, 2)}).totally_orders({1, 2, 3})

    def test_predecessors(self):
        order = PartialOrder({(1, 2), (2, 3)})
        assert order.predecessors(3, {1, 2, 3}) == {1, 2}

    def test_equality(self):
        assert PartialOrder({(1, 2), (2, 3)}) == PartialOrder({(2, 3), (1, 2)})


class TestTopologicalOrder:
    def test_respects_constraints(self):
        order = topological_total_order({(1, 2), (1, 3), (3, 2)}, {1, 2, 3})
        assert order.index(1) < order.index(3) < order.index(2)

    def test_deterministic(self):
        first = topological_total_order(set(), {3, 1, 2})
        second = topological_total_order(set(), {2, 1, 3})
        assert first == second

    def test_cycle_raises(self):
        with pytest.raises(ValueError):
            topological_total_order({(1, 2), (2, 1)}, {1, 2})


class TestLinearExtensions:
    def test_counts_antichain(self):
        extensions = list(linear_extensions(set(), {1, 2, 3}))
        assert len(extensions) == 6

    def test_counts_chain(self):
        extensions = list(linear_extensions({(1, 2), (2, 3)}, {1, 2, 3}))
        assert extensions == [[1, 2, 3]]

    def test_limit(self):
        extensions = list(linear_extensions(set(), set(range(5)), limit=7))
        assert len(extensions) == 7

    def test_every_extension_respects_order(self):
        pairs = {(1, 3), (2, 3)}
        for extension in linear_extensions(pairs, {1, 2, 3, 4}):
            assert extension.index(1) < extension.index(3)
            assert extension.index(2) < extension.index(3)


@pytest.fixture
def counter_ops():
    gen = OperationIdGenerator("c")
    inc = make_operation(CounterType.increment(), gen.fresh())
    double = make_operation(CounterType.double(), gen.fresh())
    read = make_operation(CounterType.read(), gen.fresh())
    return inc, double, read


class TestOutcomeValValset:
    def test_outcome_applies_in_order(self, counter_ops):
        inc, double, read = counter_ops
        counter = CounterType(initial=1)
        assert outcome(counter, [inc, double], [inc.id, double.id]) == 4
        assert outcome(counter, [inc, double], [double.id, inc.id]) == 3

    def test_val_reports_target_value(self, counter_ops):
        inc, double, read = counter_ops
        counter = CounterType(initial=1)
        assert val(counter, read, [inc, double, read], [inc.id, double.id, read.id]) == 4
        assert val(counter, read, [inc, double, read], [double.id, inc.id, read.id]) == 3

    def test_val_requires_target_in_set(self, counter_ops):
        inc, double, read = counter_ops
        with pytest.raises(ValueError):
            val(CounterType(), read, [inc, double], [inc.id, double.id])

    def test_valset_nonempty_for_partial_order(self, counter_ops):
        """Lemma 2.5."""
        inc, double, read = counter_ops
        counter = CounterType(initial=1)
        values = valset(counter, read, [inc, double, read], PartialOrder())
        assert values  # nonempty
        assert values == {1, 2, 3, 4}

    def test_valset_read_after_both_updates(self, counter_ops):
        inc, double, read = counter_ops
        counter = CounterType(initial=1)
        order = PartialOrder({(inc.id, read.id), (double.id, read.id)})
        assert valset(counter, read, [inc, double, read], order) == {3, 4}

    def test_valset_shrinks_with_more_constraints(self, counter_ops):
        """Lemma 2.6: more constraints -> fewer possible values."""
        inc, double, read = counter_ops
        counter = CounterType(initial=1)
        unconstrained = valset(counter, read, [inc, double, read], PartialOrder())
        constrained = valset(
            counter,
            read,
            [inc, double, read],
            PartialOrder({(inc.id, double.id), (double.id, read.id)}),
        )
        assert constrained <= unconstrained
        assert constrained == {4}

    def test_valset_with_total_order_is_singleton(self, counter_ops):
        inc, double, read = counter_ops
        counter = CounterType()
        order = PartialOrder({(inc.id, double.id), (double.id, read.id), (inc.id, read.id)})
        assert len(valset(counter, read, [inc, double, read], order)) == 1

    def test_prefix_value_matches_val(self, counter_ops):
        """Lemma 2.7 in its operational form."""
        inc, double, read = counter_ops
        counter = CounterType(initial=1)
        prefix_value = value_under_prefix_order(counter, read, [inc, double, read])
        assert prefix_value == val(
            counter, read, [inc, double, read], [inc.id, double.id, read.id]
        )

    def test_prefix_value_requires_target_last(self, counter_ops):
        inc, double, read = counter_ops
        with pytest.raises(ValueError):
            value_under_prefix_order(CounterType(), read, [read, inc])

    def test_register_valset(self):
        gen = OperationIdGenerator("c")
        reg = RegisterType()
        w1 = make_operation(RegisterType.write("a"), gen.fresh())
        w2 = make_operation(RegisterType.write("b"), gen.fresh())
        r = make_operation(RegisterType.read(), gen.fresh())
        values = valset(reg, r, [w1, w2, r], PartialOrder({(w1.id, r.id), (w2.id, r.id)}))
        assert values == {"a", "b"}
