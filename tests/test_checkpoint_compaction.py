"""Stability-driven checkpoint compaction (bounded-memory replicas).

The load-bearing property mirrors PR 1's delta-gossip argument: compaction
only ever drops records of operations that are *stable everywhere* — whose
position in the eventual total order, and therefore whose value, is fixed
forever (Invariant 7.2 / Theorem 5.8) — so a compacting system driven by the
same seeded scheduler goes through an execution with identical responses,
identical eventual order and identical invariant obligations, while its
tracked per-operation state stays proportional to the unstable suffix.

The suite covers: the compact id summary, lockstep equivalence against an
uncompacted twin (action-level and simulated, all replica variants), the
sorted-suffix ``done_order`` cache, retransmitted requests for compacted
operations, value-retention eviction, crash + incarnation-bump recovery
through the persisted checkpoint, delta gossip to a peer behind the
frontier, and the compaction config threading in the sharded service layer.
"""

import random

import pytest

from repro.algorithm.checkpoint import (
    Checkpoint,
    CompactionPolicy,
    OpIdSummary,
)
from repro.algorithm.commute import CommuteReplicaCore
from repro.algorithm.memoized import MemoizedReplicaCore
from repro.algorithm.messages import RequestMessage
from repro.algorithm.replica import IncrementalReplicaCore, ReplicaCore
from repro.algorithm.system import AlgorithmSystem
from repro.common import ConfigurationError, OperationId, OperationIdGenerator
from repro.core.operations import make_operation
from repro.datatypes import CounterType, GSetType, RegisterType
from repro.service.frontend import ShardedFrontend
from repro.sim.cluster import SimulatedCluster, SimulationParams
from repro.sim.sharded import ShardedCluster
from repro.sim.workload import KeyedWorkloadSpec, WorkloadSpec, run_keyed_workload, run_workload
from repro.spec.users import SafeUsers
from repro.verification.invariants import AlgorithmInvariantChecker
from repro.verification.serializability import check_recorded_trace, check_system_trace


# --------------------------------------------------------------------------- #
# OpIdSummary / policy basics                                                 #
# --------------------------------------------------------------------------- #


class TestOpIdSummary:
    def test_membership_and_count(self):
        ids = [OperationId("a", i) for i in (0, 1, 2, 5)] + [OperationId("b", 3)]
        summary = OpIdSummary().with_ids(ids)
        assert len(summary) == 5
        for op_id in ids:
            assert op_id in summary
        assert OperationId("a", 3) not in summary
        assert OperationId("c", 0) not in summary

    def test_contiguous_ids_coalesce_to_one_interval_per_client(self):
        summary = OpIdSummary().with_ids(
            [OperationId("a", i) for i in range(100)]
            + [OperationId("b", i) for i in range(50)]
        )
        assert summary.count == 150
        assert summary.interval_count == 2

    def test_gap_filling_merges_intervals(self):
        summary = OpIdSummary().with_ids([OperationId("a", 0), OperationId("a", 2)])
        assert summary.interval_count == 2
        summary = summary.with_ids([OperationId("a", 1)])
        assert summary.interval_count == 1
        assert summary.count == 3

    def test_subset_and_intersection(self):
        small = OpIdSummary().with_ids([OperationId("a", i) for i in range(4)])
        large = small.with_ids(
            [OperationId("a", i) for i in range(4, 8)] + [OperationId("b", 0)]
        )
        assert small.issubset(large)
        assert not large.issubset(small)
        assert small.intersection_count(large) == 4
        assert large.intersection_count(small) == 4
        assert OpIdSummary().issubset(small)

    def test_merged_values_keeps_newest_under_retention(self):
        """Adoption merges the adopter's (older, prefix) values with the
        incoming (newer) ones oldest-first, so retention eviction drops the
        oldest — a retransmit for a recently answered operation must stay
        answerable after recovery."""
        from repro.algorithm.labels import Label

        ours = Checkpoint(
            base_state=2, frontier=Label(1, "r1"),
            ids=OpIdSummary().with_ids([OperationId("a", 0), OperationId("a", 1)]),
            values={OperationId("a", 0): 1, OperationId("a", 1): 2},
        )
        newer = {OperationId("a", 8): 9, OperationId("a", 9): 10}
        merged = ours.merged_values(newer, value_retention=2)
        assert merged == newer

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            CompactionPolicy(min_batch=0)
        with pytest.raises(ConfigurationError):
            CompactionPolicy(value_retention=-1)
        with pytest.raises(ConfigurationError):
            SimulationParams(compaction_interval=1.0)  # interval without policy
        with pytest.raises(ConfigurationError):
            SimulationParams(compaction=CompactionPolicy(), compaction_interval=0.0)


# --------------------------------------------------------------------------- #
# Replica-level mechanics                                                     #
# --------------------------------------------------------------------------- #


def make_pair(policy=None, data_type=None, delta=False):
    ids = ["r1", "r2"]
    replicas = [ReplicaCore(rid, ids, data_type or CounterType()) for rid in ids]
    for replica in replicas:
        if policy is not None:
            replica.configure_compaction(policy)
        if delta:
            replica.configure_delta_gossip(True, full_state_interval=100)
    return replicas


def feed(replica, count, gen, data_type=CounterType):
    ops = [make_operation(data_type.increment(), gen.fresh()) for _ in range(count)]
    for op in ops:
        replica.receive_request(RequestMessage(op))
    replica.do_all_ready()
    return ops


def exchange(r1, r2, rounds=1):
    for _ in range(rounds):
        r2.receive_gossip(r1.make_gossip("r2"))
        r1.receive_gossip(r2.make_gossip("r1"))


class TestReplicaCompaction:
    def test_pending_operations_are_never_compacted(self):
        r1, r2 = make_pair(CompactionPolicy(min_batch=1))
        gen = OperationIdGenerator("c")
        ops = feed(r1, 6, gen)
        exchange(r1, r2, rounds=3)
        # Everything is stable everywhere at r1, but all 6 are still pending
        # (no response was sent): nothing may be folded.
        assert all(r1.is_stable_everywhere(op) for op in ops)
        assert r1.maybe_compact(force=True) == 0
        assert r1.checkpoint.count == 0
        # Answer them; now the prefix folds.
        for op in list(r1.ready_responses()):
            r1.make_response(op)
        assert r1.maybe_compact(force=True) == 6
        assert r1.tracked_op_count() == 0
        assert r1.checkpoint.frontier is not None

    def test_min_batch_gate_and_force(self):
        r1, r2 = make_pair(CompactionPolicy(min_batch=10))
        gen = OperationIdGenerator("c")
        feed(r1, 4, gen)
        for op in list(r1.pending):
            r1.pending.discard(op)
        exchange(r1, r2, rounds=3)
        assert r1.checkpoint.count == 0  # below min_batch, opportunistic pass skipped
        assert r1.maybe_compact() == 0
        assert r1.maybe_compact(force=True) == 4

    def test_compacted_values_answer_retransmitted_requests(self):
        r1, r2 = make_pair(CompactionPolicy(min_batch=1))
        gen = OperationIdGenerator("c")
        ops = feed(r1, 5, gen)
        for op in list(r1.ready_responses()):
            r1.make_response(op)
        exchange(r1, r2, rounds=3)
        assert r1.checkpoint.count == 5
        # A duplicate request (the front end resends when the response was
        # lost) for a compacted operation is answered with the fixed value.
        r1.receive_request(RequestMessage(ops[2]))
        assert r1.response_ready(ops[2])
        assert r1.make_response(ops[2]).value == 3
        assert r1.tracked_op_count() == 0  # the retransmit did not re-track it

    def test_value_retention_bounds_the_ledger(self):
        r1, r2 = make_pair(CompactionPolicy(min_batch=1, value_retention=2))
        gen = OperationIdGenerator("c")
        ops = feed(r1, 6, gen)
        for op in list(r1.ready_responses()):
            r1.make_response(op)
        exchange(r1, r2, rounds=3)
        assert r1.checkpoint.count == 6
        assert len(r1.checkpoint.values) == 2
        # Values for the newest compacted operations survive; older ones are
        # evicted, so a very late retransmit cannot be answered here — and
        # must not be queued either (a permanently unanswerable pending
        # entry would grow without bound under retransmission).
        r1.receive_request(RequestMessage(ops[5]))
        assert r1.response_ready(ops[5])
        r1.pending.discard(ops[5])
        pending_before = set(r1.pending)
        r1.receive_request(RequestMessage(ops[0]))
        assert not r1.response_ready(ops[0])
        assert r1.pending == pending_before

    def test_eviction_drops_stranded_pending_entries(self):
        """A compacted operation re-queued while its value was retained must
        leave pending when a later fold evicts that value."""
        r1, r2 = make_pair(CompactionPolicy(min_batch=1, value_retention=2))
        gen = OperationIdGenerator("c")
        ops = feed(r1, 2, gen)
        for op in list(r1.ready_responses()):
            r1.make_response(op)
        exchange(r1, r2, rounds=3)
        assert r1.checkpoint.count == 2
        r1.receive_request(RequestMessage(ops[0]))  # value still retained
        assert ops[0] in r1.pending
        later = feed(r1, 3, gen)
        for op in list(r1.ready_responses()):
            r1.make_response(op)
        exchange(r1, r2, rounds=3)  # folds 3 more; retention=2 evicts ops[0]
        assert r1.checkpoint.count == 5
        assert ops[0].id not in r1.checkpoint.values
        assert ops[0] not in r1.pending

    @pytest.mark.parametrize("factory", [ReplicaCore, IncrementalReplicaCore,
                                         MemoizedReplicaCore, CommuteReplicaCore],
                             ids=["base", "incremental", "memoized", "commute"])
    def test_every_variant_answers_retransmits_for_compacted_ops(self, factory):
        """The checkpoint-value answer path is part of the replica contract:
        every variant must honour it (the Commute override once broke it)."""
        ids = ["r1", "r2"]
        r1 = factory("r1", ids, CounterType())
        r1.configure_compaction(CompactionPolicy(min_batch=1))
        r2 = factory("r2", ids, CounterType())
        r2.configure_compaction(CompactionPolicy(min_batch=1))
        gen = OperationIdGenerator("c")
        ops = feed(r1, 4, gen)
        for op in list(r1.ready_responses()):
            r1.make_response(op)
        exchange(r1, r2, rounds=3)
        assert r1.checkpoint.count == 4
        r1.receive_request(RequestMessage(ops[1]))  # response was lost; retransmit
        assert r1.response_ready(ops[1])
        assert r1.make_response(ops[1]).value == 2
        assert ops[1] not in r1.pending

    def test_commute_state_survives_fold_of_op_learned_as_stable(self):
        """Regression: an operation a Commute replica first learns from a
        message that already lists it stable (crash-recovery catch-up) must
        reach ``cs_r`` before any compaction folds it — otherwise later
        values are computed from a state missing its effect."""
        ids = ["r1", "r2"]
        r1 = CommuteReplicaCore("r1", ids, CounterType())
        r2 = CommuteReplicaCore("r2", ids, CounterType())
        gen = OperationIdGenerator("c")
        ops = feed(r1, 1, gen)
        for op in list(r1.ready_responses()):
            r1.make_response(op)
        exchange(r1, r2, rounds=2)  # r1 now knows the op is stable everywhere
        assert ops[0] in r1.stable_here()
        r2.crash(volatile_memory=True)
        r2.recover_from_stable_storage()
        r2.configure_compaction(CompactionPolicy(min_batch=1))
        # One message delivers the op as done+stable AND triggers the fold.
        r2.receive_gossip(r1.make_gossip())
        assert r2.checkpoint.count == 1
        assert r2.current_state == 1  # cs_r saw the op before the fold
        # A further increment done at r2 is computed on top of that state.
        follow_up = feed(r2, 1, OperationIdGenerator("d"))[0]
        assert r2.compute_value(follow_up) == 2
        assert r2.replayed_state() == 2

    def test_adoption_prunes_unanswerable_pending_entries(self):
        """A recovering replica holding a retransmitted request it cannot
        answer after adopting a peer's checkpoint (the operation is covered
        but its value was evicted at the sender) must drop the entry rather
        than keep it pending forever."""
        ids = ["r1", "r2"]
        r1 = ReplicaCore("r1", ids, CounterType())
        r1.configure_compaction(CompactionPolicy(min_batch=1, value_retention=1))
        r2 = ReplicaCore("r2", ids, CounterType())
        gen = OperationIdGenerator("c")
        ops = feed(r1, 5, gen)
        for op in list(r1.ready_responses()):
            r1.make_response(op)
        exchange(r1, r2, rounds=3)
        assert r1.checkpoint.count == 5
        assert ops[0].id not in r1.checkpoint.values  # evicted
        r2.crash(volatile_memory=True)
        r2.recover_from_stable_storage()
        # The retransmit lands before the catch-up gossip.
        r2.receive_request(RequestMessage(ops[0]))
        assert ops[0] in r2.pending
        r2.receive_gossip(r1.make_gossip())  # wholesale adoption
        assert r2.checkpoint.count == 5
        assert ops[0] not in r2.pending
        assert not r2.response_ready(ops[0])

    def test_stable_storage_is_pruned_and_frontier_bounds_labels(self):
        r1, r2 = make_pair(CompactionPolicy(min_batch=1))
        gen = OperationIdGenerator("c")
        feed(r1, 8, gen)
        for op in list(r1.ready_responses()):
            r1.make_response(op)
        exchange(r1, r2, rounds=3)
        assert r1.checkpoint.count == 8
        assert len(r1._stable_storage) == 0
        extra = feed(r1, 3, gen)
        frontier = r1.checkpoint.frontier
        for op in extra:
            assert frontier < r1.label_of(op.id)

    def test_gossip_after_compaction_never_resends_folded_knowledge(self):
        r1, r2 = make_pair(CompactionPolicy(min_batch=1), delta=True)
        gen = OperationIdGenerator("c")
        feed(r1, 6, gen)
        for op in list(r1.ready_responses()):
            r1.make_response(op)
        exchange(r1, r2, rounds=4)  # establish acks, spread stability, compact
        assert r1.checkpoint.count == 6
        assert r2.checkpoint.count == 6
        message = r1.make_gossip("r2")
        assert message.is_delta
        assert not message.received and not message.done and not message.stable
        assert not message.labels
        assert message.checkpoint is None  # frontier already conveyed

    def test_behind_peer_catches_up_from_checkpoint_not_history(self):
        """The catch-up path: a peer that lost its state (volatile crash,
        bumped incarnation) receives a full-state message whose payload is
        only the suffix — the prefix arrives as the checkpoint and is
        adopted wholesale."""
        r1, r2 = make_pair(CompactionPolicy(min_batch=1), delta=True)
        gen = OperationIdGenerator("c")
        feed(r1, 10, gen)
        for op in list(r1.ready_responses()):
            r1.make_response(op)
        exchange(r1, r2, rounds=4)
        assert r1.checkpoint.count == 10
        old_epoch = r2._epoch
        r2.crash(volatile_memory=True)
        r2.recover_from_stable_storage()
        assert r2._epoch == old_epoch + 1
        assert r2.checkpoint.count == 10  # the checkpoint survived the crash
        fresh = feed(r1, 2, gen)
        # r1 observes the bumped incarnation on r2's first post-crash gossip
        # and resets the stream; its next send is full-state.
        r1.receive_gossip(r2.make_gossip("r1"))
        catch_up = r1.make_gossip("r2")
        assert not catch_up.is_delta
        assert catch_up.checkpoint is not None and catch_up.checkpoint.count == 10
        assert len(catch_up.done) == 2  # only the unstable suffix travels
        r2.receive_gossip(catch_up)
        assert r2.done_here() >= set(fresh)
        assert r2.replayed_state() == r1.replayed_state() == 12

    def test_recovering_peer_without_own_checkpoint_adopts_wholesale(self):
        """A peer that never compacted (no policy) still adopts a gossiped
        checkpoint when it is missing part of the prefix after a crash."""
        ids = ["r1", "r2"]
        r1 = ReplicaCore("r1", ids, CounterType())
        r1.configure_compaction(CompactionPolicy(min_batch=1))
        r2 = ReplicaCore("r2", ids, CounterType())
        gen = OperationIdGenerator("c")
        feed(r1, 7, gen)
        for op in list(r1.ready_responses()):
            r1.make_response(op)
        exchange(r1, r2, rounds=3)
        assert r1.checkpoint.count == 7
        r2.crash(volatile_memory=True)
        r2.recover_from_stable_storage()
        assert r2.checkpoint.count == 0
        r2.receive_gossip(r1.make_gossip())
        assert r2.checkpoint.count == 7
        assert r2.replayed_state() == 7
        # Invariant: nothing below the adopted frontier is tracked.
        assert all(r2.checkpoint.frontier < label for label in r2.labels.values())

    def test_labels_generated_after_adoption_exceed_adopted_frontier(self):
        ids = ["r1", "r2"]
        r1 = ReplicaCore("r1", ids, CounterType())
        r1.configure_compaction(CompactionPolicy(min_batch=1))
        r2 = ReplicaCore("r2", ids, CounterType())
        gen = OperationIdGenerator("c")
        feed(r1, 5, gen)
        for op in list(r1.ready_responses()):
            r1.make_response(op)
        exchange(r1, r2, rounds=3)
        r2.crash(volatile_memory=True)
        r2.recover_from_stable_storage()
        r2.receive_gossip(r1.make_gossip())
        assert r2.checkpoint.count == 5
        new_op = feed(r2, 1, OperationIdGenerator("d"))[0]
        assert r2.checkpoint.frontier < r2.label_of(new_op.id)

    def test_explicit_label_below_frontier_is_rejected(self):
        from repro.algorithm.labels import Label
        from repro.common import SpecificationError

        r1, r2 = make_pair(CompactionPolicy(min_batch=1))
        gen = OperationIdGenerator("c")
        feed(r1, 3, gen)
        for op in list(r1.ready_responses()):
            r1.make_response(op)
        exchange(r1, r2, rounds=3)
        assert r1.checkpoint.count == 3
        straggler = make_operation(CounterType.increment(), gen.fresh())
        r1.receive_request(RequestMessage(straggler))
        with pytest.raises(SpecificationError):
            r1.do_it(straggler, Label(rank=0, replica="r1"))


# --------------------------------------------------------------------------- #
# done_order sorted-suffix cache (satellite)                                  #
# --------------------------------------------------------------------------- #


class TestDoneOrderCache:
    def test_do_it_appends_without_resorting(self):
        ids = ["r1", "r2"]
        r1 = ReplicaCore("r1", ids, CounterType())
        gen = OperationIdGenerator("c")
        feed(r1, 1, gen)
        baseline = r1.stats.done_order_sorts
        for _ in range(50):
            feed(r1, 1, gen)
            order = r1.done_order()
            assert [x.id.seqno for x in order] == sorted(x.id.seqno for x in order)
        # One initial sort at most; every later call extends the cache.
        assert r1.stats.done_order_sorts <= baseline + 1

    def test_gossip_reorder_invalidates_exactly_when_labels_change(self):
        r1, r2 = make_pair()
        gen1, gen2 = OperationIdGenerator("a"), OperationIdGenerator("b")
        feed(r1, 3, gen1)
        feed(r2, 3, gen2)
        r1.done_order()
        sorts_before = r1.stats.done_order_sorts
        # Merging r2's knowledge adds done operations -> cache invalidated.
        r1.receive_gossip(r2.make_gossip())
        r1.done_order()
        assert r1.stats.done_order_sorts == sorts_before + 1
        # An idle merge (nothing new) keeps the cache.
        r1.receive_gossip(r2.make_gossip())
        r1.done_order()
        assert r1.stats.done_order_sorts == sorts_before + 1

    def test_cached_order_matches_fresh_sort_under_random_merges(self):
        from repro.algorithm.labels import label_sort_key

        rng = random.Random(3)
        r1, r2 = make_pair()
        gens = {"r1": OperationIdGenerator("a"), "r2": OperationIdGenerator("b")}
        replicas = {"r1": r1, "r2": r2}
        for _ in range(120):
            rid = rng.choice(["r1", "r2"])
            action = rng.random()
            if action < 0.5:
                feed(replicas[rid], 1, gens[rid])
            else:
                src = "r2" if rid == "r1" else "r1"
                replicas[rid].receive_gossip(replicas[src].make_gossip())
                replicas[rid].do_all_ready()
            order = replicas[rid].done_order()
            expected = sorted(
                replicas[rid].done_here(),
                key=lambda x: label_sort_key(replicas[rid].label_of(x.id)),
            )
            assert order == expected

    def test_value_computation_counts_unchanged_by_cache(self):
        """Regression: the cache must change how often we sort, never the
        replay itself — application counts and values stay identical for the
        same deterministic run."""
        def drive(cluster):
            spec = WorkloadSpec(operations_per_client=25, mean_interarrival=0.5,
                                strict_fraction=0.2)
            run_workload(cluster, spec, seed=11)
            return cluster

        cluster = drive(SimulatedCluster(CounterType(), 3, ["c0"], seed=4))
        total_ops = len(cluster.requested)
        applications = cluster.total_value_applications()
        responses = cluster.metrics.completed
        assert responses == total_ops
        # From-scratch replay applies the whole prefix per response; the
        # sort cache must not have changed that accounting.
        assert applications >= responses
        sorts = sum(rep.stats.done_order_sorts for rep in cluster.replicas.values())
        calls = sum(rep.stats.responses_sent for rep in cluster.replicas.values())
        assert sorts <= calls + 3 * total_ops  # merges can invalidate, appends cannot


# --------------------------------------------------------------------------- #
# Lockstep equivalence: compacted vs uncompacted twin                         #
# --------------------------------------------------------------------------- #


def build_system(compaction, factory=None, delta=False, data_type=None, users=None):
    return AlgorithmSystem(
        data_type or CounterType(), ["r1", "r2", "r3"], ["alice", "bob"],
        replica_factory=factory, users=users,
        delta_gossip=delta, full_state_interval=5,
        compaction=CompactionPolicy(min_batch=1) if compaction else None,
    )


def drive_random(system, seed, requests=8, steps=600, strict_fraction=0.3):
    rng = random.Random(seed)
    clients = list(system.client_ids)
    gens = {c: OperationIdGenerator(c) for c in clients}
    history = []
    for _ in range(requests):
        client = rng.choice(clients)
        operator = rng.choice(
            [CounterType.increment(), CounterType.add(2), CounterType.read()]
        )
        prev = [history[-1].id] if history and rng.random() < 0.5 else []
        op = make_operation(operator, gens[client].fresh(), prev=prev,
                            strict=rng.random() < strict_fraction)
        history.append(op)
        system.request(op)
    system.run_random(rng, steps=steps)
    system.drain(rng)
    system.run_random(rng, steps=steps)
    return system


class TestLockstepEquivalence:
    @pytest.mark.parametrize("seed", [0, 3, 11, 29])
    @pytest.mark.parametrize("delta", [False, True], ids=["full", "delta"])
    def test_seeded_executions_are_identical(self, seed, delta):
        plain = drive_random(build_system(compaction=False, delta=delta), seed)
        compacted = drive_random(build_system(compaction=True, delta=delta), seed)

        assert plain.trace.responses == compacted.trace.responses
        assert plain.ops() == compacted.ops()
        assert plain.eventual_order() == compacted.eventual_order()
        # The twin actually compacted, and its tracked state shrank.
        folded = sum(r.checkpoint.count for r in compacted.replicas.values())
        assert folded > 0
        for rid in plain.replica_ids:
            tracked = compacted.replicas[rid].tracked_op_count()
            assert tracked <= plain.replicas[rid].tracked_op_count()
            assert tracked + compacted.replicas[rid].checkpoint.count == len(
                plain.replicas[rid].rcvd
            )

    @pytest.mark.parametrize("factory", [IncrementalReplicaCore, MemoizedReplicaCore],
                             ids=["incremental", "memoized"])
    def test_optimized_replicas_agree_under_compaction(self, factory):
        plain = drive_random(build_system(compaction=False), seed=17)
        variant = drive_random(build_system(compaction=True, factory=factory), seed=17)
        assert plain.trace.responses == variant.trace.responses
        assert sum(r.checkpoint.count for r in variant.replicas.values()) > 0

    def test_commute_replicas_agree_under_compaction(self):
        def build(compaction):
            return drive_random(
                build_system(compaction, factory=CommuteReplicaCore,
                             data_type=GSetType(), users=SafeUsers(GSetType())),
                seed=23, strict_fraction=0.0)

        def commuting_drive(system, seed):
            rng = random.Random(seed)
            gens = {c: OperationIdGenerator(c) for c in system.client_ids}
            for index in range(8):
                client = rng.choice(list(system.client_ids))
                system.request(make_operation(GSetType.insert(index),
                                              gens[client].fresh()))
            system.run_random(rng, steps=600)
            system.drain(rng)
            return system

        plain = commuting_drive(build_system(False, factory=CommuteReplicaCore,
                                             data_type=GSetType(), users=SafeUsers(GSetType())), 23)
        compacted = commuting_drive(build_system(True, factory=CommuteReplicaCore,
                                                 data_type=GSetType(), users=SafeUsers(GSetType())), 23)
        assert plain.trace.responses == compacted.trace.responses
        assert sum(r.checkpoint.count for r in compacted.replicas.values()) > 0

    def test_invariants_hold_at_every_step_with_compaction(self):
        system = AlgorithmSystem(
            CounterType(), ["r1", "r2"], ["alice"],
            compaction=CompactionPolicy(min_batch=1),
        )
        gen = OperationIdGenerator("alice")
        rng = random.Random(1)
        for index in range(5):
            system.request(
                make_operation(CounterType.increment(), gen.fresh(), strict=(index == 4))
            )
        checker = AlgorithmInvariantChecker(system)
        system.run_random(rng, steps=200, step_hook=checker)
        system.drain(rng)
        checker.check_all()
        assert len(system.trace.responses) == 5
        assert len(system.compaction_ledger.prefix) > 0

    def test_trace_oracle_passes_on_compacted_system(self):
        system = drive_random(build_system(compaction=True, delta=True), seed=13)
        check_system_trace(system, check_nonstrict=False)

    def test_simulation_relation_holds_with_compaction(self):
        """The forward simulation to ESDS-II must keep matching after folds:
        compaction removes stable operations from the raw stable sets, but
        the spec's ``stabilized`` is monotone — ``stable_everywhere`` is
        evaluated on the checkpoint + suffix view."""
        from repro.verification.simulation_check import AlgorithmToSpecSimulation

        system = AlgorithmSystem(
            RegisterType(), ["r1", "r2"], ["alice"],
            compaction=CompactionPolicy(min_batch=1),
        )
        sim = AlgorithmToSpecSimulation(system)
        gen = OperationIdGenerator("alice")
        rng = random.Random(2)
        for index in range(4):
            sim.request(make_operation(RegisterType.write(index), gen.fresh(),
                                       strict=(index == 3)))
        sim.run_random(rng, steps=250)
        assert sim.report().steps_checked > 0
        assert sum(r.checkpoint.count for r in system.replicas.values()) > 0


# --------------------------------------------------------------------------- #
# Simulated cluster twins + crash recovery                                    #
# --------------------------------------------------------------------------- #


def sim_params(compaction, **overrides):
    kwargs = dict(df=1.0, dg=1.0, gossip_period=2.0)
    kwargs.update(overrides)
    if compaction:
        kwargs.setdefault("compaction", CompactionPolicy(min_batch=4))
        kwargs.setdefault("compaction_interval", 8.0)
    return SimulationParams(**kwargs)


class TestSimulatedCompaction:
    @pytest.mark.parametrize("delta", [False, True], ids=["full", "delta"])
    def test_twin_runs_produce_identical_responses(self, delta):
        def run(compaction):
            cluster = SimulatedCluster(
                RegisterType(), 3, ["c0", "c1"],
                params=sim_params(compaction, delta_gossip=delta), seed=9,
            )
            spec = WorkloadSpec(
                operations_per_client=40, mean_interarrival=0.5,
                strict_fraction=0.2, prev_policy="last_own",
                operator_factory=lambda rng, i: (
                    RegisterType.write(rng.randint(0, 50))
                    if rng.random() < 0.6 else RegisterType.read()),
            )
            run_workload(cluster, spec, seed=31)
            return cluster

        plain, compacted = run(False), run(True)
        assert plain.responded == compacted.responded
        assert compacted.metrics.peak_tracked_ops() < plain.metrics.peak_tracked_ops()
        assert len(compacted.compacted_prefix) > 0
        AlgorithmInvariantChecker(compacted.algorithm_view()).check_all()
        check_recorded_trace(compacted.data_type, compacted.trace,
                             witness=compacted.eventual_order())

    def test_crash_mid_compaction_with_incarnation_bump(self):
        """A replica crashes (volatile) while the cluster has compacted, the
        epoch bumps, and recovery rebuilds from the persisted checkpoint plus
        catch-up gossip; a strict read then sees every increment."""
        params = sim_params(True, delta_gossip=True, retransmit_interval=4.0)
        cluster = SimulatedCluster(CounterType(), 3, ["c0"], params=params, seed=2)
        for _ in range(30):
            cluster.execute("c0", CounterType.increment())
        cluster.run(30.0)  # let stability spread and compaction fold
        victim = cluster.replicas["r1"]
        assert victim.checkpoint.count > 0
        epoch_before = victim._epoch
        cluster.crash_replica("r1", volatile_memory=True)
        cluster.run(6.0)
        cluster.recover_replica("r1")
        cluster.run(20.0)
        assert victim._epoch == epoch_before + 1
        _, value = cluster.execute("c0", CounterType.read(), strict=True)
        assert value == 30
        assert victim.replayed_state() == 30
        AlgorithmInvariantChecker(cluster.algorithm_view()).check_all()

    def test_interval_driven_compaction_without_gossip_trigger(self):
        """The forced interval sweep folds even when min_batch is never
        reached opportunistically."""
        params = sim_params(True)
        params = SimulationParams(
            df=1.0, dg=1.0, gossip_period=2.0,
            compaction=CompactionPolicy(min_batch=10_000),
            compaction_interval=5.0,
        )
        cluster = SimulatedCluster(CounterType(), 2, ["c0"], params=params, seed=0)
        for _ in range(10):
            cluster.execute("c0", CounterType.increment())
        cluster.run(40.0)
        assert len(cluster.compacted_prefix) > 0


# --------------------------------------------------------------------------- #
# Service layer threading                                                     #
# --------------------------------------------------------------------------- #


class TestServiceLayerCompaction:
    def test_sharded_frontend_threads_policy_per_shard(self):
        policy = CompactionPolicy(min_batch=1)
        frontend = ShardedFrontend(
            CounterType(), num_shards=2, replicas_per_shard=2,
            client_ids=["c0"],
            compaction={frontend_shard: policy for frontend_shard in ("s0",)},
        )
        s0_cores = frontend.systems["s0"].replicas.values()
        s1_cores = frontend.systems["s1"].replicas.values()
        assert all(core.compaction is policy for core in s0_cores)
        assert all(core.compaction is None for core in s1_cores)

        rng = random.Random(5)
        written = []
        for index in range(12):
            written.append(frontend.request("c0", f"k{index % 4}",
                                            CounterType.increment()))
        frontend.run_random(rng, steps=1500)
        frontend.drain(rng)
        assert frontend.outstanding_operations() == 0
        frontend.check_invariants()
        frontend.check_traces()
        compacted = sum(
            core.checkpoint.count for core in frontend.systems["s0"].replicas.values()
        )
        assert compacted > 0
        # Ids are minted per (client, shard), so a shard's compacted prefix
        # is a contiguous per-client seqno run: the summary holds at most
        # one interval per client, not one fragment per interleaving.
        for core in frontend.systems["s0"].replicas.values():
            if core.checkpoint.count:
                intervals = sum(len(iv) for iv in core.checkpoint.ids.ranges.values())
                assert intervals <= len(frontend.client_ids)

    def test_sharded_cluster_accepts_per_shard_disable(self):
        """Mapping a shard to ``None`` disables compaction there even when
        the base params carry a policy plus an interval timer."""
        params = SimulationParams(
            compaction=CompactionPolicy(min_batch=1), compaction_interval=5.0
        )
        cluster = ShardedCluster(
            CounterType(), num_shards=2, replicas_per_shard=2,
            client_ids=["c0"], params=params, seed=0,
            compaction={"s0": None},
        )
        assert all(core.compaction is None for core in cluster.shards["s0"].replicas.values())
        assert all(core.compaction is not None for core in cluster.shards["s1"].replicas.values())

    def test_sharded_cluster_twin_equivalence_with_compaction(self):
        def run(compaction):
            cluster = ShardedCluster(
                CounterType(), num_shards=2, replicas_per_shard=2,
                client_ids=["c0", "c1"], seed=6,
                compaction=CompactionPolicy(min_batch=2) if compaction else None,
            )
            spec = KeyedWorkloadSpec(
                operations_per_client=20, mean_interarrival=0.5,
                num_keys=4, prev_policy="last_on_key", strict_fraction=0.2,
            )
            run_keyed_workload(cluster, spec, seed=8)
            return cluster

        plain, compacted = run(False), run(True)
        assert plain.responded == compacted.responded
        assert any(
            len(shard.compacted_prefix) > 0 for shard in compacted.shards.values()
        )
        compacted.run(60.0)  # extra gossip so every shard quiesces
        compacted.check_invariants()
        compacted.check_traces()
        assert compacted.metrics.peak_tracked_ops() <= plain.metrics.peak_tracked_ops()
        # Per-(client, shard) minting keeps every shard's compacted id
        # summary at O(clients) intervals (here: at most one per client).
        for shard in compacted.shards.values():
            for core in shard.replicas.values():
                if core.checkpoint.count:
                    intervals = sum(
                        len(iv) for iv in core.checkpoint.ids.ranges.values()
                    )
                    assert intervals <= len(compacted.client_ids)
