"""Tests for the full algorithm composition ESDS-Alg x Users (§6.4)."""

import random

import pytest

from repro.algorithm.memoized import MemoizedReplicaCore
from repro.algorithm.system import AlgorithmSystem
from repro.common import (
    ConfigurationError,
    INFINITY,
    OperationIdGenerator,
    WellFormednessError,
)
from repro.core.operations import make_operation
from repro.datatypes import CounterType, RegisterType
from repro.verification.serializability import check_system_trace, eventual_order_witness


@pytest.fixture
def system():
    return AlgorithmSystem(RegisterType(), ["r1", "r2", "r3"], ["alice", "bob"])


@pytest.fixture
def gen():
    return OperationIdGenerator("alice")


class TestConstruction:
    def test_needs_two_replicas(self):
        with pytest.raises(ConfigurationError):
            AlgorithmSystem(RegisterType(), ["r1"], ["alice"])

    def test_needs_a_client(self):
        with pytest.raises(ConfigurationError):
            AlgorithmSystem(RegisterType(), ["r1", "r2"], [])


class TestRequestPath:
    def test_request_enforces_well_formedness(self, system, gen):
        op = make_operation(RegisterType.write(1), gen.fresh())
        system.request(op)
        with pytest.raises(WellFormednessError):
            system.request(op)

    def test_full_manual_round_trip(self, system, gen):
        op = make_operation(RegisterType.write("v"), gen.fresh())
        system.request(op)
        system.send_request("alice", "r1", op)
        system.receive_request("alice", "r1")
        system.do_it("r1", op)
        message = system.send_response("r1", op)
        assert message.value == "v"
        system.receive_response("r1", "alice", message)
        value = system.response(op)
        assert value == "v"
        assert system.trace.responses == [(op, "v")]

    def test_gossip_propagates_done_sets(self, system, gen):
        op = make_operation(RegisterType.write("v"), gen.fresh())
        system.request(op)
        system.send_request("alice", "r1", op)
        system.receive_request("alice", "r1")
        system.do_it("r1", op)
        system.send_gossip("r1", "r2")
        system.receive_gossip("r1", "r2")
        assert op in system.replicas["r2"].done_here()


class TestDerivedVariables:
    def test_ops_and_minlabel(self, system, gen):
        op = make_operation(RegisterType.write("v"), gen.fresh())
        system.request(op)
        assert system.ops() == set()
        assert system.minlabel(op.id) is INFINITY
        system.send_request("alice", "r1", op)
        system.receive_request("alice", "r1")
        system.do_it("r1", op)
        assert system.ops() == {op}
        assert system.minlabel(op.id) is not INFINITY

    def test_partial_order_contains_csc(self, system, gen):
        first = make_operation(RegisterType.write("a"), gen.fresh())
        second = make_operation(RegisterType.read(), gen.fresh(), prev=[first.id])
        for op in (first, second):
            system.request(op)
            system.send_request("alice", "r1", op)
            system.receive_request("alice", "r1")
        system.do_it("r1", first)
        system.do_it("r1", second)
        assert system.partial_order().precedes(first.id, second.id)

    def test_stable_everywhere_after_drain(self, system, gen):
        op = make_operation(RegisterType.write("a"), gen.fresh())
        system.request(op)
        system.send_request("alice", "r2", op)
        system.receive_request("alice", "r2")
        system.do_it("r2", op)
        system.drain(random.Random(0))
        assert op in system.stable_everywhere()
        assert system.eventual_order() == [op.id]

    def test_potential_rept_tracks_in_flight_responses(self, system, gen):
        op = make_operation(RegisterType.write("a"), gen.fresh())
        system.request(op)
        system.send_request("alice", "r1", op)
        system.receive_request("alice", "r1")
        system.do_it("r1", op)
        system.send_response("r1", op)
        assert system.potential_rept("alice") == {(op, "a")}
        system.receive_response("r1", "alice")
        assert system.potential_rept("alice") == set()


class TestRandomExecution:
    @pytest.mark.parametrize("seed", [0, 7, 13])
    def test_random_runs_answer_all_requests(self, seed):
        system = AlgorithmSystem(CounterType(), ["r1", "r2"], ["alice", "bob"])
        rng = random.Random(seed)
        gens = {c: OperationIdGenerator(c) for c in ["alice", "bob"]}
        history = []
        for index in range(6):
            client = rng.choice(["alice", "bob"])
            operator = rng.choice(
                [CounterType.increment(), CounterType.add(2), CounterType.read()]
            )
            prev = [history[-1].id] if history and rng.random() < 0.5 else []
            op = make_operation(operator, gens[client].fresh(), prev=prev,
                                strict=rng.random() < 0.3)
            history.append(op)
            system.request(op)
        system.run_random(rng, steps=400)
        system.drain(rng)
        system.run_random(rng, steps=400)
        assert len(system.trace.responses) == 6
        check_system_trace(system, check_nonstrict=False)

    def test_witness_covers_all_requests(self):
        system = AlgorithmSystem(CounterType(), ["r1", "r2"], ["alice"])
        gen = OperationIdGenerator("alice")
        pending = make_operation(CounterType.increment(), gen.fresh())
        system.request(pending)
        witness = eventual_order_witness(system)
        assert pending.id in witness


class TestWithMemoizedReplicas:
    def test_memoized_factory_round_trip(self):
        system = AlgorithmSystem(
            CounterType(), ["r1", "r2"], ["alice"], replica_factory=MemoizedReplicaCore
        )
        gen = OperationIdGenerator("alice")
        rng = random.Random(5)
        for index in range(4):
            op = make_operation(CounterType.increment(), gen.fresh(), strict=(index == 3))
            system.request(op)
        system.run_random(rng, steps=300)
        system.drain(rng)
        system.run_random(rng, steps=300)
        assert len(system.trace.responses) == 4
        check_system_trace(system)
