"""Tests for the Theorem 9.3 / 9.4 bound calculator."""

import math

import pytest

from repro.analysis.bounds import (
    TimingAssumptions,
    bound_by_class,
    check_latency_records_against_bounds,
    operation_class,
    response_time_bound,
    stabilization_time_bound,
    summarize_bounds_vs_measured,
)
from repro.common import OperationIdGenerator
from repro.core.operations import make_operation
from repro.datatypes import CounterType
from repro.sim.metrics import LatencyRecord

TIMING = TimingAssumptions(df=1.0, dg=2.0, gossip_period=3.0)


@pytest.fixture
def gen():
    return OperationIdGenerator("c")


class TestBoundValues:
    def test_delta_table(self, gen):
        plain = make_operation(CounterType.increment(), gen.fresh())
        dep = make_operation(CounterType.increment(), gen.fresh(), prev=[plain.id])
        strict = make_operation(CounterType.increment(), gen.fresh(), strict=True)
        assert response_time_bound(plain, TIMING) == 2.0
        assert response_time_bound(dep, TIMING) == 2.0 + 5.0
        assert response_time_bound(strict, TIMING) == 2.0 + 15.0

    def test_bound_by_class_matches_per_operation(self, gen):
        table = bound_by_class(TIMING)
        plain = make_operation(CounterType.increment(), gen.fresh())
        assert table[operation_class(plain)] == response_time_bound(plain, TIMING)
        assert set(table) == {"nonstrict_no_prev", "nonstrict_with_prev", "strict"}

    def test_bounds_are_ordered(self):
        table = bound_by_class(TIMING)
        assert table["nonstrict_no_prev"] < table["nonstrict_with_prev"] < table["strict"]

    def test_stabilization_bound(self):
        assert stabilization_time_bound(TIMING) == 1.0 + 3 * 5.0

    def test_gossip_round(self):
        assert TIMING.gossip_round == 5.0


class TestViolationChecker:
    def test_within_bound_passes(self, gen):
        op = make_operation(CounterType.increment(), gen.fresh())
        record = LatencyRecord(op, request_time=0.0, response_time=2.0)
        assert check_latency_records_against_bounds([record], TIMING) == []

    def test_violation_reported(self, gen):
        op = make_operation(CounterType.increment(), gen.fresh())
        record = LatencyRecord(op, request_time=0.0, response_time=2.5)
        violations = check_latency_records_against_bounds([record], TIMING)
        assert len(violations) == 1
        assert violations[0][1] == 2.0

    def test_resume_time_shifts_deadline(self, gen):
        """Theorem 9.4: the bound is measured from max(request, resume)."""
        op = make_operation(CounterType.increment(), gen.fresh())
        record = LatencyRecord(op, request_time=0.0, response_time=11.0)
        assert check_latency_records_against_bounds([record], TIMING)
        assert check_latency_records_against_bounds([record], TIMING, resume_time=9.0) == []

    def test_summary_table(self, gen):
        plain = make_operation(CounterType.increment(), gen.fresh())
        strict = make_operation(CounterType.increment(), gen.fresh(), strict=True)
        records = [
            LatencyRecord(plain, 0.0, 1.5),
            LatencyRecord(strict, 0.0, 12.0),
        ]
        summary = summarize_bounds_vs_measured(records, TIMING)
        assert summary["nonstrict_no_prev"]["max"] == 1.5
        assert summary["strict"]["bound"] == 17.0
        assert math.isnan(summary["nonstrict_with_prev"]["max"])
