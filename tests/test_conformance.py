"""Tests for the conformance-vector subsystem (codec, generator, replayer)
plus a full replay of the checked-in corpus under ``tests/vectors/``."""

import copy
import json
import random
from fractions import Fraction
from pathlib import Path

import pytest

from repro.common import OperationId
from repro.conformance import (
    ConformanceError,
    ScenarioOutcome,
    ScenarioSpec,
    collect_outcome,
    compare_outcomes,
    content_digest,
    decode_value,
    dumps_vector,
    encode_value,
    loads_vector,
    run_scenario,
    seal,
    state_digest,
    verify_sealed,
)
from repro.conformance.codec import decode_op_id, encode_op_id
from repro.conformance.generate import (
    MODES,
    generate_corpus,
    scenario_for,
    vector_doc,
)
from repro.conformance.replay import (
    dump_failure_artifact,
    iter_vector_files,
    replay_doc,
    replay_path,
    verify_digest_path,
)
from repro.sim.faults import FAULT_KINDS, fault_from_dict, fault_to_dict

VECTOR_DIR = Path(__file__).resolve().parent / "vectors"
VECTOR_FILES = sorted(VECTOR_DIR.glob("*.json"))


class TestCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -17,
            "plain string",
            "unicode ☃ snowman",
            3.5,
            -0.0,
            1e-300,
            (1, 2, 3),
            (),
            ("nested", (True, None)),
            frozenset(),
            frozenset({"a", "b", "c"}),
            frozenset({1, ("x", 2.5)}),
            {"k": 1, "other": (2, 3)},
            {},
            {"deep": {"map": frozenset({("pair", 1)})}},
        ],
    )
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_round_trip_preserves_types(self):
        value = ("tuple", frozenset({1, 2}), {"d": 0.5})
        decoded = decode_value(encode_value(value))
        assert isinstance(decoded, tuple)
        assert isinstance(decoded[1], frozenset)
        assert isinstance(decoded[2]["d"], float)

    def test_float_encoding_is_exact(self):
        for value in [0.1, 2.0 / 3.0, 1e308, 5e-324]:
            decoded = decode_value(encode_value(value))
            assert decoded == value and isinstance(decoded, float)
        # int and float encode distinctly even when numerically equal.
        assert encode_value(1) != encode_value(1.0)

    def test_frozenset_encoding_is_order_independent(self):
        a = frozenset(["x", "y", "z"])
        b = frozenset(["z", "x", "y"])
        assert json.dumps(encode_value(a), sort_keys=True) == json.dumps(
            encode_value(b), sort_keys=True
        )

    def test_unsupported_types_rejected(self):
        with pytest.raises(ConformanceError):
            encode_value([1, 2, 3])  # lists are not in the value model
        with pytest.raises(ConformanceError):
            encode_value(Fraction(1, 3))
        with pytest.raises(ConformanceError):
            decode_value({"t": [1], "extra": 2})

    def test_op_id_round_trip(self):
        op = OperationId(client="client#with#hash", seqno=42)
        assert decode_op_id(encode_op_id(op)) == op

    def test_pinned_digest(self):
        # Freezes the canonical encoding: if this digest ever changes, the
        # format changed and FORMAT_VERSION must be bumped.
        doc = {
            "name": "pin",
            "payload": encode_value({"set": frozenset({1, 2}), "tup": (1.5, None)}),
        }
        assert content_digest(doc) == (
            "sha256:ed4e4e7e1b3b13941aa247e8ed6093c4b1706f4e48965a066d9ad44c993a817d"
        )

    def test_seal_and_verify(self):
        doc = seal({"name": "x", "scenario": {"seed": 1}})
        verify_sealed(doc)
        tampered = copy.deepcopy(doc)
        tampered["scenario"]["seed"] = 2
        with pytest.raises(ConformanceError, match="digest mismatch"):
            verify_sealed(tampered)

    def test_loads_vector_rejects_bad_documents(self):
        doc = seal({"name": "x"})
        loads_vector(dumps_vector(doc))
        with pytest.raises(ConformanceError):
            loads_vector("not json {")
        with pytest.raises(ConformanceError, match="root"):
            loads_vector("[1, 2]")
        with pytest.raises(ConformanceError, match="kind"):
            verify_sealed(dict(doc, kind="other"))
        with pytest.raises(ConformanceError, match="format version"):
            verify_sealed(dict(doc, format_version=99))

    def test_state_digest_shape(self):
        digest = state_digest({"counter": 3})
        assert len(digest) == 16 and set(digest) <= set("0123456789abcdef")
        assert digest == state_digest({"counter": 3})
        assert digest != state_digest({"counter": 4})


class TestFaultSerialization:
    def test_round_trip_every_kind(self):
        samples = {
            "replica_crash": dict(replica="r0", at=1.0, recover_at=2.0, volatile_memory=True),
            "gossip_outage": dict(replica="r1", start=1.0, end=2.0),
            "delay_spike": dict(start=1.0, end=2.0),
            "asymmetric_partition": dict(source="r0", destination="r1", start=1.0, end=2.0),
            "straggler": dict(replica="r2", factor=4.0, start=0.0, end=5.0),
            "duplicate_messages": dict(start=0.0, end=3.0, probability=0.25),
            "corrupt_transfers": dict(start=0.0, end=3.0, probability=1.0),
            "clock_skew": dict(start=0.0, end=6.0, max_skew=2.5, replicas=["r0", "r2"]),
        }
        assert set(samples) == set(FAULT_KINDS)
        for kind, fields in samples.items():
            doc = dict(fields, kind=kind)
            fault = fault_from_dict(doc)
            assert isinstance(fault, FAULT_KINDS[kind])
            assert fault_to_dict(fault) == doc

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            fault_from_dict({"kind": "meteor_strike", "start": 0.0, "end": 1.0})

    def test_extra_keys_ignored(self):
        doc = {"kind": "delay_spike", "start": 1.0, "end": 2.0, "shard": "s1"}
        fault = fault_from_dict(doc)
        assert (fault.start, fault.end) == (1.0, 2.0)


class TestScenarioSpec:
    def test_round_trip_through_doc(self):
        for mode in MODES:
            spec = scenario_for(mode, 3)
            assert ScenarioSpec.from_doc(spec.to_doc()) == spec

    def test_validation(self):
        spec = scenario_for("full", 0)
        import dataclasses

        with pytest.raises(ConformanceError):
            dataclasses.replace(spec, harness="quantum")
        with pytest.raises(ConformanceError):
            dataclasses.replace(spec, data_type="blockchain")
        with pytest.raises(ConformanceError):
            dataclasses.replace(spec, harness="sharded", num_shards=0)


class TestGenerator:
    def test_generation_is_deterministic(self, tmp_path):
        spec = scenario_for("delta-compact", 2)
        first = dumps_vector(vector_doc(spec, run_scenario(spec)))
        second = dumps_vector(vector_doc(spec, run_scenario(spec)))
        assert first == second

    def test_generate_corpus_writes_replayable_vectors(self, tmp_path):
        paths = generate_corpus(tmp_path, seeds=1, modes=["full", "sharded"], verbose=False)
        assert len(paths) == 2
        for path in paths:
            replay_path(path)

    def test_modes_cover_issue_matrix(self):
        # full/delta gossip x compaction x advert/pull x sharded, plus the
        # crafted adversarial mode — 8 modes x 5 seeds = the 40-vector corpus.
        assert set(MODES) == {
            "full",
            "delta",
            "full-compact",
            "delta-compact",
            "advert",
            "advert-chunk",
            "sharded",
            "adversarial",
        }


class TestCorpus:
    def test_corpus_size_and_composition(self):
        assert len(VECTOR_FILES) >= 40
        adversarial = [p for p in VECTOR_FILES if p.name.startswith("adversarial")]
        assert adversarial, "corpus must include adversarial vectors"

    def test_corpus_digests(self):
        for path in VECTOR_FILES:
            verify_digest_path(path)

    @pytest.mark.parametrize("path", VECTOR_FILES, ids=lambda p: p.stem)
    def test_replay_corpus_vector(self, path):
        replay_path(path)

    def test_adversarial_vectors_exercise_corruption(self):
        # At least one checked-in vector must actually have hit the
        # corrupted-transfer reject-and-re-pull path (issue acceptance).
        rejections = 0
        for path in VECTOR_FILES:
            if not path.name.startswith("adversarial"):
                continue
            doc = loads_vector(path.read_text(encoding="utf-8"), str(path))
            for group in doc["info"]["groups"].values():
                rejections += group["transfer_rejections"]
        assert rejections > 0

    def test_sample_regeneration_is_byte_identical(self):
        # Guards against nondeterminism drift without regenerating all 40
        # vectors (the nightly CI job does the full sweep).
        rng = random.Random(2026)
        for path in rng.sample(VECTOR_FILES, 3):
            recorded = path.read_text(encoding="utf-8")
            doc = loads_vector(recorded, str(path))
            spec = ScenarioSpec.from_doc(doc["scenario"])
            regenerated = dumps_vector(vector_doc(spec, run_scenario(spec)))
            assert regenerated == recorded, f"{path.name} is stale; regenerate the corpus"


class TestReplayer:
    def _sealed_vector(self, mode="full", seed=0):
        spec = scenario_for(mode, seed)
        return spec, vector_doc(spec, run_scenario(spec))

    def test_replay_detects_tampered_expectation(self):
        spec, doc = self._sealed_vector()
        tampered = copy.deepcopy(doc)
        digests = tampered["expected"]["replica_digests"]
        group = next(iter(digests))
        replica = next(iter(digests[group]))
        digests[group][replica] = "sha256:0000000000000000"
        tampered = seal({k: v for k, v in tampered.items() if k != "digest"})
        with pytest.raises(ConformanceError, match="diverged"):
            replay_doc(tampered, "tampered")

    def test_replay_oracles_only_skips_comparison(self):
        spec, doc = self._sealed_vector()
        tampered = copy.deepcopy(doc)
        tampered["expected"]["witness"] = list(reversed(tampered["expected"]["witness"]))
        tampered = seal({k: v for k, v in tampered.items() if k != "digest"})
        replay_doc(tampered, "tampered", oracles_only=True)

    def test_outcome_round_trip_and_compare(self):
        spec, doc = self._sealed_vector("delta", 1)
        outcome = ScenarioOutcome.from_doc(doc["expected"])
        assert ScenarioOutcome.from_doc(outcome.to_doc()) == outcome
        assert compare_outcomes(outcome, outcome) == []
        observed = collect_outcome(run_scenario(spec))
        assert compare_outcomes(outcome, observed) == []

    def test_failure_artifact_dump_and_replay(self, tmp_path):
        spec = scenario_for("full", 4)
        path = dump_failure_artifact(spec, RuntimeError("boom"), tmp_path)
        doc = loads_vector(path.read_text(encoding="utf-8"), str(path))
        assert doc["expected"] is None
        assert "boom" in doc["info"]["failure"]
        # A spec-only artifact replays in oracles-only mode (the recorded
        # scenario here is healthy, so the oracles pass).
        replay_path(path)

    def test_iter_vector_files_rejects_empty(self, tmp_path):
        with pytest.raises(ConformanceError):
            iter_vector_files([tmp_path])
