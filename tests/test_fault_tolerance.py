"""Fault-tolerance tests (§9.3, Theorem 9.4): loss, duplication, crashes,
partitions and recovery of the timing bounds."""

import random

import pytest

from repro.algorithm.system import AlgorithmSystem
from repro.analysis.bounds import TimingAssumptions, check_latency_records_against_bounds
from repro.common import OperationIdGenerator
from repro.core.operations import make_operation
from repro.datatypes import CounterType
from repro.sim.cluster import SimulatedCluster, SimulationParams
from repro.sim.faults import DelaySpike, FaultSchedule, GossipOutage, ReplicaCrash
from repro.sim.workload import WorkloadSpec, run_workload
from repro.verification.invariants import AlgorithmInvariantChecker
from repro.verification.serializability import check_recorded_trace, check_system_trace


class TestMessageLossAndDuplicationSafety:
    """Safety is unaffected by dropping or duplicating in-transit messages."""

    @pytest.mark.parametrize("seed", [3, 4])
    def test_invariants_hold_with_random_drops_and_duplicates(self, seed):
        rng = random.Random(seed)
        system = AlgorithmSystem(CounterType(), ["r1", "r2"], ["alice"])
        checker = AlgorithmInvariantChecker(system)
        gen = OperationIdGenerator("alice")
        history = []
        for index in range(5):
            prev = [history[-1].id] if history and rng.random() < 0.5 else []
            op = make_operation(
                rng.choice([CounterType.increment(), CounterType.read()]),
                gen.fresh(), prev=prev, strict=rng.random() < 0.3,
            )
            history.append(op)
            system.request(op)
        for _ in range(400):
            if rng.random() < 0.15:
                self._interfere(system, rng)
                checker.check_all()
            if system.random_step(rng) is None:
                break
            checker.check_all()
        # After interference stops, the system still converges.
        system.drain(rng)
        system.run_random(rng, 300)
        checker.check_all()
        check_system_trace(system)

    @staticmethod
    def _interfere(system, rng):
        """Drop or duplicate one random in-transit message."""
        channels = (
            list(system.request_channels.values())
            + list(system.response_channels.values())
            + list(system.gossip_channels.values())
        )
        populated = [ch for ch in channels if len(ch)]
        if not populated:
            return
        channel = rng.choice(populated)
        if rng.random() < 0.5:
            channel.receive(rng=rng)  # drop: remove without delivering
        else:
            message = rng.choice(channel.contents())
            channel.send(message)  # duplicate

    def test_lossy_simulated_network_still_answers_nonstrict(self):
        params = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0,
                                  loss_probability=0.2, request_fanout=2,
                                  retransmit_interval=4.0)
        cluster = SimulatedCluster(CounterType(), 3, ["c0"], params=params, seed=8)
        spec = WorkloadSpec(operations_per_client=20, mean_interarrival=1.0,
                            strict_fraction=0.0)
        result = run_workload(cluster, spec, seed=9, drain_time=400.0)
        # With redundant sends and retransmission every request completes
        # despite 20% message loss.
        assert result.metrics.completed == 20
        check_recorded_trace(cluster.data_type, cluster.trace,
                             witness=cluster.eventual_order())


class TestCrashRecovery:
    def test_crash_and_recovery_preserves_safety_and_liveness(self):
        params = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0)
        cluster = SimulatedCluster(CounterType(), 3, ["c0"], params=params, seed=5)
        faults = FaultSchedule().add(ReplicaCrash("r1", at=5.0, recover_at=15.0))
        faults.install(cluster)
        spec = WorkloadSpec(operations_per_client=20, mean_interarrival=1.0,
                            strict_fraction=0.2)
        run_workload(cluster, spec, seed=6, drain_time=300.0)
        assert cluster.outstanding_operations() == 0
        check_recorded_trace(cluster.data_type, cluster.trace,
                             witness=cluster.eventual_order())

    def test_unrecovered_crash_blocks_strict_but_not_nonstrict(self):
        params = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0)
        cluster = SimulatedCluster(CounterType(), 3, ["c0"], params=params, seed=5)
        FaultSchedule().add(ReplicaCrash("r2", at=0.5)).install(cluster)
        nonstrict = cluster.submit("c0", CounterType.increment(), at=1.0)
        strict = cluster.submit("c0", CounterType.increment(), strict=True, at=1.0)
        cluster.run(duration=60.0)
        assert nonstrict.id in cluster.responded
        assert strict.id not in cluster.responded  # stability unreachable

    def test_fault_schedule_validation(self):
        with pytest.raises(ValueError):
            ReplicaCrash("r1", at=5.0, recover_at=4.0).install(
                SimulatedCluster(CounterType(), 2, ["c0"])
            )
        with pytest.raises(ValueError):
            GossipOutage("r1", start=5.0, end=5.0).install(
                SimulatedCluster(CounterType(), 2, ["c0"])
            )
        with pytest.raises(ValueError):
            DelaySpike(start=3.0, end=2.0).install(
                SimulatedCluster(CounterType(), 2, ["c0"])
            )


class TestTheorem94Recovery:
    def test_bounds_hold_from_resume_time_after_outage(self):
        params = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0,
                                  retransmit_interval=2.0)
        cluster = SimulatedCluster(CounterType(), 3, ["c0", "c1"], params=params, seed=10)
        outage_end = 20.0
        faults = FaultSchedule().add(GossipOutage("r1", start=2.0, end=outage_end))
        faults.install(cluster)
        spec = WorkloadSpec(operations_per_client=10, mean_interarrival=1.0,
                            strict_fraction=0.4, prev_policy="last_own")
        result = run_workload(cluster, spec, seed=11, drain_time=300.0)
        assert cluster.outstanding_operations() == 0
        timing = TimingAssumptions(df=params.df, dg=params.dg,
                                   gossip_period=params.gossip_period)
        # During the outage the bounds may be exceeded...
        # ...but measured from the resume time (after the partition heals, the
        # next retransmission lands, and the next gossip round starts) they
        # hold again (Theorem 9.4).
        resume = (faults.last_fault_time() + params.retransmit_interval
                  + params.gossip_period)
        violations_after_resume = check_latency_records_against_bounds(
            result.metrics.records, timing, resume_time=resume
        )
        assert violations_after_resume == []

    def test_delay_spike_recovery(self):
        params = SimulationParams(df=1.0, dg=1.0, gossip_period=2.0, spike_factor=6.0)
        cluster = SimulatedCluster(CounterType(), 3, ["c0"], params=params, seed=12)
        faults = FaultSchedule().add(DelaySpike(start=0.0, end=12.0))
        faults.install(cluster)
        spec = WorkloadSpec(operations_per_client=12, mean_interarrival=1.0,
                            strict_fraction=0.3)
        result = run_workload(cluster, spec, seed=13, drain_time=300.0)
        timing = TimingAssumptions(df=params.df, dg=params.dg,
                                   gossip_period=params.gossip_period)
        # Spiked deliveries can stretch past the end of the window (a message
        # sent just before the spike ends still takes the inflated delay), so
        # the timing assumptions are only guaranteed once those drain.
        resume = 12.0 + params.spike_factor * max(params.df, params.dg) + params.gossip_period
        violations = check_latency_records_against_bounds(
            result.metrics.records, timing, resume_time=resume
        )
        assert violations == []
