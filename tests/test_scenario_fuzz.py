"""Seeded randomized scenario fuzzing.

Each scenario draws a random deployment (replica count, data type, timing
parameters, gossip mode), a random client workload (operator mix, strict
fraction, dependency policy) and a random :class:`FaultSchedule` (crashes
with recovery, gossip outages, delay spikes), runs it on the discrete-event
simulator, and then checks the two correctness oracles on the outcome:

* the **eventual-serializability oracle** (Theorem 5.8): every strict
  response is explained by the system-wide minimum-label eventual order;
* the **Section 7/8 invariant checker**, run against the cluster's
  :meth:`~repro.sim.cluster.SimulatedCluster.algorithm_view` once the
  network has quiesced (the view models channels as empty, which is exactly
  the quiescent state; crashes are always recovered, so convergence is
  guaranteed by the perpetual gossip timers).

Every scenario runs under both full-state and delta gossip — the PR 1
equivalence argument says the observable guarantees are identical, and this
suite is the randomized regression net enforcing it.  A smaller batch of
scenarios exercises the sharded service layer with per-shard faults; another
re-runs the corpus seeds with *aggressive* checkpoint compaction (fold every
stable operation immediately) — the bounded-memory mechanism must preserve
exactly the same guarantees — and a further batch forces **advert/pull**
gossip on top of that, so the pull-based catch-up plane is exercised under
random crashes, loss and delay spikes.

The corpus size is ``FUZZ_SEEDS`` seeds per mode (default 20); the nightly
CI job widens it via the ``FUZZ_SEEDS`` environment variable to cover
long-tail interleavings without slowing PR builds.
"""

import dataclasses
import os
import random

import pytest

from repro.algorithm.checkpoint import CompactionPolicy
from repro.datatypes import CounterType, GSetType, RegisterType
from repro.sim.cluster import SimulatedCluster, SimulationParams
from repro.sim.faults import DelaySpike, FaultSchedule, GossipOutage, ReplicaCrash
from repro.sim.sharded import ShardedCluster
from repro.sim.workload import KeyedWorkloadSpec, WorkloadSpec, run_keyed_workload, run_workload
from repro.verification.invariants import AlgorithmInvariantChecker
from repro.verification.serializability import check_recorded_trace

FUZZ_SEEDS = list(range(int(os.environ.get("FUZZ_SEEDS", "20"))))

#: Filled in by the parametrized scenarios: (seed, delta_gossip) -> whether
#: any operation was lost to a volatile crash; consumed by the corpus check.
_LOSSINESS = {}

#: Random operator mixes per data type: (type factory, operator chooser).
DATA_TYPES = [
    (CounterType, lambda rng, i: rng.choice(
        [CounterType.increment(), CounterType.add(rng.randint(1, 5)), CounterType.read()])),
    (GSetType, lambda rng, i: rng.choice(
        [GSetType.insert(rng.randint(0, 9)), GSetType.size(), GSetType.snapshot()])),
    (RegisterType, lambda rng, i: rng.choice(
        [RegisterType.write(rng.randint(0, 99)), RegisterType.read()])),
]


def random_params(rng: random.Random, delta_gossip: bool) -> SimulationParams:
    return SimulationParams(
        df=1.0,
        dg=1.0,
        gossip_period=rng.choice([1.0, 2.0]),
        jitter=rng.choice([0.0, 0.5]),
        loss_probability=rng.choice([0.0, 0.0, 0.1]),
        spike_factor=rng.choice([2.0, 5.0]),
        service_time=rng.choice([0.0, 0.1]),
        request_fanout=rng.choice([1, 2]),
        frontend_policy=rng.choice(["affinity", "round_robin", "random"]),
        retransmit_interval=4.0,  # masks loss and crash windows
        delta_gossip=delta_gossip,
        full_state_interval=rng.choice([4, 8]),
        incremental_replay=rng.random() < 0.5,
        batch_gossip=rng.random() < 0.5,
    )


def random_workload(rng: random.Random, operator_factory) -> WorkloadSpec:
    return WorkloadSpec(
        operations_per_client=rng.randint(6, 12),
        mean_interarrival=rng.choice([0.5, 1.0]),
        poisson_arrivals=rng.random() < 0.5,
        strict_fraction=rng.choice([0.0, 0.2, 0.5]),
        prev_policy=rng.choice(["none", "last_own", "random_own"]),
        operator_factory=operator_factory,
    )


def random_faults(rng: random.Random, replica_ids, horizon: float) -> FaultSchedule:
    """0-2 random faults, all of which end (crashes always recover) so the
    system is guaranteed to converge afterwards."""
    schedule = FaultSchedule()
    for _ in range(rng.randint(0, 2)):
        kind = rng.choice(["crash", "outage", "spike"])
        start = rng.uniform(1.0, max(horizon - 2.0, 2.0))
        length = rng.uniform(2.0, 10.0)
        if kind == "crash":
            schedule.add(ReplicaCrash(
                rng.choice(replica_ids), at=start, recover_at=start + length,
                volatile_memory=rng.random() < 0.7,
            ))
        elif kind == "outage":
            schedule.add(GossipOutage(rng.choice(replica_ids), start=start, end=start + length))
        else:
            schedule.add(DelaySpike(start=start, end=start + length))
    return schedule


def classify_casualties(cluster):
    """Partition the requested operations into ``(lost, stuck)`` identifiers.

    A volatile crash wipes everything but the locally generated labels
    (Section 9.3), so an operation that was done and *answered* at one
    replica and then wiped before any gossip spread it is gone for good —
    the front end stopped retransmitting when the response arrived.  That is
    the ack-before-replicate window the paper's fault model genuinely
    permits; the liveness-flavoured checks below must not demand the
    impossible for such operations.  ``stuck`` operations are those whose
    ``prev`` chain passes through a lost operation: no replica can ever do
    them (``can_do`` waits for the lost dependency), so they stay
    unanswered.  Unanswered-and-wiped operations are neither: retransmission
    re-delivers them.
    """
    known = set()
    compacted_ids = set(cluster.compaction_ledger.ids)
    for replica in cluster.replicas.values():
        known |= replica.rcvd | replica.done_here()
    lost = {
        op_id
        for op_id, op in cluster.requested.items()
        if op_id in cluster.responded and op not in known and op_id not in compacted_ids
    }
    unreachable = set(lost)
    changed = True
    while changed:
        changed = False
        for op_id, op in cluster.requested.items():
            if op_id not in unreachable and op.prev & unreachable:
                unreachable.add(op_id)
                changed = True
    return lost, unreachable - lost


def quiesce(cluster, surviving_ids=None, max_rounds: int = 200) -> bool:
    """Run extra gossip rounds until every surviving operation is stable at
    every replica.

    Perpetual gossip timers guarantee convergence once faults have ended;
    message loss only delays it (delta gossip falls back to full state every
    ``full_state_interval`` sends, so dropped seqnos cannot wedge a peer).
    """
    if surviving_ids is None:
        surviving_ids = set(cluster.requested)
    targets = {cluster.requested[op_id] for op_id in surviving_ids}

    def settled() -> bool:
        return all(
            all(replica.knows_stable(op) for op in targets)
            for replica in cluster.replicas.values()
        )

    period = cluster.params.gossip_period + cluster.params.dg + cluster.params.df
    for _ in range(max_rounds):
        if settled():
            return True
        cluster.run(period)
    return settled()


def check_scenario_outcome(cluster):
    """The oracles every scenario must satisfy at quiescence.

    Returns the ``(lost, stuck)`` casualty sets so callers can account for
    how often the loss-tolerant relaxations were actually exercised.
    """
    lost, stuck = classify_casualties(cluster)
    surviving = set(cluster.requested) - lost - stuck
    # Liveness: everything that *can* complete did complete.
    unanswered = set(cluster.requested) - set(cluster.responded)
    assert unanswered <= stuck, f"survivable operations left unanswered: {unanswered - stuck}"
    assert quiesce(cluster, surviving), "cluster failed to converge after faults ended"
    # Eventual-serializability oracle (Theorem 5.8) — unconditional safety.
    # The witness is the minimum-label order over the surviving operations;
    # casualties are appended in client order (a lost operation leaves only a
    # stable-storage ghost label, which no surviving response ever saw, so it
    # must not sit inside the order; no csc edge can lead from a casualty to
    # a survivor, or the survivor would itself be stuck).
    casualties = lost | stuck
    witness = [op_id for op_id in cluster.eventual_order() if op_id not in casualties]
    witness += sorted(casualties, key=lambda op_id: (op_id.client, op_id.seqno))
    check_recorded_trace(cluster.data_type, cluster.trace, witness=witness)
    # Section 7/8 invariants on the quiescent algorithm view.  The checker
    # assumes the crash-free universe: a lost operation leaves a restored
    # stable-storage label with no surviving body behind (violating 7.5 by
    # design), so the full sweep applies exactly to loss-free executions —
    # the vast majority of seeds.
    if not lost:
        AlgorithmInvariantChecker(cluster.algorithm_view()).check_all()
    # All replicas agree on the final state (convergence, Lemma 2.7) —
    # computed as checkpoint base plus tracked suffix, so compacted and
    # uncompacted replicas are compared on the same footing.
    states = {
        replica_id: replica.replayed_state()
        for replica_id, replica in cluster.replicas.items()
    }
    assert len(set(states.values())) == 1, f"replica states diverged: {states}"
    return lost, stuck


@pytest.mark.parametrize("delta_gossip", [False, True], ids=["full", "delta"])
@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_random_scenarios_preserve_guarantees(seed, delta_gossip):
    rng = random.Random(seed * 2 + (1 if delta_gossip else 0))
    type_factory, operator_factory = rng.choice(DATA_TYPES)
    params = random_params(rng, delta_gossip)
    num_replicas = rng.randint(2, 4)
    clients = [f"c{i}" for i in range(rng.randint(1, 3))]
    cluster = SimulatedCluster(
        type_factory(), num_replicas, clients, params=params, seed=seed * 31 + 7
    )

    spec = random_workload(rng, operator_factory)
    horizon = spec.operations_per_client * spec.mean_interarrival
    faults = random_faults(rng, list(cluster.replica_ids), horizon)
    faults.install(cluster)

    result = run_workload(cluster, spec, seed=seed + 1000, drain_time=600.0)
    # Let every fault window end before judging the outcome.
    remaining = faults.last_fault_time() - cluster.now
    if remaining > 0:
        cluster.run(remaining + params.gossip_period)
    cluster.run_until_idle(max_time=600.0)

    assert result.submitted == spec.operations_per_client * len(clients)
    lost, _stuck = check_scenario_outcome(cluster)
    _LOSSINESS[(seed, delta_gossip)] = bool(lost)


def test_fuzz_corpus_is_mostly_loss_free():
    """The casualty classifier must stay an edge-case escape hatch: across
    the corpus, the overwhelming majority of scenarios exercise the full
    invariant sweep (no answered operation wiped by a volatile crash).

    Reads the lossiness recorded by the parametrized scenarios above rather
    than re-running the simulations; with a ``-k`` selection that skips
    them, there is nothing to audit."""
    if len(_LOSSINESS) < len(FUZZ_SEEDS) * 2:
        pytest.skip("full scenario corpus did not run in this session")
    lossy = sum(_LOSSINESS.values())
    assert lossy <= len(FUZZ_SEEDS) * 2 // 4, f"{lossy} of {len(_LOSSINESS)} scenarios lossy"


#: The compaction-focused batches re-run half the corpus (at least 10 seeds).
COMPACTION_SEEDS = FUZZ_SEEDS[: max(10, len(FUZZ_SEEDS) // 2)]


@pytest.mark.parametrize("delta_gossip", [False, True], ids=["full", "delta"])
@pytest.mark.parametrize("seed", COMPACTION_SEEDS)
def test_random_scenarios_with_aggressive_compaction(seed, delta_gossip):
    """The corpus seeds re-run with the most aggressive compaction settings
    (fold every stable operation immediately, plus a forced interval sweep):
    the same liveness, Theorem 5.8 and invariant oracles must hold, and the
    scenario must actually exercise compaction."""
    rng = random.Random(seed * 2 + (1 if delta_gossip else 0))
    type_factory, operator_factory = rng.choice(DATA_TYPES)
    params = dataclasses.replace(
        random_params(rng, delta_gossip),
        compaction=CompactionPolicy(min_batch=1),
        compaction_interval=1.0,
    )
    num_replicas = rng.randint(2, 4)
    clients = [f"c{i}" for i in range(rng.randint(1, 3))]
    cluster = SimulatedCluster(
        type_factory(), num_replicas, clients, params=params, seed=seed * 31 + 7
    )

    spec = random_workload(rng, operator_factory)
    horizon = spec.operations_per_client * spec.mean_interarrival
    faults = random_faults(rng, list(cluster.replica_ids), horizon)
    faults.install(cluster)

    result = run_workload(cluster, spec, seed=seed + 1000, drain_time=600.0)
    remaining = faults.last_fault_time() - cluster.now
    if remaining > 0:
        cluster.run(remaining + params.gossip_period)
    cluster.run_until_idle(max_time=600.0)

    assert result.submitted == spec.operations_per_client * len(clients)
    lost, stuck = check_scenario_outcome(cluster)
    # The sweep must not be vacuous: with min_batch=1 every answered
    # operation eventually gets folded once stability spreads.  Quiesce only
    # over the survivors — casualties of volatile crashes can never settle,
    # and waiting for them would burn the whole round budget on lossy seeds.
    quiesce(cluster, set(cluster.requested) - lost - stuck)
    for _ in range(5):
        for replica in cluster.replicas.values():
            replica.maybe_compact(force=True)
        cluster.run(params.gossip_period + params.dg)
    assert len(cluster.compacted_prefix) > 0, "compaction never happened"
    # After quiescence + forced sweeps every replica's residual tracked set
    # must have shrunk below the full history — i.e. records were really
    # dropped, not just checkpoint-accounted.  (The *mid-run* peak bound is
    # benchmark E10's job; these workloads are too small for it to bite.)
    residual = max(replica.tracked_op_count() for replica in cluster.replicas.values())
    assert residual < len(cluster.requested), "no replica ever dropped any record"


@pytest.mark.parametrize("delta_gossip", [False, True], ids=["full", "delta"])
@pytest.mark.parametrize("seed", COMPACTION_SEEDS)
def test_random_scenarios_with_advert_pull_gossip(seed, delta_gossip):
    """The corpus seeds re-run with advert/pull gossip forced on (plus the
    aggressive compaction that makes adverts non-trivial): full-state
    messages now carry adverts instead of checkpoint bodies, and any replica
    wiped by a volatile crash must catch up through the pull/transfer plane
    under the same random faults.  All oracles must hold unchanged."""
    rng = random.Random(seed * 2 + (1 if delta_gossip else 0))
    type_factory, operator_factory = rng.choice(DATA_TYPES)
    params = dataclasses.replace(
        random_params(rng, delta_gossip),
        compaction=CompactionPolicy(min_batch=1),
        compaction_interval=1.0,
        advert_gossip=True,
        checkpoint_chunk=rng.choice([None, 2, 5]),
    )
    num_replicas = rng.randint(2, 4)
    clients = [f"c{i}" for i in range(rng.randint(1, 3))]
    cluster = SimulatedCluster(
        type_factory(), num_replicas, clients, params=params, seed=seed * 31 + 7
    )

    spec = random_workload(rng, operator_factory)
    horizon = spec.operations_per_client * spec.mean_interarrival
    faults = random_faults(rng, list(cluster.replica_ids), horizon)
    faults.install(cluster)

    result = run_workload(cluster, spec, seed=seed + 1000, drain_time=600.0)
    remaining = faults.last_fault_time() - cluster.now
    if remaining > 0:
        cluster.run(remaining + params.gossip_period)
    cluster.run_until_idle(max_time=600.0)

    assert result.submitted == spec.operations_per_client * len(clients)
    check_scenario_outcome(cluster)
    # Advert mode must really be live: eager checkpoint bodies never ride on
    # gossip; any catch-up went through the pull/transfer plane.
    for replica in cluster.replicas.values():
        message = replica.make_gossip()
        assert message.checkpoint is None
        if replica.checkpoint.count:
            assert message.advert is not None


@pytest.mark.parametrize("delta_gossip", [False, True], ids=["full", "delta"])
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_random_sharded_scenarios_preserve_guarantees(seed, delta_gossip):
    """The same oracles, per shard, on the sharded service layer with faults
    injected into individual shards."""
    rng = random.Random(900 + seed * 2 + (1 if delta_gossip else 0))
    params = random_params(rng, delta_gossip)
    cluster = ShardedCluster(
        CounterType(), num_shards=rng.choice([2, 3]), replicas_per_shard=3,
        client_ids=[f"c{i}" for i in range(rng.randint(1, 2))],
        params=params, seed=seed * 13 + 5,
    )
    spec = KeyedWorkloadSpec(
        operations_per_client=rng.randint(6, 10),
        mean_interarrival=rng.choice([0.5, 1.0]),
        strict_fraction=rng.choice([0.0, 0.3]),
        num_keys=rng.choice([4, 8]),
        key_distribution=rng.choice(["uniform", "zipfian"]),
        prev_policy=rng.choice(["none", "last_on_key"]),
    )
    horizon = spec.operations_per_client * spec.mean_interarrival
    schedules = []
    for shard in cluster.shards.values():
        faults = random_faults(rng, list(shard.replica_ids), horizon)
        faults.install(shard)
        schedules.append(faults)

    run_keyed_workload(cluster, spec, seed=seed + 77, drain_time=600.0)
    last_fault = max(schedule.last_fault_time() for schedule in schedules)
    if last_fault > cluster.now:
        cluster.run(last_fault - cluster.now + params.gossip_period)
    cluster.run_until_idle(max_time=600.0)

    # Every shard is an independent ESDS instance: the full set of oracles
    # applies to each one separately.
    for shard in cluster.shards.values():
        check_scenario_outcome(shard)
