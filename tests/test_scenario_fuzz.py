"""Seeded randomized scenario fuzzing.

Each scenario draws a random deployment (replica count, data type, timing
parameters, gossip mode), a random client workload (operator mix, strict
fraction, dependency policy) and a random fault schedule (crashes with
recovery, gossip outages, delay spikes — plus, in the extended batch, the
adversarial kinds: asymmetric partitions, stragglers, duplication, transfer
corruption), runs it on the discrete-event simulator, and then checks the
correctness oracles on the outcome:

* the **eventual-serializability oracle** (Theorem 5.8): every strict
  response is explained by the system-wide minimum-label eventual order;
* the **Section 7/8 invariant checker**, run against the cluster's
  :meth:`~repro.sim.cluster.SimulatedCluster.algorithm_view` once the
  network has quiesced (the view models channels as empty, which is exactly
  the quiescent state; crashes are always recovered, so convergence is
  guaranteed by the perpetual gossip timers).

The scenario sampler and the oracles live in :mod:`repro.conformance` and
are shared with the conformance-vector generator: the fuzzer explores fresh
seeds, the checked-in corpus (``tests/vectors/``) freezes a reviewed sample
of the same distribution.  When a scenario fails and ``FUZZ_ARTIFACT_DIR``
is set, the offending spec is dumped as a conformance vector so the failure
reproduces with ``python -m repro.conformance.replay <artifact>`` instead of
a seed hunt (CI uploads the artifacts).

Every scenario runs under both full-state and delta gossip — the PR 1
equivalence argument says the observable guarantees are identical, and this
suite is the randomized regression net enforcing it.  A smaller batch of
scenarios exercises the sharded service layer with per-shard faults; another
re-runs the corpus seeds with *aggressive* checkpoint compaction; a further
batch forces **advert/pull** gossip on top of that; the extended-fault
batch turns on the full adversary mix; and the reshard batch changes the
consistent-hash ring **live** mid-load (grow or drain, driven directly
against :class:`~repro.sim.sharded.ShardedCluster`) while transfer
corruption and volatile crash/recovery fire, re-checking every per-shard
oracle plus the handoff audit afterwards.

The corpus size is ``FUZZ_SEEDS`` seeds per mode (default 20); the nightly
CI job widens it via the ``FUZZ_SEEDS`` environment variable to cover
long-tail interleavings without slowing PR builds.
"""

import dataclasses
import os
import random
from pathlib import Path

import pytest

from repro.algorithm.checkpoint import CompactionPolicy
from repro.conformance.generate import (
    random_fault_dicts,
    random_keyed_workload_fields,
    random_params,
    random_workload_fields,
)
from repro.conformance.oracles import check_cluster_outcome, quiesce
from repro.conformance.replay import dump_failure_artifact
from repro.conformance.scenario import (
    DATA_TYPE_NAMES,
    UNSHARDED,
    ScenarioSpec,
    run_scenario,
)
from repro.datatypes import CounterType
from repro.sim.cluster import SimulationParams
from repro.sim.sharded import ShardedCluster

FUZZ_SEEDS = list(range(int(os.environ.get("FUZZ_SEEDS", "20"))))

#: Filled in by the parametrized scenarios: (seed, delta_gossip) -> whether
#: any operation was lost to a volatile crash; consumed by the corpus check.
_LOSSINESS = {}


def random_sim_spec(name, seed, delta_gossip, params_tweak=None, extended=False):
    """One random single-cluster scenario spec (the rng draw order matches
    the historical in-process fuzzer, so the explored executions are the
    same ones)."""
    rng = random.Random(seed * 2 + (1 if delta_gossip else 0))
    data_type = rng.choice(DATA_TYPE_NAMES)
    params = random_params(rng, delta_gossip)
    if params_tweak is not None:
        params = params_tweak(rng, params)
    num_replicas = rng.randint(2, 4)
    clients = tuple(f"c{i}" for i in range(rng.randint(1, 3)))
    workload = random_workload_fields(rng)
    horizon = workload["operations_per_client"] * workload["mean_interarrival"]
    replica_ids = [f"r{i}" for i in range(num_replicas)]
    faults = random_fault_dicts(rng, replica_ids, horizon, extended=extended)
    return ScenarioSpec(
        name=name,
        harness="sim",
        data_type=data_type,
        num_replicas=num_replicas,
        clients=clients,
        seed=seed * 31 + 7,
        workload_seed=seed + 1000,
        params=params,
        workload=workload,
        faults=tuple(faults),
    )


def random_sharded_spec(name, seed, delta_gossip):
    rng = random.Random(900 + seed * 2 + (1 if delta_gossip else 0))
    params = random_params(rng, delta_gossip)
    num_shards = rng.choice([2, 3])
    clients = tuple(f"c{i}" for i in range(rng.randint(1, 2)))
    workload = random_keyed_workload_fields(rng)
    horizon = workload["operations_per_client"] * workload["mean_interarrival"]
    faults = []
    for index in range(num_shards):
        faults.extend(
            random_fault_dicts(rng, [f"r{i}" for i in range(3)], horizon, shard=f"s{index}")
        )
    return ScenarioSpec(
        name=name,
        harness="sharded",
        data_type="counter",
        num_replicas=3,
        num_shards=num_shards,
        clients=clients,
        seed=seed * 13 + 5,
        workload_seed=seed + 77,
        params=params,
        workload=workload,
        faults=tuple(faults),
    )


def run_checked(spec):
    """Run a scenario spec and apply the full oracle suite to every outcome
    group; on any failure, dump the spec as a replayable conformance-vector
    artifact when ``FUZZ_ARTIFACT_DIR`` is set."""
    try:
        run = run_scenario(spec)
        results = {group: check_cluster_outcome(c) for group, c in run.clusters.items()}
        return run, results
    except Exception as exc:
        artifact_dir = os.environ.get("FUZZ_ARTIFACT_DIR")
        if not artifact_dir:
            raise
        path = dump_failure_artifact(spec, exc, Path(artifact_dir))
        raise AssertionError(
            f"scenario {spec.name} failed: {exc}\n"
            f"artifact dumped; reproduce with: python -m repro.conformance.replay {path}"
        ) from exc


@pytest.mark.parametrize("delta_gossip", [False, True], ids=["full", "delta"])
@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_random_scenarios_preserve_guarantees(seed, delta_gossip):
    mode = "delta" if delta_gossip else "full"
    spec = random_sim_spec(f"fuzz-base-{mode}-{seed:03d}", seed, delta_gossip)
    run, results = run_checked(spec)
    expected = spec.workload["operations_per_client"] * len(spec.clients)
    assert run.workload_result.submitted == expected
    lost, _stuck = results[UNSHARDED]
    _LOSSINESS[(seed, delta_gossip)] = bool(lost)


def test_fuzz_corpus_is_mostly_loss_free():
    """The casualty classifier must stay an edge-case escape hatch: across
    the corpus, the overwhelming majority of scenarios exercise the full
    invariant sweep (no answered operation wiped by a volatile crash).

    Reads the lossiness recorded by the parametrized scenarios above rather
    than re-running the simulations; with a ``-k`` selection that skips
    them, there is nothing to audit."""
    if len(_LOSSINESS) < len(FUZZ_SEEDS) * 2:
        pytest.skip("full scenario corpus did not run in this session")
    lossy = sum(_LOSSINESS.values())
    assert lossy <= len(FUZZ_SEEDS) * 2 // 4, f"{lossy} of {len(_LOSSINESS)} scenarios lossy"


#: The compaction-focused batches re-run half the corpus (at least 10 seeds).
COMPACTION_SEEDS = FUZZ_SEEDS[: max(10, len(FUZZ_SEEDS) // 2)]


def _aggressive_compaction(rng, params):
    return dataclasses.replace(
        params, compaction=CompactionPolicy(min_batch=1), compaction_interval=1.0
    )


def _advert_pull(rng, params):
    return dataclasses.replace(
        params,
        compaction=CompactionPolicy(min_batch=1),
        compaction_interval=1.0,
        advert_gossip=True,
        checkpoint_chunk=rng.choice([None, 2, 5]),
    )


@pytest.mark.parametrize("delta_gossip", [False, True], ids=["full", "delta"])
@pytest.mark.parametrize("seed", COMPACTION_SEEDS)
def test_random_scenarios_with_aggressive_compaction(seed, delta_gossip):
    """The corpus seeds re-run with the most aggressive compaction settings
    (fold every stable operation immediately, plus a forced interval sweep):
    the same liveness, Theorem 5.8 and invariant oracles must hold, and the
    scenario must actually exercise compaction."""
    mode = "delta" if delta_gossip else "full"
    spec = random_sim_spec(
        f"fuzz-compact-{mode}-{seed:03d}", seed, delta_gossip, params_tweak=_aggressive_compaction
    )
    run, results = run_checked(spec)
    expected = spec.workload["operations_per_client"] * len(spec.clients)
    assert run.workload_result.submitted == expected
    cluster = run.clusters[UNSHARDED]
    lost, stuck = results[UNSHARDED]
    # The sweep must not be vacuous: with min_batch=1 every answered
    # operation eventually gets folded once stability spreads.  Quiesce only
    # over the survivors — casualties of volatile crashes can never settle,
    # and waiting for them would burn the whole round budget on lossy seeds.
    quiesce(cluster, set(cluster.requested) - lost - stuck)
    for _ in range(5):
        for replica in cluster.replicas.values():
            replica.maybe_compact(force=True)
        cluster.run(spec.params.gossip_period + spec.params.dg)
    assert len(cluster.compacted_prefix) > 0, "compaction never happened"
    # After quiescence + forced sweeps every replica's residual tracked set
    # must have shrunk below the full history — i.e. records were really
    # dropped, not just checkpoint-accounted.  (The *mid-run* peak bound is
    # benchmark E10's job; these workloads are too small for it to bite.)
    residual = max(replica.tracked_op_count() for replica in cluster.replicas.values())
    assert residual < len(cluster.requested), "no replica ever dropped any record"


@pytest.mark.parametrize("delta_gossip", [False, True], ids=["full", "delta"])
@pytest.mark.parametrize("seed", COMPACTION_SEEDS)
def test_random_scenarios_with_advert_pull_gossip(seed, delta_gossip):
    """The corpus seeds re-run with advert/pull gossip forced on (plus the
    aggressive compaction that makes adverts non-trivial): full-state
    messages now carry adverts instead of checkpoint bodies, and any replica
    wiped by a volatile crash must catch up through the pull/transfer plane
    under the same random faults.  All oracles must hold unchanged."""
    mode = "delta" if delta_gossip else "full"
    spec = random_sim_spec(
        f"fuzz-advert-{mode}-{seed:03d}", seed, delta_gossip, params_tweak=_advert_pull
    )
    run, _results = run_checked(spec)
    expected = spec.workload["operations_per_client"] * len(spec.clients)
    assert run.workload_result.submitted == expected
    # Advert mode must really be live: eager checkpoint bodies never ride on
    # gossip; any catch-up went through the pull/transfer plane.
    for replica in run.clusters[UNSHARDED].replicas.values():
        message = replica.make_gossip()
        assert message.checkpoint is None
        if replica.checkpoint.count:
            assert message.advert is not None


def _fast_core(rng, params):
    return dataclasses.replace(params, fast_core=True)


def _fast_core_advert(rng, params):
    return dataclasses.replace(_advert_pull(rng, params), fast_core=True)


def _batch_core(rng, params):
    return dataclasses.replace(params, fast_core=True, batch_replay=True)


def _batch_core_advert(rng, params):
    return dataclasses.replace(
        _advert_pull(rng, params), fast_core=True, batch_replay=True
    )


_CORE_TWEAK_KINDS = {
    _fast_core: "fast",
    _fast_core_advert: "fast-advert",
    _batch_core: "batch",
    _batch_core_advert: "batch-advert",
}


@pytest.mark.parametrize(
    "tweak",
    [_fast_core, _fast_core_advert, _batch_core, _batch_core_advert],
    ids=["plain", "advert-compact", "batch", "batch-advert-compact"],
)
@pytest.mark.parametrize("delta_gossip", [False, True], ids=["full", "delta"])
@pytest.mark.parametrize("seed", COMPACTION_SEEDS)
def test_random_scenarios_with_fast_core(seed, delta_gossip, tweak):
    """The corpus seeds re-run on :class:`FastReplicaCore` — plain, and
    layered over the aggressive-compaction + advert/pull tweak (the paths
    where the interned tables are remapped by folds and the bitset knowledge
    maps absorb interval summaries) — and again on the batch replay kernel
    (:class:`BatchReplicaCore`), whose deferred gossip splices and memoized
    compaction prefix ride the same paths.  Both cores are optimizations,
    not semantic changes, so every oracle must hold exactly as for the base
    core."""
    from repro.algorithm.batchcore import BatchReplicaCore
    from repro.algorithm.fastcore import FastReplicaCore

    mode = "delta" if delta_gossip else "full"
    kind = _CORE_TWEAK_KINDS[tweak]
    spec = random_sim_spec(
        f"fuzz-{kind}-{mode}-{seed:03d}", seed, delta_gossip, params_tweak=tweak
    )
    assert spec.params.fast_core
    run, _results = run_checked(spec)
    expected = spec.workload["operations_per_client"] * len(spec.clients)
    assert run.workload_result.submitted == expected
    wanted = BatchReplicaCore if spec.params.batch_replay else FastReplicaCore
    for replica in run.clusters[UNSHARDED].replicas.values():
        assert isinstance(replica, wanted)
        if not spec.params.batch_replay:
            assert not isinstance(replica, BatchReplicaCore)


@pytest.mark.parametrize("delta_gossip", [False, True], ids=["full", "delta"])
@pytest.mark.parametrize("seed", COMPACTION_SEEDS)
def test_random_scenarios_with_extended_fault_mix(seed, delta_gossip):
    """Advert/pull scenarios under the *extended* adversary mix (asymmetric
    partitions, stragglers, duplicated messages, corrupted checkpoint
    transfers on top of the classic crash/outage/spike kinds): every oracle
    must hold, and any corruption that fired must have been caught by the
    transfer digest check (a corrupted body is never adopted — the replica
    re-pulls until a clean copy lands, so convergence still holds)."""
    mode = "delta" if delta_gossip else "full"
    spec = random_sim_spec(
        f"fuzz-adversarial-{mode}-{seed:03d}",
        seed,
        delta_gossip,
        params_tweak=_advert_pull,
        extended=True,
    )
    run, _results = run_checked(spec)
    cluster = run.clusters[UNSHARDED]
    corrupted = cluster.network.counters.corrupted
    rejections = sum(replica.stats.transfer_rejections for replica in cluster.replicas.values())
    # Every tampered chunk that completed an assembly was rejected; the
    # converse need not hold (a tampered chunk superseded mid-transfer never
    # completes), so rejections is bounded by the tamper count.
    assert rejections <= corrupted


@pytest.mark.parametrize("delta_gossip", [False, True], ids=["full", "delta"])
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_random_sharded_scenarios_preserve_guarantees(seed, delta_gossip):
    """The same oracles, per shard, on the sharded service layer with faults
    injected into individual shards."""
    mode = "delta" if delta_gossip else "full"
    spec = random_sharded_spec(f"fuzz-sharded-{mode}-{seed:03d}", seed, delta_gossip)
    run_checked(spec)


#: The reshard batch re-runs half the corpus (at least 8 seeds); nightly
#: widens it through ``FUZZ_SEEDS`` like every other batch.
RESHARD_SEEDS = FUZZ_SEEDS[: max(8, len(FUZZ_SEEDS) // 2)]


@pytest.mark.parametrize("seed", RESHARD_SEEDS)
def test_random_reshard_under_faults_preserves_guarantees(seed):
    """Live ring changes under the fault adversaries: a random sharded
    cluster grows or drains mid-load while (randomly) a transfer-corruption
    window covers the migration and a volatile crash takes out a replica
    mid-handoff.  Afterwards every per-shard oracle (Section 7/8 invariants,
    Theorem 5.8 trace check) plus the reshard handoff audit must hold, and
    every submitted operation must have been answered.

    This batch drives :class:`~repro.sim.sharded.ShardedCluster` directly
    rather than going through :class:`ScenarioSpec` — a reshard is an
    *online control action*, not a deployment parameter, so it has no spec
    form to freeze into the conformance corpus."""
    rng = random.Random(7000 + seed)
    num_shards = rng.choice([2, 3])
    cluster = ShardedCluster(
        CounterType(),
        num_shards=num_shards,
        replicas_per_shard=3,
        client_ids=[f"c{i}" for i in range(rng.randint(1, 2))],
        params=SimulationParams(
            batch_gossip=True,
            retransmit_interval=4.0,
            delta_gossip=rng.random() < 0.5,
            full_state_interval=rng.choice([4, 8]),
        ),
        seed=seed * 5 + 1,
    )
    keys = [f"k{i}" for i in range(12)]

    def traffic(count):
        ops = []
        for _ in range(count):
            client = rng.choice(list(cluster.client_ids))
            key = rng.choice(keys)
            prev = cluster.last_operation_on(key)
            operator = (
                CounterType.increment() if rng.random() < 0.7 else CounterType.read()
            )
            ops.append(
                cluster.submit(client, key, operator, prev=(prev,) if prev else ())
            )
            cluster.run(rng.uniform(0.2, 0.6))
        return ops

    everything = traffic(rng.randint(8, 16))

    corrupting = rng.random() < 0.6
    if corrupting:
        for shard in cluster.shards.values():
            shard.network.start_corruption(
                until=cluster.now + rng.uniform(10.0, 25.0),
                probability=rng.uniform(0.5, 1.0),
            )

    grow = num_shards == 2 or rng.random() < 0.6
    if grow:
        handle = cluster.add_shard(f"s{num_shards}")
    else:
        handle = cluster.drain_shard(rng.choice(list(cluster.shard_ids)))
    everything += traffic(rng.randint(4, 10))

    if rng.random() < 0.5:
        # A volatile mid-handoff crash (source or destination leg), always
        # recovered — the migration must stall, not corrupt, while it lasts.
        # A few quiet gossip rounds first: a replica that answered an
        # operation and volatile-crashes before gossiping it loses that
        # operation for good (the fault model's documented lossiness, which
        # the per-key prev chains here would turn into a permanent stall).
        cluster.run(3 * cluster.params.gossip_period)
        sid = rng.choice(list(cluster.shards))
        cluster.shards[sid].crash_replica("r0", volatile_memory=True)
        cluster.run(rng.uniform(5.0, 20.0))
        cluster.shards[sid].recover_replica("r0")

    cluster.run_until_resharded(handle, max_time=20_000.0)
    assert handle.done, f"reshard never completed (seed {seed})"
    everything += traffic(rng.randint(2, 6))

    cluster.run_until_idle(max_time=20_000.0)
    assert cluster.outstanding_operations() == 0
    answered = set(cluster.responded) | set(cluster.failed)
    assert {op.id for op in everything} <= answered
    cluster.check_invariants()
    cluster.check_traces()
