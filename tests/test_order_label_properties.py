"""Property-based tests (hypothesis) for :mod:`repro.core.orders` and
:mod:`repro.algorithm.labels`: antisymmetry of the derived partial orders,
total-order laws of the label space, and stable-prefix monotonicity of
replicas under random gossip-merge interleavings."""

import random

from hypothesis import given, settings, strategies as st

from repro.algorithm.labels import (
    Label,
    LabelGenerator,
    label_min,
    label_sort_key,
)
from repro.algorithm.messages import RequestMessage
from repro.algorithm.replica import ReplicaCore
from repro.common import INFINITY, OperationIdGenerator
from repro.core.operations import make_operation
from repro.core.orders import (
    PartialOrder,
    is_consistent,
    is_strict_partial_order,
    transitive_closure,
)
from repro.datatypes import CounterType

# ---------------------------------------------------------------------------
# Label total-order laws
# ---------------------------------------------------------------------------

labels = st.builds(
    Label,
    rank=st.integers(min_value=0, max_value=50),
    replica=st.sampled_from(["r0", "r1", "r2", "r9"]),
)
labels_or_infinity = st.one_of(labels, st.just(INFINITY))


@settings(max_examples=80, deadline=None)
@given(labels_or_infinity, labels_or_infinity)
def test_labels_antisymmetric_and_total(a, b):
    # Trichotomy: exactly one of <, ==, > holds.
    relations = [a < b, a == b, b < a]
    assert relations.count(True) == 1
    # Antisymmetry via the shared sort key.
    assert (label_sort_key(a) < label_sort_key(b)) == (a < b)
    assert (label_sort_key(a) == label_sort_key(b)) == (a == b)


@settings(max_examples=60, deadline=None)
@given(labels_or_infinity, labels_or_infinity, labels_or_infinity)
def test_label_order_transitive(a, b, c):
    if a < b and b < c:
        assert a < c
    if label_sort_key(a) <= label_sort_key(b) <= label_sort_key(c):
        assert label_sort_key(a) <= label_sort_key(c)


@settings(max_examples=60, deadline=None)
@given(labels_or_infinity, labels_or_infinity, labels_or_infinity)
def test_label_min_is_a_semilattice(a, b, c):
    # Commutative, associative, idempotent — the merge in receive_gossip
    # relies on all three so that message reordering cannot matter.
    assert label_min(a, b) == label_min(b, a)
    assert label_min(a, label_min(b, c)) == label_min(label_min(a, b), c)
    assert label_min(a, a) == a
    # INFINITY is the identity, and the result is one of the arguments.
    assert label_min(a, INFINITY) == a
    assert label_min(a, b) in (a, b)
    assert label_sort_key(label_min(a, b)) == min(label_sort_key(a), label_sort_key(b))


@settings(max_examples=40, deadline=None)
@given(
    st.lists(labels, max_size=6),
    st.sampled_from(["r0", "r7"]),
    st.integers(min_value=0, max_value=5),
)
def test_label_generator_dominates_inputs_and_is_monotone(seen, replica, start):
    generator = LabelGenerator(replica, start_rank=start)
    first = generator.fresh(greater_than=seen)
    second = generator.fresh()
    assert first.replica == replica
    assert all(label < first for label in seen)
    assert first < second  # strictly increasing forever


# ---------------------------------------------------------------------------
# Partial-order algebra
# ---------------------------------------------------------------------------

small_pairs = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 6)).filter(lambda p: p[0] != p[1]),
    max_size=10,
)


def acyclic(pairs):
    return all(a != b for a, b in transitive_closure(pairs))


@settings(max_examples=60, deadline=None)
@given(small_pairs)
def test_partial_order_antisymmetry(pairs):
    if not acyclic(pairs):
        return
    order = PartialOrder(pairs)
    for a, b in order.pairs:
        assert not order.precedes(b, a)
        assert order.comparable(a, b)
    assert is_strict_partial_order(set(order.pairs))


@settings(max_examples=60, deadline=None)
@given(small_pairs, small_pairs)
def test_consistency_is_symmetric_and_extension_safe(first, second):
    assert is_consistent(first, second) == is_consistent(second, first)
    if not acyclic(first):
        return
    order = PartialOrder(first)
    if order.is_consistent_with(second):
        extended = order.extended_with(second)
        # Extension preserves every original constraint (refinement).
        assert order <= extended
    else:
        try:
            order.extended_with(second)
        except ValueError:
            pass
        else:
            raise AssertionError("inconsistent extension was accepted")


@settings(max_examples=40, deadline=None)
@given(small_pairs, st.sets(st.integers(0, 6), min_size=1, max_size=5))
def test_restriction_preserves_order_and_antisymmetry(pairs, subset):
    if not acyclic(pairs):
        return
    order = PartialOrder(pairs)
    restricted = order.restricted_to(subset)
    for a, b in restricted.pairs:
        assert a in subset and b in subset
        assert order.precedes(a, b)
        assert not restricted.precedes(b, a)


# ---------------------------------------------------------------------------
# Stable-prefix monotonicity under random merge interleavings
# ---------------------------------------------------------------------------


def label_ordered_stable(replica):
    """The replica's stable operations, in its label order."""
    return sorted(
        replica.stable_here(), key=lambda op: label_sort_key(replica.label_of(op.id))
    )


def is_order_preserving_superset(old, new):
    """Every element of *old* appears in *new*, in the same relative order."""
    positions = {op.id: index for index, op in enumerate(new)}
    indices = [positions.get(op.id) for op in old]
    if any(index is None for index in indices):
        return False
    return indices == sorted(indices)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=6, max_value=24))
def test_stable_prefix_grows_monotonically_under_random_merges(seed, steps):
    """Drive two replicas through a random interleaving of do_its and gossip
    merges; at every point each replica's stable set may only grow, and the
    label order of already-stable operations never changes (the paper's
    stable-prefix property behind Invariants 7.19/7.21 and the memoizing
    optimization)."""
    rng = random.Random(seed)
    data_type = CounterType()
    replica_ids = ("rA", "rB")
    replicas = {
        rid: ReplicaCore(rid, replica_ids, data_type) for rid in replica_ids
    }
    id_generator = OperationIdGenerator("client")
    previous = {rid: [] for rid in replica_ids}

    for _ in range(steps):
        action = rng.random()
        if action < 0.4:
            target = replicas[rng.choice(replica_ids)]
            operation = make_operation(
                rng.choice([CounterType.increment(), CounterType.read()]),
                id_generator.fresh(),
            )
            target.receive_request(RequestMessage(operation))
            target.do_all_ready()
        else:
            source = rng.choice(replica_ids)
            destination = next(r for r in replica_ids if r != source)
            message = replicas[source].make_gossip(destination)
            replicas[destination].receive_gossip(message)
            replicas[destination].do_all_ready()

        for rid, replica in replicas.items():
            ordered = label_ordered_stable(replica)
            assert is_order_preserving_superset(previous[rid], ordered), (
                f"stable prefix of {rid} shrank or reordered"
            )
            previous[rid] = ordered

    # Final exchange: both replicas converge on one stable order.
    for _ in range(2):
        for source in replica_ids:
            destination = next(r for r in replica_ids if r != source)
            replicas[destination].receive_gossip(replicas[source].make_gossip(destination))
            replicas[destination].do_all_ready()
    orders = [
        [op.id for op in label_ordered_stable(replica)] for replica in replicas.values()
    ]
    assert orders[0] == orders[1]
