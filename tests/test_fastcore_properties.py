"""Property-based tests (hypothesis) for the fast core's interned tables.

:class:`~repro.algorithm.fastcore.FastReplicaCore` replaces tuple sort keys,
set probes and per-element scans with packed-int keys, dense id slots and
big-int bitsets.  These properties pin the three load-bearing claims:

* **Order isomorphism** — the packed key ``rank * stride + replica_index``
  sorts any label population exactly as
  :func:`~repro.algorithm.labels.label_sort_key` does, with missing labels
  (``INFINITY``) strictly after every finite key.
* **Merge stability** — after any random interleaving of requests, do-its
  and gossip merges, every bitset/index/backbone mirror agrees with the
  authoritative sets it shadows.
* **Compaction-fold remapping** — folding a stable prefix preserves the
  membership and relative order of every surviving tracked operation, and
  the retired ids vanish from every mirror (tracked implies not covered).

The interval-difference enumerator behind the advert coverage fast path is
also pinned against its set-theoretic definition.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.algorithm.checkpoint import CompactionPolicy, OpIdSummary
from repro.algorithm.fastcore import FastReplicaCore, _iter_interval_diff
from repro.algorithm.labels import Label, label_sort_key
from repro.algorithm.system import AlgorithmSystem
from repro.common import INFINITY, OperationId, OperationIdGenerator
from repro.core.operations import make_operation
from repro.datatypes import CounterType

REPLICAS = ("r0", "r1", "r2")

labels = st.builds(
    Label,
    rank=st.integers(min_value=0, max_value=60),
    replica=st.sampled_from(REPLICAS),
)
labels_or_none = st.one_of(labels, st.none(), st.just(INFINITY))


def fresh_core():
    return FastReplicaCore("r0", REPLICAS, CounterType())


# ---------------------------------------------------------------------------
# Packed-key order isomorphism
# ---------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(st.lists(labels_or_none, min_size=0, max_size=40))
def test_packed_keys_sort_like_label_sort_keys(population):
    core = fresh_core()
    packed = sorted(population, key=core._label_key)
    reference = sorted(
        population, key=lambda lb: label_sort_key(INFINITY if lb is None else lb)
    )
    # Both orders agree up to ties; compare via the reference key, which is
    # total on (rank, replica) and groups None with INFINITY.
    norm = lambda lb: label_sort_key(INFINITY if lb is None else lb)
    assert [norm(lb) for lb in packed] == [norm(lb) for lb in reference]


@settings(max_examples=100, deadline=None)
@given(labels, labels)
def test_packed_keys_isomorphic_pairwise(a, b):
    core = fresh_core()
    ka, kb = core._label_key(a), core._label_key(b)
    assert (ka < kb) == (label_sort_key(a) < label_sort_key(b))
    assert (ka == kb) == (label_sort_key(a) == label_sort_key(b))
    # Finite labels are distinct iff their packed keys are (uniqueness is
    # what lets _apply_order_changes locate elements with bisect_left).
    assert (a == b) == (ka == kb)
    # INFINITY / missing labels land strictly after every finite key.
    assert ka < core._label_key(INFINITY)
    assert ka < core._label_key(None)


# ---------------------------------------------------------------------------
# Interval-difference enumerator
# ---------------------------------------------------------------------------

seqno_sets = st.sets(st.integers(min_value=0, max_value=120), max_size=40)


def intervals_of(seqnos):
    summary = OpIdSummary()
    return summary.with_ids(
        OperationId(client="c", seqno=s) for s in seqnos
    ).ranges.get("c", ())


@settings(max_examples=100, deadline=None)
@given(seqno_sets, seqno_sets)
def test_interval_diff_matches_set_difference(theirs, mine):
    diff = list(_iter_interval_diff(intervals_of(theirs), intervals_of(mine)))
    assert diff == sorted(theirs - mine)


# ---------------------------------------------------------------------------
# Merge stability and compaction-fold remapping
# ---------------------------------------------------------------------------


def mirror_audit(core):
    """Every interned mirror agrees with the authoritative set it shadows."""
    slots = core._slots
    for i in core.replica_ids:
        for sets, bit_maps in ((core.done, core._done_bits), (core.stable, core._stable_bits)):
            bits = bit_maps[i]
            mirrored = {op_id for op_id, slot in slots.items() if (bits >> slot) & 1}
            assert mirrored == {x.id for x in sets[i]}
    done_here = core.done[core.replica_id]
    assert core._done_index == {x.id: x for x in done_here}
    assert core._undone == core.rcvd - done_here
    order = core.done_order()
    assert core._order_keys == sorted(core._order_keys)
    assert [core._label_key(core.labels.get(x.id)) for x in order] == core._order_keys


def drive_random_system(seed, steps, compaction=False):
    """A three-replica fast-core system driven by seeded random actions."""
    system = AlgorithmSystem(
        CounterType(),
        list(REPLICAS),
        ["alice", "bob"],
        replica_factory=FastReplicaCore,
        compaction=CompactionPolicy(min_batch=1) if compaction else None,
    )
    rng = random.Random(seed)
    generators = {c: OperationIdGenerator(c) for c in ("alice", "bob")}
    for index in range(10):
        client = "alice" if index % 2 else "bob"
        system.request(
            make_operation(CounterType.increment(), generators[client].fresh())
        )
    system.run_random(rng, steps=steps)
    return system, rng


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=20, max_value=160))
def test_mirrors_survive_random_merge_interleavings(seed, steps):
    system, _rng = drive_random_system(seed, steps)
    for core in system.replicas.values():
        mirror_audit(core)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_compaction_fold_preserves_survivor_order_and_retires_slots(seed):
    system, rng = drive_random_system(seed, steps=120, compaction=True)
    system.drain(rng)
    for core in system.replicas.values():
        before = core.done_order()
        folded = core.maybe_compact(force=True)
        after = core.done_order()
        # The fold removed exactly a prefix; survivors keep their order.
        assert after == before[folded:]
        for x in before[:folded]:
            assert x.id not in core._slots
            assert x.id not in core._done_index
            assert core.is_compacted(x.id)
        mirror_audit(core)
