"""Tests for the I/O automaton framework (Section 3)."""


import pytest

from repro.automata import (
    Action,
    Composition,
    ForwardSimulationChecker,
    IOAutomaton,
    RandomScheduler,
    Signature,
    hide,
)
from repro.automata.automaton import check_compatible
from repro.common import SimulationRelationError, SpecificationError


class Producer(IOAutomaton):
    """Emits ``tick`` outputs up to a configured limit."""

    def __init__(self, limit=3):
        self.name = "producer"
        self.signature = Signature(outputs=frozenset({"tick"}))
        self.limit = limit
        self.sent = 0

    def precondition(self, action):
        return self.sent < self.limit

    def apply(self, action):
        if action.kind == "tick":
            self.sent += 1

    def candidate_actions(self, rng):
        return [Action("tick", count=self.sent)] if self.sent < self.limit else []


class Consumer(IOAutomaton):
    """Counts ``tick`` inputs."""

    def __init__(self):
        self.name = "consumer"
        self.signature = Signature(inputs=frozenset({"tick"}))
        self.received = 0

    def apply(self, action):
        if action.kind == "tick":
            self.received += 1


class TestSignature:
    def test_disjointness_enforced(self):
        with pytest.raises(ValueError):
            Signature(inputs=frozenset({"a"}), outputs=frozenset({"a"}))

    def test_classify(self):
        sig = Signature(inputs=frozenset({"i"}), outputs=frozenset({"o"}),
                        internals=frozenset({"n"}))
        assert sig.classify("i") == "input"
        assert sig.classify("o") == "output"
        assert sig.classify("n") == "internal"
        with pytest.raises(KeyError):
            sig.classify("missing")

    def test_external_and_all(self):
        sig = Signature(inputs=frozenset({"i"}), outputs=frozenset({"o"}),
                        internals=frozenset({"n"}))
        assert sig.external == {"i", "o"}
        assert sig.all_kinds == {"i", "o", "n"}


class TestAction:
    def test_equality_and_access(self):
        a = Action("tick", count=1)
        assert a == Action("tick", count=1)
        assert a != Action("tick", count=2)
        assert a["count"] == 1
        assert a.get("missing", 5) == 5


class TestAutomatonStep:
    def test_step_checks_precondition(self):
        producer = Producer(limit=0)
        with pytest.raises(SpecificationError):
            producer.step(Action("tick"))

    def test_step_rejects_unknown_kind(self):
        with pytest.raises(SpecificationError):
            Producer().step(Action("unknown"))

    def test_inputs_always_enabled(self):
        consumer = Consumer()
        consumer.step(Action("tick"))
        assert consumer.received == 1


class TestComposition:
    def test_shared_action_executes_in_both(self):
        producer, consumer = Producer(), Consumer()
        system = Composition([producer, consumer], name="pc")
        system.step(Action("tick", count=0))
        assert producer.sent == 1
        assert consumer.received == 1

    def test_signature_classification(self):
        producer, consumer = Producer(), Consumer()
        system = Composition([producer, consumer])
        assert "tick" in system.signature.outputs
        assert "tick" not in system.signature.inputs

    def test_incompatible_outputs_rejected(self):
        with pytest.raises(ValueError):
            Composition([Producer(), Producer()])

    def test_check_compatible_detects_shared_internal(self):
        class Internal(IOAutomaton):
            def __init__(self, name):
                self.name = name
                self.signature = Signature(internals=frozenset({"step"}))

            def apply(self, action):
                pass

        with pytest.raises(ValueError):
            check_compatible([Internal("a"), Internal("b")])

    def test_hiding_moves_outputs_to_internal(self):
        system = Composition([Producer(), Consumer()])
        hide(system, {"tick"})
        assert "tick" in system.signature.internals
        assert "tick" not in system.signature.outputs

    def test_hiding_unknown_kind_rejected(self):
        system = Composition([Producer(), Consumer()])
        with pytest.raises(ValueError):
            hide(system, {"nope"})

    def test_component_named(self):
        producer = Producer()
        system = Composition([producer, Consumer()])
        assert system.component_named("producer") is producer
        with pytest.raises(KeyError):
            system.component_named("missing")


class TestRandomScheduler:
    def test_runs_until_quiescent(self):
        producer, consumer = Producer(limit=5), Consumer()
        system = Composition([producer, consumer])
        scheduler = RandomScheduler(system, seed=1)
        execution = scheduler.run(steps=50)
        assert producer.sent == 5
        assert consumer.received == 5
        assert len(execution) == 5

    def test_trace_filters_external_kinds(self):
        producer, consumer = Producer(limit=2), Consumer()
        system = Composition([producer, consumer])
        scheduler = RandomScheduler(system, seed=1)
        scheduler.run(steps=10)
        trace = scheduler.execution.trace({"tick"})
        assert len(trace) == 2

    def test_invariant_hook_called(self):
        calls = []
        producer, consumer = Producer(limit=3), Consumer()
        system = Composition([producer, consumer])
        scheduler = RandomScheduler(system, seed=1, invariant=lambda a: calls.append(1))
        scheduler.run(steps=10)
        assert len(calls) == 3

    def test_inject(self):
        consumer = Consumer()
        scheduler = RandomScheduler(consumer, seed=0)
        scheduler.inject(Action("tick"))
        assert consumer.received == 1


class TestForwardSimulationChecker:
    def test_identity_simulation(self):
        concrete = Producer(limit=2)
        abstract = Producer(limit=2)

        def correspondence(action, pre, post, abs_automaton):
            return [action]

        def relation(concrete_state, abs_automaton):
            return concrete_state["sent"] == abs_automaton.sent

        checker = ForwardSimulationChecker(abstract, correspondence, relation,
                                           external_kinds={"tick"})
        checker.check_start(concrete.snapshot())
        pre = concrete.snapshot()
        action = Action("tick", count=0)
        concrete.step(action)
        checker.check_step(action, pre, concrete.snapshot())
        assert checker.report().steps_checked == 1

    def test_mismatched_external_image_rejected(self):
        abstract = Consumer()

        def correspondence(action, pre, post, abs_automaton):
            return []  # drops the external action

        checker = ForwardSimulationChecker(
            abstract, correspondence, lambda s, a: True, external_kinds={"tick"}
        )
        with pytest.raises(SimulationRelationError):
            checker.check_step(Action("tick"), {}, {})

    def test_disabled_abstract_action_rejected(self):
        abstract = Producer(limit=0)

        def correspondence(action, pre, post, abs_automaton):
            return [action]

        checker = ForwardSimulationChecker(
            abstract, correspondence, lambda s, a: True, external_kinds={"tick"}
        )
        with pytest.raises(SimulationRelationError):
            checker.check_step(Action("tick"), {}, {})

    def test_relation_violation_rejected(self):
        abstract = Consumer()

        def correspondence(action, pre, post, abs_automaton):
            return [action]

        checker = ForwardSimulationChecker(
            abstract, correspondence, lambda s, a: False, external_kinds={"tick"}
        )
        with pytest.raises(SimulationRelationError):
            checker.check_step(Action("tick"), {}, {})
