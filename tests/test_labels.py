"""Tests for the label space and per-replica label generation (§6.3)."""

from repro.algorithm.labels import Label, LabelGenerator, label_min, label_sort_key
from repro.common import INFINITY


class TestLabelOrder:
    def test_rank_dominates(self):
        assert Label(1, "r9") < Label(2, "r0")

    def test_replica_breaks_ties(self):
        assert Label(1, "r0") < Label(1, "r1")

    def test_total_order(self):
        labels = [Label(2, "r0"), Label(1, "r1"), Label(1, "r0")]
        assert sorted(labels) == [Label(1, "r0"), Label(1, "r1"), Label(2, "r0")]

    def test_every_label_below_infinity(self):
        assert Label(10**9, "zzz") < INFINITY
        assert INFINITY > Label(0, "r0")
        assert not (INFINITY < Label(0, "r0"))

    def test_label_min(self):
        a, b = Label(1, "r0"), Label(2, "r0")
        assert label_min(a, b) == a
        assert label_min(INFINITY, a) == a
        assert label_min(a, INFINITY) == a
        assert label_min(INFINITY, INFINITY) is INFINITY

    def test_sort_key_places_infinity_last(self):
        values = [INFINITY, Label(3, "r1"), Label(1, "r0")]
        assert sorted(values, key=label_sort_key)[-1] is INFINITY


class TestLabelGenerator:
    def test_labels_come_from_own_set(self):
        gen = LabelGenerator("r1")
        assert all(gen.fresh().replica == "r1" for _ in range(5))

    def test_labels_strictly_increase(self):
        gen = LabelGenerator("r1")
        labels = [gen.fresh() for _ in range(10)]
        assert all(earlier < later for earlier, later in zip(labels, labels[1:]))

    def test_fresh_exceeds_constraints(self):
        gen = LabelGenerator("r1")
        label = gen.fresh(greater_than=[Label(41, "r0"), Label(7, "r2")])
        assert label > Label(41, "r0")
        assert label > Label(7, "r2")

    def test_fresh_ignores_infinity(self):
        gen = LabelGenerator("r1")
        label = gen.fresh(greater_than=[INFINITY])
        assert isinstance(label, Label)

    def test_observed_raises_floor(self):
        gen = LabelGenerator("r1")
        gen.observed(Label(100, "r0"))
        assert gen.fresh() > Label(100, "r0")

    def test_two_replicas_never_collide(self):
        a, b = LabelGenerator("r1"), LabelGenerator("r2")
        labels = {a.fresh() for _ in range(20)} | {b.fresh() for _ in range(20)}
        assert len(labels) == 40
