"""Tests for :class:`repro.sim.sharded.ShardedCluster` and the keyed
workload generators (the simulated-time half of the service layer)."""

import pytest

from repro.common import ConfigurationError, MetricsError, OperationId
from repro.datatypes import CounterType
from repro.sim.cluster import SimulationParams
from repro.sim.metrics import PerShardMetrics
from repro.sim.sharded import ShardedCluster
from repro.sim.workload import (
    KeyedClientWorkload,
    KeyedWorkloadSpec,
    run_keyed_workload,
    zipfian_cdf,
)


def make_cluster(num_shards=2, **kwargs):
    defaults = dict(replicas_per_shard=3, client_ids=["c0", "c1"], seed=42)
    defaults.update(kwargs)
    return ShardedCluster(CounterType(), num_shards=num_shards, **defaults)


class TestShardedClusterBasics:
    def test_execute_round_trips_values_per_key(self):
        cluster = make_cluster()
        op_a, value_a = cluster.execute("c0", "alpha", CounterType.increment())
        _, value_b = cluster.execute("c1", "beta", CounterType.add(10))
        _, again = cluster.execute("c0", "alpha", CounterType.increment(),
                                   prev=[op_a.id], strict=True)
        assert (value_a, value_b, again) == (1, 10, 2)

    def test_single_shard_cluster_is_valid(self):
        cluster = make_cluster(num_shards=1)
        _, value = cluster.execute("c0", "only", CounterType.increment())
        assert value == 1
        assert set(cluster.shards) == {"s0"}

    def test_shared_event_loop_orders_all_shards(self):
        cluster = make_cluster(num_shards=3)
        assert len({id(shard.simulator) for shard in cluster.shards.values()}) == 1
        assert all(shard.simulator is cluster.simulator for shard in cluster.shards.values())

    def test_batched_gossip_is_default(self):
        assert make_cluster().params.batch_gossip is True
        explicit = make_cluster(params=SimulationParams(batch_gossip=False))
        assert explicit.params.batch_gossip is False

    def test_operation_ids_unique_across_shards(self):
        cluster = make_cluster(num_shards=4)
        ids = [
            cluster.submit("c0", f"k{i}", CounterType.increment()).id for i in range(24)
        ]
        assert len(set(ids)) == 24
        cluster.run_until_idle()
        assert cluster.outstanding_operations() == 0
        assert set(cluster.responded) == set(ids)

    def test_cross_shard_prev_rejected(self):
        cluster = make_cluster(num_shards=4)
        by_shard = {}
        for i in range(64):
            by_shard.setdefault(cluster.shard_of(f"k{i}"), f"k{i}")
        key_a, key_b = list(by_shard.values())[:2]
        op = cluster.submit("c0", key_a, CounterType.increment())
        with pytest.raises(ConfigurationError):
            cluster.submit("c0", key_b, CounterType.increment(), prev=[op.id])
        with pytest.raises(ConfigurationError):
            cluster.submit("c0", key_a, CounterType.increment(),
                           prev=[OperationId("c0", 999)])
        with pytest.raises(ConfigurationError):
            cluster.submit("nobody", key_a, CounterType.increment())

    def test_past_submission_rejected_without_phantom_bookkeeping(self):
        # Regression: a submit at a time already in the past must fail BEFORE
        # any bookkeeping, or the operation counts as outstanding forever and
        # later prev chains dangle from an operation no replica will ever do.
        cluster = make_cluster()
        cluster.run(10.0)
        with pytest.raises(ConfigurationError, match="past"):
            cluster.submit("c0", "late", CounterType.increment(), at=5.0)
        assert cluster.outstanding_operations() == 0
        assert not cluster.requested
        assert cluster.last_operation_on("late") is None
        # The unsharded cluster behaves the same way.
        from repro.sim.cluster import SimulatedCluster

        flat = SimulatedCluster(CounterType(), 2, ["c0"], seed=0)
        flat.run(10.0)
        with pytest.raises(ConfigurationError, match="past"):
            flat.submit("c0", CounterType.increment(), at=5.0)
        assert flat.outstanding_operations() == 0
        assert not flat.requested

    def test_routing_metadata(self):
        cluster = make_cluster()
        op = cluster.submit("c0", "lookup-me", CounterType.increment())
        assert cluster.key_of_operation(op.id) == "lookup-me"
        assert cluster.shard_of_operation(op.id) == cluster.shard_of("lookup-me")
        assert cluster.last_operation_on("lookup-me") == op.id
        assert cluster.last_operation_on("never-seen") is None


class TestKeyedWorkloads:
    def test_uniform_workload_completes_and_checks_out(self):
        cluster = make_cluster(num_shards=3, client_ids=["c0", "c1", "c2"])
        spec = KeyedWorkloadSpec(operations_per_client=12, mean_interarrival=0.8,
                                 strict_fraction=0.25, num_keys=12,
                                 prev_policy="last_on_key")
        result = run_keyed_workload(cluster, spec, seed=9)
        assert cluster.outstanding_operations() == 0
        assert result.metrics.completed == result.submitted == 36
        assert sum(result.metrics.completed_by_shard().values()) == 36
        cluster.check_traces()
        # At quiescence plus a few gossip rounds the algorithm-view
        # invariants hold on every shard.
        for _ in range(60):
            if cluster.fully_converged():
                break
            cluster.run(cluster.params.gossip_period + cluster.params.dg)
        assert cluster.fully_converged()
        cluster.check_invariants()

    def test_per_key_prev_chains_serialize_each_key(self):
        cluster = make_cluster(num_shards=3, client_ids=["c0"])
        spec = KeyedWorkloadSpec(operations_per_client=15, mean_interarrival=0.5,
                                 num_keys=3, prev_policy="last_on_key")
        result = run_keyed_workload(cluster, spec, seed=4)
        assert cluster.outstanding_operations() == 0
        # Dependencies never cross keys (hence never cross shards), and each
        # chain is answered in submission order per key.
        for op in cluster.requested.values():
            for dep in op.prev:
                assert cluster.key_of_operation(dep) == cluster.key_of_operation(op.id)

    def test_zipfian_skews_load_relative_to_uniform(self):
        def imbalance(distribution):
            cluster = make_cluster(num_shards=4, client_ids=["c0", "c1"], seed=7)
            spec = KeyedWorkloadSpec(operations_per_client=40, mean_interarrival=0.3,
                                     num_keys=32, key_distribution=distribution,
                                     zipf_exponent=1.6)
            result = run_keyed_workload(cluster, spec, seed=2)
            assert cluster.outstanding_operations() == 0
            return result.metrics.imbalance()

        assert imbalance("zipfian") > imbalance("uniform")

    def test_zipfian_cdf_shape(self):
        cdf = zipfian_cdf(8, 1.0)
        assert len(cdf) == 8
        assert cdf[-1] == pytest.approx(1.0)
        # Probability mass decreases with rank.
        masses = [cdf[0]] + [b - a for a, b in zip(cdf, cdf[1:])]
        assert masses == sorted(masses, reverse=True)

    def test_rank_shuffle_shared_across_clients(self):
        spec = KeyedWorkloadSpec(num_keys=16, key_distribution="zipfian")
        one = KeyedClientWorkload("c0", spec, seed=1)
        two = KeyedClientWorkload("c1", spec, seed=999)
        assert one._keys == two._keys  # same rank-to-key assignment

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            KeyedWorkloadSpec(num_keys=0)
        with pytest.raises(ValueError):
            KeyedWorkloadSpec(key_distribution="pareto")
        with pytest.raises(ValueError):
            KeyedWorkloadSpec(zipf_exponent=0.0)
        with pytest.raises(ValueError):
            KeyedWorkloadSpec(prev_policy="last_own")  # cross-key: unshardable
        with pytest.raises(ValueError):
            KeyedWorkloadSpec(strict_fraction=1.5)
        with pytest.raises(ValueError):
            KeyedWorkloadSpec(mean_interarrival=0.0)


class TestPerShardMetrics:
    def test_aggregates_and_breakdowns(self):
        cluster = make_cluster(num_shards=2, client_ids=["c0"])
        spec = KeyedWorkloadSpec(operations_per_client=10, mean_interarrival=0.5,
                                 num_keys=8)
        result = run_keyed_workload(cluster, spec, seed=1)
        metrics = result.metrics
        assert isinstance(metrics, PerShardMetrics)
        assert metrics.completed == 10
        assert metrics.outstanding == 0
        assert set(metrics.completed_by_shard()) == {"s0", "s1"}
        total = metrics.latency_summary()
        assert total.count == 10
        per_shard_counts = [
            metrics.latency_summary(shard=sid).count
            for sid in metrics.collectors
            if metrics.completed_by_shard()[sid]
        ]
        assert sum(per_shard_counts) == 10
        assert metrics.throughput(result.duration) == pytest.approx(result.throughput)
        assert metrics.imbalance() >= 1.0
        # The shard/category axes are keyword-only, and an unknown shard is a
        # clear MetricsError, not a bare KeyError — guards against porting
        # latency_summary("strict") from the unkeyed API.
        with pytest.raises(TypeError):
            metrics.latency_summary("strict")
        with pytest.raises(MetricsError, match="unknown shard"):
            metrics.latency_summary(shard="strict")
        with pytest.raises(TypeError):
            result.latency_summary("strict")

    def test_empty_metrics_edge_cases(self):
        from repro.sim.metrics import MetricsCollector

        metrics = PerShardMetrics({"s0": MetricsCollector()})
        assert metrics.completed == 0
        assert metrics.imbalance() == 0.0
        assert metrics.throughput(10.0) == 0.0
        assert metrics.throughput(0.0) == 0.0
        with pytest.raises(ValueError):
            PerShardMetrics({})


class TestEmptyWorkloadResultErrors:
    """Regression: latency on an empty response set raises a clear error."""

    def test_workload_result_raises_metrics_error(self):
        from repro.sim.cluster import SimulatedCluster
        from repro.sim.metrics import MetricsCollector
        from repro.sim.workload import WorkloadResult

        result = WorkloadResult(
            cluster=SimulatedCluster(CounterType(), 2, ["c0"]),
            metrics=MetricsCollector(),
            duration=10.0,
            submitted=5,
        )
        with pytest.raises(MetricsError, match="no operations completed"):
            _ = result.mean_latency
        with pytest.raises(MetricsError, match="category 'strict'"):
            result.latency_summary("strict")
        assert result.throughput == 0.0  # throughput of nothing is just zero

    def test_keyed_workload_result_raises_metrics_error(self):
        from repro.sim.metrics import MetricsCollector
        from repro.sim.workload import KeyedWorkloadResult

        result = KeyedWorkloadResult(
            cluster=make_cluster(),
            metrics=PerShardMetrics({"s0": MetricsCollector()}),
            duration=10.0,
            submitted=3,
        )
        with pytest.raises(MetricsError, match="no operations completed"):
            _ = result.mean_latency
        with pytest.raises(MetricsError, match="shard 's0'"):
            result.latency_summary(shard="s0")

    def test_nonempty_category_still_raises_only_when_empty(self):
        cluster = make_cluster(client_ids=["c0"])
        spec = KeyedWorkloadSpec(operations_per_client=6, mean_interarrival=0.5,
                                 num_keys=4, strict_fraction=0.0)
        result = run_keyed_workload(cluster, spec, seed=3)
        assert result.latency_summary(category="nonstrict_no_prev").count == 6
        with pytest.raises(MetricsError):
            result.latency_summary(category="strict")
