"""Lockstep-twin tests for the unified :class:`ReplicaConfig`.

Every deployment entry point (:class:`AlgorithmSystem`,
:class:`SimulationParams`/:class:`SimulatedCluster`,
:class:`ShardedFrontend`, :class:`ShardedCluster`, :class:`NetCluster`)
accepts ``config=ReplicaConfig(...)`` alongside the deprecated loose
feature kwargs.  These tests run each harness twice — once per spelling —
on identical seeded workloads and assert the executions are
indistinguishable, plus the shim semantics (one DeprecationWarning for
legacy kwargs, ConfigurationError for passing both spellings).
"""

import asyncio
import random

import pytest

from repro.algorithm.batchcore import BatchReplicaCore
from repro.algorithm.checkpoint import CompactionPolicy
from repro.algorithm.system import AlgorithmSystem
from repro.common import ConfigurationError, OperationIdGenerator
from repro.config import ReplicaConfig, reset_legacy_warnings
from repro.core.operations import make_operation
from repro.datatypes import CounterType
from repro.net.runtime import NetCluster, NetParams
from repro.service.frontend import ShardedFrontend
from repro.sim.cluster import SimulatedCluster, SimulationParams
from repro.sim.sharded import ShardedCluster

FEATURES = dict(
    fast_core=True,
    delta_gossip=True,
    full_state_interval=4,
    incremental_replay=True,
    compaction=CompactionPolicy(min_batch=4, value_retention=64),
    advert_gossip=True,
    checkpoint_chunk=3,
)
CONFIG = ReplicaConfig(**FEATURES)


def drive_system(system, seed=5, count=20):
    rng = random.Random(seed)
    gens = {cid: OperationIdGenerator(cid) for cid in system.client_ids}
    for i in range(count):
        client = system.client_ids[i % len(system.client_ids)]
        system.request(make_operation(CounterType.increment(), gens[client].fresh()))
        for _ in range(4):
            system.random_step(rng)
    system.drain(rng)
    return (
        sorted(((op.id, value) for op, value in system.trace.responses),
               key=lambda kv: repr(kv[0])),
        system.eventual_order(),
    )


class TestAlgorithmSystemTwin:
    def test_config_is_execution_identical_to_legacy_kwargs(self):
        reset_legacy_warnings()
        with pytest.warns(DeprecationWarning):
            legacy = AlgorithmSystem(
                CounterType(), ["r1", "r2", "r3"], ["c0", "c1"], **FEATURES
            )
        modern = AlgorithmSystem(
            CounterType(), ["r1", "r2", "r3"], ["c0", "c1"], config=CONFIG
        )
        assert drive_system(legacy) == drive_system(modern)
        assert legacy.config == modern.config

    def test_both_spellings_rejected(self):
        with pytest.raises(ConfigurationError):
            AlgorithmSystem(
                CounterType(), ["r1", "r2"], ["c0"],
                fast_core=True, config=CONFIG,
            )


class TestSimulatedClusterTwin:
    def test_params_replica_overlay_is_execution_identical(self):
        legacy = SimulatedCluster(
            CounterType(), 3, ["c0", "c1"],
            params=SimulationParams(**FEATURES), seed=9,
        )
        modern = SimulatedCluster(
            CounterType(), 3, ["c0", "c1"],
            params=SimulationParams(replica=CONFIG), seed=9,
        )
        assert legacy.params.replica_config == modern.params.replica_config

        def drive(cluster):
            ops = []
            for i in range(24):
                ops.append(cluster.submit(
                    ["c0", "c1"][i % 2], CounterType.increment()))
                cluster.run(0.7)
            cluster.run_until_idle()
            return [cluster.responded[op.id] for op in ops], cluster.eventual_order()

        assert drive(legacy) == drive(modern)


class TestShardedClusterTwin:
    def test_config_kwarg_is_execution_identical(self):
        sharded_features = dict(FEATURES)
        legacy = ShardedCluster(
            CounterType(), num_shards=2, replicas_per_shard=2,
            client_ids=["c0", "c1"],
            params=SimulationParams(batch_gossip=True, **sharded_features),
            seed=15,
        )
        modern = ShardedCluster(
            CounterType(), num_shards=2, replicas_per_shard=2,
            client_ids=["c0", "c1"],
            params=SimulationParams(batch_gossip=True),
            config=ReplicaConfig(batch_gossip=True, **FEATURES),
            seed=15,
        )
        assert legacy.config == modern.config

        def drive(cluster):
            keys = [f"k{i}" for i in range(6)]
            ops = []
            for i in range(24):
                ops.append(cluster.submit(["c0", "c1"][i % 2],
                                          keys[i % len(keys)],
                                          CounterType.increment()))
                cluster.run(0.7)
            cluster.run_until_idle()
            return (
                [cluster.responded[op.id] for op in ops],
                {s: cluster.shards[s].eventual_order() for s in cluster.shard_ids},
            )

        assert drive(legacy) == drive(modern)


class TestShardedFrontendTwin:
    def test_config_kwarg_is_execution_identical(self):
        reset_legacy_warnings()
        with pytest.warns(DeprecationWarning):
            legacy = ShardedFrontend(
                CounterType(), num_shards=2, replicas_per_shard=2,
                client_ids=("c0", "c1"), **FEATURES,
            )
        modern = ShardedFrontend(
            CounterType(), num_shards=2, replicas_per_shard=2,
            client_ids=("c0", "c1"), config=CONFIG,
        )
        assert legacy.config == modern.config

        def drive(frontend):
            rng = random.Random(21)
            keys = [f"k{i}" for i in range(6)]
            ops = []
            for i in range(20):
                ops.append(frontend.request(("c0", "c1")[i % 2],
                                            keys[i % len(keys)],
                                            CounterType.increment()))
                frontend.run_random(rng, 5)
            frontend.drain(rng)
            return (
                [frontend.responded[op.id] for op in ops],
                frontend.eventual_orders(),
            )

        assert drive(legacy) == drive(modern)

    def test_both_spellings_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedFrontend(CounterType(), fast_core=True, config=CONFIG)


class TestNetClusterTwin:
    def test_config_overlay_matches_legacy_params(self):
        legacy = NetParams(**FEATURES)
        modern = NetParams(replica=CONFIG)
        assert legacy == modern
        assert legacy.replica_config == CONFIG

        async def values(make_cluster):
            cluster = make_cluster()
            async with cluster:
                out = []
                for i in range(6):
                    out.append(await cluster.submit("c0", CounterType.increment()))
                await cluster.quiesce()
                return out

        legacy_values = asyncio.run(values(
            lambda: NetCluster(CounterType(), 2, ("c0",), params=NetParams(**FEATURES))
        ))
        modern_values = asyncio.run(values(
            lambda: NetCluster(CounterType(), 2, ("c0",), config=CONFIG)
        ))
        assert legacy_values == modern_values == [1, 2, 3, 4, 5, 6]

    def test_mapping_compaction_rejected_outside_sharded_entry_points(self):
        with pytest.raises(ConfigurationError):
            NetParams(replica=ReplicaConfig(
                compaction={"s0": CompactionPolicy(min_batch=4, value_retention=8)}
            ))


class TestOneWarningPerLegacyCall:
    def test_exactly_one_deprecation_warning(self):
        reset_legacy_warnings()
        with pytest.warns(DeprecationWarning) as caught:
            AlgorithmSystem(CounterType(), ["r1", "r2"], ["c0"],
                            delta_gossip=True, incremental_replay=True)
        assert len([w for w in caught
                    if issubclass(w.category, DeprecationWarning)]) == 1

    def test_shim_warns_once_per_process(self):
        # Repeated legacy constructions through the same entry point nag
        # once, not per call (the fuzzer builds thousands of clusters).
        reset_legacy_warnings()
        import warnings as _warnings

        with _warnings.catch_warnings(record=True) as caught:
            _warnings.simplefilter("always")
            for _ in range(3):
                AlgorithmSystem(CounterType(), ["r1", "r2"], ["c0"],
                                delta_gossip=True)
        assert len([w for w in caught
                    if issubclass(w.category, DeprecationWarning)]) == 1
        # A different entry point still gets its own (single) warning.
        with _warnings.catch_warnings(record=True) as caught:
            _warnings.simplefilter("always")
            ShardedFrontend(CounterType(), fast_core=True)
            ShardedFrontend(CounterType(), fast_core=True)
        assert len([w for w in caught
                    if issubclass(w.category, DeprecationWarning)]) == 1
        # Resetting the registry re-arms the warning.
        reset_legacy_warnings()
        with pytest.warns(DeprecationWarning):
            AlgorithmSystem(CounterType(), ["r1", "r2"], ["c0"],
                            delta_gossip=True)


class TestIncoherentCombinations:
    def test_batch_replay_requires_fast_core(self):
        with pytest.raises(ConfigurationError, match="batch_replay.*fast_core"):
            ReplicaConfig(batch_replay=True)
        with pytest.raises(ConfigurationError, match="batch_replay.*fast_core"):
            ReplicaConfig(batch_replay=True, fast_core=False)
        # The coherent combination constructs fine.
        ReplicaConfig(batch_replay=True, fast_core=True)

    def test_rejection_surfaces_through_every_entry_point(self):
        with pytest.raises(ConfigurationError):
            SimulatedCluster(
                CounterType(), 3, ["c0"],
                params=SimulationParams(batch_replay=True), seed=1,
            )
        with pytest.raises(ConfigurationError):
            NetParams(batch_replay=True).replica_config
        with pytest.raises(ConfigurationError):
            ShardedFrontend(CounterType(), batch_replay=True)
        with pytest.raises(ConfigurationError):
            AlgorithmSystem(CounterType(), ["r1", "r2"], ["c0"],
                            batch_replay=True)

    def test_batch_replay_selects_batch_core(self):
        cluster = SimulatedCluster(
            CounterType(), 3, ["c0"],
            params=SimulationParams(fast_core=True, batch_replay=True), seed=1,
        )
        assert all(isinstance(r, BatchReplicaCore) for r in cluster.replicas.values())
