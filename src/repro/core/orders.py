"""Relations, partial orders, and the ``outcome``/``val``/``valset`` semantics
(Sections 2.1 and 2.3 of the paper).

The specification automata manipulate *strict partial orders* on operation
identifiers, and compute return values for operations with respect to total
orders consistent with those partial orders:

* ``outcome(X, <)`` — the state after applying the operations of ``X`` in the
  total order ``<`` starting from the data type's initial state;
* ``val(x, X, <)`` — the value reported for ``x`` when the operations of ``X``
  are applied in the total order ``<``;
* ``valset(x, X, R)`` — the set of values ``val(x, X, <)`` over all total
  orders ``<`` on ``X`` consistent with the partial order ``R``.

``valset`` enumerates linear extensions and is therefore exponential in the
worst case; it is intended for the specification automata and the
verification harness on modest operation counts.  The algorithm itself never
calls it on more than one linear extension (replicas order their done set
totally by labels, Invariant 7.15).
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.operations import OperationDescriptor
from repro.datatypes.base import SerialDataType

Pair = Tuple[Any, Any]


def transitive_closure(pairs: Iterable[Pair]) -> Set[Pair]:
    """Return ``TC(R)``, the transitive closure of the relation *pairs*.

    Uses repeated relational composition over an adjacency-map encoding,
    which is O(n * e) in practice for the small relations handled by the
    specification automata.
    """
    succ: Dict[Any, Set[Any]] = {}
    for a, b in pairs:
        succ.setdefault(a, set()).add(b)
    closure: Dict[Any, Set[Any]] = {}
    for start in succ:
        # Depth-first reachability from each element of the domain.
        reached: Set[Any] = set()
        stack = list(succ.get(start, ()))
        while stack:
            node = stack.pop()
            if node in reached:
                continue
            reached.add(node)
            stack.extend(succ.get(node, ()))
        closure[start] = reached
    return {(a, b) for a, reachable in closure.items() for b in reachable}


def is_irreflexive(pairs: Iterable[Pair]) -> bool:
    """Is the relation irreflexive (no ``(x, x)`` pair)?"""
    return all(a != b for a, b in pairs)


def is_strict_partial_order(pairs: Set[Pair]) -> bool:
    """Is *pairs* transitive and irreflexive (hence a strict partial order,
    Lemma 2.1)?"""
    if not is_irreflexive(pairs):
        return False
    return transitive_closure(pairs) <= pairs


def is_consistent(first: Iterable[Pair], second: Iterable[Pair]) -> bool:
    """Are two relations consistent, i.e. is ``TC(R u R')`` a partial order?

    Following Section 2.1 we check that the transitive closure of the union is
    antisymmetric with no cycles through distinct elements; reflexive pairs
    arising from the union indicate a cycle and make the relations
    inconsistent when the inputs were strict orders.
    """
    union = set(first) | set(second)
    closure = transitive_closure(union)
    return all(a != b for a, b in closure)


def span(pairs: Iterable[Pair]) -> Set[Any]:
    """``span(R)`` — every element appearing on either side of *pairs*."""
    result: Set[Any] = set()
    for a, b in pairs:
        result.add(a)
        result.add(b)
    return result


def induced_order(pairs: Iterable[Pair], subset: Iterable[Any]) -> Set[Pair]:
    """The relation induced by *pairs* on *subset* (``R n (S' x S')``)."""
    members = set(subset)
    return {(a, b) for a, b in pairs if a in members and b in members}


class PartialOrder:
    """A strict partial order on an arbitrary set of hashable elements.

    Internally stores the full set of ordered pairs (transitively closed),
    which keeps membership queries O(1) and matches the paper's set-of-pairs
    formulation of ``po``, ``lc_r`` and ``sc``.
    """

    def __init__(self, pairs: Optional[Iterable[Pair]] = None) -> None:
        raw = set(pairs) if pairs is not None else set()
        closed = transitive_closure(raw) | raw
        if not is_irreflexive(closed):
            raise ValueError("relation has a cycle; not a strict partial order")
        self._pairs: Set[Pair] = closed

    # -- basic queries -------------------------------------------------------

    @property
    def pairs(self) -> FrozenSet[Pair]:
        """The full (transitively closed) set of ordered pairs."""
        return frozenset(self._pairs)

    def precedes(self, a: Any, b: Any) -> bool:
        """Does ``a`` strictly precede ``b``?"""
        return (a, b) in self._pairs

    def comparable(self, a: Any, b: Any) -> bool:
        """Are ``a`` and ``b`` ordered (either way) or equal?"""
        return a == b or (a, b) in self._pairs or (b, a) in self._pairs

    def span(self) -> Set[Any]:
        """Every element mentioned by the order."""
        return span(self._pairs)

    def predecessors(self, element: Any, universe: Iterable[Any]) -> Set[Any]:
        """``S|_<x`` — the elements of *universe* strictly preceding *element*."""
        return {y for y in universe if (y, element) in self._pairs}

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._pairs

    def __len__(self) -> int:
        return len(self._pairs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PartialOrder):
            return NotImplemented
        return self._pairs == other._pairs

    def __le__(self, other: "PartialOrder") -> bool:
        """Subset (refinement) check: every constraint of self is in other."""
        return self._pairs <= other._pairs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PartialOrder({sorted(map(str, self._pairs))})"

    # -- construction --------------------------------------------------------

    def extended_with(self, pairs: Iterable[Pair]) -> "PartialOrder":
        """Return a new order containing this order plus *pairs*.

        Raises ``ValueError`` if the result would contain a cycle, i.e. if the
        new constraints are inconsistent with the existing ones.
        """
        return PartialOrder(self._pairs | set(pairs))

    def restricted_to(self, subset: Iterable[Any]) -> "PartialOrder":
        """The order induced on *subset* (Lemma 2.2 guarantees this is a
        partial order)."""
        return PartialOrder(induced_order(self._pairs, subset))

    def is_consistent_with(self, pairs: Iterable[Pair]) -> bool:
        """Would adding *pairs* keep the relation acyclic?"""
        return is_consistent(self._pairs, pairs)

    # -- totality ------------------------------------------------------------

    def totally_orders(self, subset: Iterable[Any]) -> bool:
        """Does this order induce a total order on *subset*?"""
        members = list(set(subset))
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                if not self.comparable(a, b):
                    return False
        return True

    def topological_order(self, subset: Iterable[Any]) -> List[Any]:
        """One total order of *subset* consistent with this partial order.

        Ties are broken deterministically by ``repr`` so that results are
        reproducible across runs.
        """
        return topological_total_order(self._pairs, subset)

    def linear_extensions(
        self, subset: Iterable[Any], limit: Optional[int] = None
    ) -> Iterator[List[Any]]:
        """Enumerate total orders of *subset* consistent with this order."""
        return linear_extensions(self._pairs, subset, limit=limit)


def topological_total_order(pairs: Iterable[Pair], subset: Iterable[Any]) -> List[Any]:
    """A deterministic topological sort of *subset* under *pairs*.

    Raises ``ValueError`` if the induced relation has a cycle.
    """
    members = set(subset)
    relation = induced_order(pairs, members)
    indegree: Dict[Any, int] = {m: 0 for m in members}
    succ: Dict[Any, Set[Any]] = {m: set() for m in members}
    for a, b in relation:
        if b not in succ[a]:
            succ[a].add(b)
            indegree[b] += 1
    ready = sorted((m for m in members if indegree[m] == 0), key=repr)
    order: List[Any] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        newly_ready = []
        for nxt in succ[node]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                newly_ready.append(nxt)
        if newly_ready:
            ready.extend(newly_ready)
            ready.sort(key=repr)
    if len(order) != len(members):
        raise ValueError("relation has a cycle on the given subset")
    return order


def linear_extensions(
    pairs: Iterable[Pair],
    subset: Iterable[Any],
    limit: Optional[int] = None,
) -> Iterator[List[Any]]:
    """Enumerate every total order of *subset* consistent with *pairs*.

    Standard backtracking enumeration; ``limit`` caps the number of
    extensions yielded (useful to bound work in property-based tests).
    """
    members = set(subset)
    relation = induced_order(pairs, members)
    succ: Dict[Any, Set[Any]] = {m: set() for m in members}
    indegree: Dict[Any, int] = {m: 0 for m in members}
    for a, b in relation:
        if b not in succ[a]:
            succ[a].add(b)
            indegree[b] += 1

    count = 0
    prefix: List[Any] = []

    def backtrack() -> Iterator[List[Any]]:
        nonlocal count
        if limit is not None and count >= limit:
            return
        if len(prefix) == len(members):
            count += 1
            yield list(prefix)
            return
        available = sorted(
            (m for m in members if indegree[m] == 0 and m not in prefix), key=repr
        )
        for node in available:
            prefix.append(node)
            for nxt in succ[node]:
                indegree[nxt] -= 1
            yield from backtrack()
            for nxt in succ[node]:
                indegree[nxt] += 1
            prefix.pop()
            if limit is not None and count >= limit:
                return

    return backtrack()


# ---------------------------------------------------------------------------
# outcome / val / valset (Section 2.3)
# ---------------------------------------------------------------------------


def _order_operations(
    operations: Iterable[OperationDescriptor],
    total_order_ids: Sequence[Any],
) -> List[OperationDescriptor]:
    by_id = {x.id: x for x in operations}
    missing = [i for i in total_order_ids if i not in by_id]
    if missing:
        raise ValueError(f"total order mentions unknown operations: {missing}")
    return [by_id[i] for i in total_order_ids]


def outcome(
    data_type: SerialDataType,
    operations: Iterable[OperationDescriptor],
    total_order_ids: Sequence[Any],
    state: Any = None,
) -> Any:
    """``outcome_sigma(X, <)`` — the state after applying *operations* in the
    order given by *total_order_ids* (a sequence of identifiers covering X)."""
    ordered = _order_operations(operations, total_order_ids)
    current = data_type.initial_state() if state is None else state
    for x in ordered:
        current, _ = data_type.apply(current, x.op)
    return current


def val(
    data_type: SerialDataType,
    target: OperationDescriptor,
    operations: Iterable[OperationDescriptor],
    total_order_ids: Sequence[Any],
    state: Any = None,
) -> Any:
    """``val_sigma(x, X, <)`` — the value reported for *target* when the
    operations are applied in the given total order."""
    ops = list(operations)
    if target.id not in {x.id for x in ops}:
        raise ValueError(f"target {target.id} is not in the operation set")
    ordered = _order_operations(ops, total_order_ids)
    current = data_type.initial_state() if state is None else state
    value: Any = None
    seen = False
    for x in ordered:
        current, reported = data_type.apply(current, x.op)
        if x.id == target.id:
            value = reported
            seen = True
    if not seen:
        raise ValueError(f"total order does not include target {target.id}")
    return value


def valset(
    data_type: SerialDataType,
    target: OperationDescriptor,
    operations: Iterable[OperationDescriptor],
    order: PartialOrder,
    state: Any = None,
    limit: Optional[int] = None,
) -> Set[Any]:
    """``valset_sigma(x, X, R)`` — all values for *target* over total orders of
    *operations* consistent with *order* (Section 2.3).

    By Lemma 2.5 the result is nonempty whenever *order* restricted to the
    operation identifiers is a partial order.  ``limit`` bounds the number of
    linear extensions enumerated; ``None`` enumerates all of them.
    """
    ops = list(operations)
    ids = [x.id for x in ops]
    values: Set[Any] = set()
    for extension in order.linear_extensions(ids, limit=limit):
        values.add(val(data_type, target, ops, extension, state=state))
    return values


def value_under_prefix_order(
    data_type: SerialDataType,
    target: OperationDescriptor,
    ordered_prefix: Sequence[OperationDescriptor],
    state: Any = None,
) -> Any:
    """Value of *target* when it is the last element of *ordered_prefix*.

    This is the common case used by replicas (Lemma 2.7 / Invariant 5.6): the
    value of a stable operation is determined by the totally ordered prefix of
    operations preceding it.
    """
    if not ordered_prefix or ordered_prefix[-1].id != target.id:
        raise ValueError("target must be the final element of the prefix")
    current = data_type.initial_state() if state is None else state
    value: Any = None
    for x in ordered_prefix:
        current, value = data_type.apply(current, x.op)
    return value
