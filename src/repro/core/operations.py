"""Operation descriptors and client-specified constraints (Section 2.3).

A client accesses the data service by issuing an *operation descriptor*
consisting of a data-type operator ``op``, a unique operation identifier
``id``, a set ``prev`` of identifiers of operations that must be ordered
before it, and a boolean ``strict`` flag.

The *client-specified constraints* of a set of operations ``X`` is the
relation ``CSC(X) = {(y.id, x.id) : x in X, y.id in x.prev}`` on identifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Set, Tuple

from repro.common import OperationId
from repro.datatypes.base import Operator


@dataclass(frozen=True)
class OperationDescriptor:
    """An operation descriptor ``x = (op, id, prev, strict)``.

    Instances are immutable and hashable so they can be stored in sets, used
    as dictionary keys, and copied into simulated messages without aliasing
    concerns.
    """

    op: Operator
    id: OperationId
    prev: FrozenSet[OperationId] = field(default_factory=frozenset)
    strict: bool = False

    def __post_init__(self) -> None:
        # Normalise prev to a frozenset even if a plain iterable was passed.
        if not isinstance(self.prev, frozenset):
            object.__setattr__(self, "prev", frozenset(self.prev))
        # Hot-path hash cache: identical value to the generated dataclass
        # __hash__, computed once at construction (see FastReplicaCore).
        object.__setattr__(
            self, "_hash", hash((self.op, self.id, self.prev, self.strict))
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        flag = "!" if self.strict else ""
        return f"{flag}{self.op}@{self.id}"

    @property
    def client(self) -> str:
        """The client that issued this operation (encoded in the identifier)."""
        return self.id.client

    def with_strict(self, strict: bool) -> "OperationDescriptor":
        """Return a copy of this descriptor with the ``strict`` flag replaced."""
        return OperationDescriptor(self.op, self.id, self.prev, strict)

    def with_prev(self, prev: Iterable[OperationId]) -> "OperationDescriptor":
        """Return a copy of this descriptor with the ``prev`` set replaced."""
        return OperationDescriptor(self.op, self.id, frozenset(prev), self.strict)


def make_operation(
    op: Operator,
    op_id: OperationId,
    prev: Optional[Iterable[OperationId]] = None,
    strict: bool = False,
) -> OperationDescriptor:
    """Convenience constructor for :class:`OperationDescriptor`."""
    return OperationDescriptor(
        op=op,
        id=op_id,
        prev=frozenset(prev) if prev is not None else frozenset(),
        strict=bool(strict),
    )


def ids_of(operations: Iterable[OperationDescriptor]) -> Set[OperationId]:
    """``X.id`` — the set of identifiers of the operations in *operations*."""
    return {x.id for x in operations}


def client_specified_constraints(
    operations: Iterable[OperationDescriptor],
) -> Set[Tuple[OperationId, OperationId]]:
    """``CSC(X)`` — the client-specified constraint relation on identifiers.

    ``(y.id, x.id)`` is in the result exactly when some operation ``x`` in
    *operations* lists ``y.id`` in its ``prev`` set (Section 2.3).  Note that
    ``y`` itself need not be in *operations*; the relation is on identifiers.
    """
    constraints: Set[Tuple[OperationId, OperationId]] = set()
    for x in operations:
        for prev_id in x.prev:
            constraints.add((prev_id, x.id))
    return constraints


def operations_by_id(
    operations: Iterable[OperationDescriptor],
) -> dict:
    """Index *operations* by identifier, checking uniqueness (Invariant 4.1)."""
    index = {}
    for x in operations:
        existing = index.get(x.id)
        if existing is not None and existing != x:
            raise ValueError(f"two distinct operations share identifier {x.id}")
        index[x.id] = x
    return index
