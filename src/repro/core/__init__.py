"""Core definitions of the ESDS paper (Section 2).

* :mod:`repro.core.operations` — operation descriptors, client-specified
  constraints (CSC), identifier utilities;
* :mod:`repro.core.orders` — binary relations, partial/total orders,
  ``outcome``, ``val`` and ``valset`` (the semantics of applying a set of
  operations under an order constraint).

These are the shared vocabulary of the specification (:mod:`repro.spec`),
the algorithm (:mod:`repro.algorithm`) and the verification harness
(:mod:`repro.verification`).
"""

from repro.core.operations import (
    OperationDescriptor,
    client_specified_constraints,
    ids_of,
    make_operation,
)
from repro.core.orders import (
    PartialOrder,
    induced_order,
    is_consistent,
    linear_extensions,
    outcome,
    topological_total_order,
    transitive_closure,
    val,
    valset,
)

__all__ = [
    "OperationDescriptor",
    "client_specified_constraints",
    "ids_of",
    "make_operation",
    "PartialOrder",
    "induced_order",
    "is_consistent",
    "linear_extensions",
    "outcome",
    "topological_total_order",
    "transitive_closure",
    "val",
    "valset",
]
