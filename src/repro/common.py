"""Shared small utilities for the ESDS reproduction.

This module contains exceptions, identifier helpers and tiny value types that
are used across the specification, the algorithm and the simulator.  It is
intentionally dependency-free.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional


class EsdsError(Exception):
    """Base class for all errors raised by the repro library."""


class WellFormednessError(EsdsError):
    """A client violated the well-formedness assumptions of Section 4.

    Raised when an operation identifier is reused, or when a ``prev`` set
    refers to an operation that has not been requested yet.
    """


class SpecificationError(EsdsError):
    """An automaton action was applied while its precondition was false."""


class InvariantViolation(EsdsError):
    """A runtime invariant check (Sections 5, 7, 8 or 10) failed."""


class SimulationRelationError(EsdsError):
    """A forward-simulation step check (Section 8) failed."""


class ConfigurationError(EsdsError):
    """The system was configured inconsistently (e.g. fewer than 2 replicas)."""


class MetricsError(EsdsError):
    """A metric was requested that the collected data cannot support
    (e.g. the mean latency of a run in which nothing completed)."""


class StaleValueError(EsdsError):
    """A retransmitted operation can never be answered: its response value
    was compacted and then aged out of every replica's retained-value ledger
    (finite ``CompactionPolicy.value_retention``).  Surfaced by the service
    layer once every replica has NACKed the retransmit."""


def ensure_not_stale(failed, op_id) -> None:
    """Raise :class:`StaleValueError` when *op_id* is in a frontend's map of
    failed operations — the shared guard of every ``value_of`` facade."""
    if op_id in failed:
        raise StaleValueError(
            f"value of {op_id} aged out of every replica's ledger "
            f"({failed[op_id]})"
        )


@dataclass(frozen=True, order=True)
class OperationId:
    """Globally unique operation identifier.

    The paper assumes clients encode their identity into the operation
    identifier via a static function ``client : I -> C`` (Section 6.2).  We
    make this explicit: an identifier is a ``(client, seqno)`` pair, and
    ``client`` is recoverable directly from the identifier.
    """

    client: str
    seqno: int

    def __post_init__(self) -> None:
        # Identifiers are hashed millions of times on the replay hot path
        # (knowledge-set membership, label lookups); cache the value the
        # generated dataclass __hash__ would compute so every later hash()
        # is a single attribute read with an unchanged result.
        object.__setattr__(self, "_hash", hash((self.client, self.seqno)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.client}#{self.seqno}"


class OperationIdGenerator:
    """Per-client generator of fresh :class:`OperationId` values."""

    def __init__(self, client: str, start: int = 0) -> None:
        self.client = client
        self._counter = itertools.count(start)

    def fresh(self) -> OperationId:
        """Return a new, never previously returned identifier."""
        return OperationId(self.client, next(self._counter))

    def __iter__(self) -> Iterator[OperationId]:
        while True:
            yield self.fresh()


def client_of(op_id: OperationId) -> str:
    """The static ``client`` function of Section 6.2."""
    return op_id.client


def freeze_ids(ids) -> frozenset:
    """Return *ids* as a frozenset, accepting any iterable of identifiers."""
    return frozenset(ids)


class Infinity:
    """A single object greater than every label (the paper's ``oo``).

    Replica label functions map operation identifiers that have not yet been
    assigned a label to ``INFINITY`` (Section 6.3).
    """

    _instance: Optional["Infinity"] = None

    def __new__(cls) -> "Infinity":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "oo"

    def __lt__(self, other) -> bool:
        return False

    def __le__(self, other) -> bool:
        return other is self

    def __gt__(self, other) -> bool:
        return other is not self

    def __ge__(self, other) -> bool:
        return True

    def __eq__(self, other) -> bool:
        return other is self

    def __hash__(self) -> int:
        return hash("Infinity")


INFINITY = Infinity()
