"""repro — Eventually-Serializable Data Services.

A complete reproduction of *Eventually-Serializable Data Services* (Fekete,
Gupta, Luchangco, Lynch, Shvartsman; PODC 1996, full version TCS 220, 1999):

* the formal **specification** (ESDS-I / ESDS-II and the well-formed client
  automaton) on top of an executable I/O-automaton framework;
* the **lazy-replication algorithm** (labels, gossip, stability) plus the
  memoizing and commutativity-exploiting optimizations of Section 10;
* a **verification harness** turning the paper's invariants and forward
  simulations into runtime checks;
* a **discrete-event simulator** (and baselines: centralized atomic object,
  primary copy, Ladin-style lazy replication) used to reproduce the paper's
  performance analysis and Cheiner's experiments;
* **applications**: a distributed directory/name service and an object
  repository;
* a **networked runtime** (``repro.net``) running the same replica cores
  over asyncio streams with a binary wire codec, and **live elastic
  resharding** of the keyed service layer behind a unified
  :class:`ReplicaConfig` cluster-configuration API.

The curated public surface is ``__all__`` below; everything else is
internal and may change between versions.  See ``docs/api.md`` for the
guided tour.

Quickstart
----------

>>> from repro import SimulatedCluster, SimulationParams, RegisterType
>>> cluster = SimulatedCluster(RegisterType(), num_replicas=3,
...                            client_ids=["alice", "bob"],
...                            params=SimulationParams(df=1, dg=1, gossip_period=2))
>>> write, _ = cluster.execute("alice", RegisterType.write("hello"))
>>> _, value = cluster.execute("bob", RegisterType.read(),
...                            prev=[write.id], strict=True)
>>> value
'hello'
"""

from repro.common import (
    ConfigurationError,
    EsdsError,
    INFINITY,
    InvariantViolation,
    MetricsError,
    OperationId,
    OperationIdGenerator,
    SimulationRelationError,
    SpecificationError,
    WellFormednessError,
)
from repro.core.operations import OperationDescriptor, make_operation
from repro.core.orders import PartialOrder, outcome, val, valset
from repro.datatypes import (
    AppendLogType,
    BankAccountType,
    CounterType,
    DirectoryType,
    GSetType,
    Operator,
    QueueType,
    RegisterType,
    SerialDataType,
)
from repro.spec import EsdsSpecI, EsdsSpecII, SafeUsers, TraceRecord, Users
from repro.algorithm import (
    AlgorithmSystem,
    Checkpoint,
    CommuteReplicaCore,
    CompactionPolicy,
    FrontEndCore,
    GossipMessage,
    IncrementalReplicaCore,
    Label,
    MemoizedReplicaCore,
    ReplicaCore,
)
from repro.config import ReplicaConfig
from repro.verification import (
    AlgorithmInvariantChecker,
    AlgorithmToSpecSimulation,
    check_esds2_implements_esds1,
    check_system_trace,
)
from repro.sim import (
    DelaySpike,
    FaultSchedule,
    GossipOutage,
    KeyedWorkloadSpec,
    MetricsCollector,
    PerShardMetrics,
    ReplicaCrash,
    ShardedCluster,
    SimulatedCluster,
    SimulationParams,
    WorkloadSpec,
    run_keyed_workload,
    run_workload,
)
from repro.sim.sharded import LiveReshard
from repro.service import KeyedStore, ShardRouter, ShardedFrontend
from repro.service.router import KeyRangeMove
from repro.net import NetCluster, NetParams, WireCluster, WireStats
from repro.conformance import (
    DATA_TYPE_NAMES,
    DATA_TYPES,
    ScenarioSpec,
    run_scenario,
)
from repro.baselines import (
    CentralizedAtomicService,
    LadinLazyReplicationService,
    PrimaryCopyService,
)
from repro.apps import DirectoryService, ObjectRepository
from repro.analysis import TimingAssumptions, response_time_bound

__version__ = "1.0.0"

__all__ = [
    # errors / identifiers
    "EsdsError",
    "WellFormednessError",
    "SpecificationError",
    "InvariantViolation",
    "SimulationRelationError",
    "ConfigurationError",
    "OperationId",
    "OperationIdGenerator",
    "INFINITY",
    # core
    "OperationDescriptor",
    "make_operation",
    "PartialOrder",
    "outcome",
    "val",
    "valset",
    # data types
    "Operator",
    "SerialDataType",
    "RegisterType",
    "CounterType",
    "GSetType",
    "DirectoryType",
    "AppendLogType",
    "QueueType",
    "BankAccountType",
    # specification
    "Users",
    "SafeUsers",
    "EsdsSpecI",
    "EsdsSpecII",
    "TraceRecord",
    # algorithm
    "Label",
    "Checkpoint",
    "CompactionPolicy",
    "ReplicaCore",
    "IncrementalReplicaCore",
    "MemoizedReplicaCore",
    "CommuteReplicaCore",
    "FrontEndCore",
    "GossipMessage",
    "AlgorithmSystem",
    # verification
    "AlgorithmInvariantChecker",
    "AlgorithmToSpecSimulation",
    "check_esds2_implements_esds1",
    "check_system_trace",
    # unified cluster configuration
    "ReplicaConfig",
    # simulation
    "SimulatedCluster",
    "SimulationParams",
    "ShardedCluster",
    "LiveReshard",
    "WorkloadSpec",
    "KeyedWorkloadSpec",
    "run_workload",
    "run_keyed_workload",
    "MetricsCollector",
    "PerShardMetrics",
    "FaultSchedule",
    "ReplicaCrash",
    "GossipOutage",
    "DelaySpike",
    # service layer
    "KeyedStore",
    "ShardRouter",
    "KeyRangeMove",
    "ShardedFrontend",
    "MetricsError",
    # networked runtime
    "NetCluster",
    "NetParams",
    "WireCluster",
    "WireStats",
    # conformance
    "ScenarioSpec",
    "run_scenario",
    "DATA_TYPES",
    "DATA_TYPE_NAMES",
    # baselines
    "CentralizedAtomicService",
    "PrimaryCopyService",
    "LadinLazyReplicationService",
    # applications
    "DirectoryService",
    "ObjectRepository",
    # analysis
    "TimingAssumptions",
    "response_time_bound",
]
