"""Serial data type protocol (Section 2.2).

A serial data type consists of a set ``Sigma`` of object states, an initial
state ``sigma_0``, a set ``V`` of reportable values, a set ``O`` of operators,
and a transition function ``tau : Sigma x O -> Sigma x V``.

We represent operators as small frozen dataclasses (:class:`Operator`) carrying
a ``name`` and a tuple of arguments, so that they are hashable, comparable and
cheap to copy into messages.  Concrete data types implement
:class:`SerialDataType` and provide ``apply`` (the transition function) plus
optional commutativity metadata used by the Section 10.3 optimization.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class Operator:
    """A data-type operator: a name plus positional arguments.

    Examples: ``Operator("read")``, ``Operator("write", (5,))``,
    ``Operator("bind", ("www", "10.0.0.7"))``.
    """

    name: str
    args: Tuple[Any, ...] = field(default=())

    def __post_init__(self) -> None:
        # Hot-path hash cache: identical value to the generated dataclass
        # __hash__, computed once at construction (see FastReplicaCore).
        object.__setattr__(self, "_hash", hash((self.name, self.args)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if not self.args:
            return self.name
        return f"{self.name}({', '.join(map(repr, self.args))})"


class SerialDataType(ABC):
    """Abstract serial data type (Section 2.2).

    Subclasses must provide :meth:`initial_state` and :meth:`apply`.  States
    must be immutable (hashable) values so that replicas, specifications and
    the memoizing optimization can copy and compare them freely.
    """

    #: Human-readable name of the data type.
    name: str = "abstract"

    @abstractmethod
    def initial_state(self) -> Any:
        """Return the distinguished initial state ``sigma_0``."""

    @abstractmethod
    def apply(self, state: Any, operator: Operator) -> Tuple[Any, Any]:
        """The transition function ``tau``.

        Returns a pair ``(next_state, reported_value)``.  Must be a pure
        function of its arguments.
        """

    # -- Section 10.3: commutativity / obliviousness / independence ---------

    def commute(self, a: Operator, b: Operator) -> bool:
        """Do ``a`` and ``b`` commute (same final state in either order)?

        The default implementation is conservative and returns ``True`` only
        when the two operators are both read-only.  Subclasses override this
        with data-type-specific knowledge.
        """
        return self.is_read_only(a) and self.is_read_only(b)

    def oblivious(self, a: Operator, b: Operator) -> bool:
        """Is ``a`` oblivious to ``b`` (``b`` before ``a`` does not change
        ``a``'s reported value)?  Conservative default: only when ``b`` is
        read-only."""
        return self.is_read_only(b)

    def independent(self, a: Operator, b: Operator) -> bool:
        """Operators are independent when they commute and are mutually
        oblivious (Section 10.3)."""
        return (
            self.commute(a, b)
            and self.oblivious(a, b)
            and self.oblivious(b, a)
        )

    def is_read_only(self, op: Operator) -> bool:
        """Does ``op`` leave the state unchanged for every state?

        Default: unknown, assume it may write.  Subclasses override.
        """
        return False

    def state_independent(self, op: Operator) -> bool:
        """Does ``op`` report the same value in *every* state?

        When true, the value ``tau(sigma, op).v`` does not depend on
        ``sigma`` at all — e.g. a register ``write(v)`` always reports
        ``v``.  Such an operation can be answered from any replay of a
        done set containing it, even one missing part of the agreed
        prefix (the advert/pull catch-up window): whatever effects the
        hole omits cannot change the reported value.

        Default: unknown, assume the value may depend on the state.
        Subclasses override with data-type-specific knowledge.
        """
        return False

    # -- convenience ---------------------------------------------------------

    def outcome(self, operators: Sequence[Operator], state: Any = None) -> Any:
        """Apply ``operators`` in sequence and return the final state
        (the paper's ``tau+(...).s``)."""
        current = self.initial_state() if state is None else state
        for op in operators:
            current, _ = self.apply(current, op)
        return current

    def value_of_last(self, operators: Sequence[Operator], state: Any = None) -> Any:
        """Apply ``operators`` in sequence and return the value reported by
        the last one (the paper's ``tau+(...).v``)."""
        if not operators:
            raise ValueError("value_of_last requires a nonempty sequence")
        current = self.initial_state() if state is None else state
        value: Any = None
        for op in operators:
            current, value = self.apply(current, op)
        return value

    def check_operator(self, operator: Operator) -> None:
        """Raise ``ValueError`` if *operator* is not an operator of this type.

        The default accepts everything; concrete types override to validate
        the operator name and arity.  The front end calls this on submission
        so that malformed requests are rejected at the client boundary.
        """


def apply_sequence(
    data_type: SerialDataType,
    operators: Iterable[Operator],
    state: Any = None,
) -> Tuple[Any, List[Any]]:
    """Apply *operators* in order, returning ``(final_state, values)``.

    This is the repeated-application function ``tau+`` of Section 2.2, but it
    also collects every intermediate reported value, which the memoizing
    replica (Section 10.1) needs.
    """
    current = data_type.initial_state() if state is None else state
    values: List[Any] = []
    for op in operators:
        current, value = data_type.apply(current, op)
        values.append(value)
    return current, values


def operators_commute(data_type: SerialDataType, a: Operator, b: Operator) -> bool:
    """Module-level convenience wrapper for :meth:`SerialDataType.commute`."""
    return data_type.commute(a, b)


def operator_oblivious_to(
    data_type: SerialDataType, a: Operator, b: Operator
) -> bool:
    """Module-level convenience wrapper for :meth:`SerialDataType.oblivious`."""
    return data_type.oblivious(a, b)


def operators_independent(
    data_type: SerialDataType, a: Operator, b: Operator
) -> bool:
    """Module-level convenience wrapper for :meth:`SerialDataType.independent`."""
    return data_type.independent(a, b)
