"""Directory / name-service serial data type (Section 11.2).

The paper motivates eventually-serializable services with distributed
directory services (Grapevine, DECdns, DCE CDS/GDS, X.500, DNS): name objects
with typed attribute sets, where lookups dominate and updates may propagate
lazily.  This data type models exactly that object: a map from names to
attribute dictionaries, with create/delete/set-attribute updates and
lookup/list queries.

The directory application in :mod:`repro.apps.directory` layers the
client-side conventions (e.g. putting the name-creation operation identifier
in the ``prev`` set of attribute updates) on top of this type.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.datatypes.base import Operator, SerialDataType

# States are immutable nested mappings: name -> (attr -> value), encoded as a
# frozenset of (name, frozenset of (attr, value)) pairs would be awkward to
# read, so we use a tuple-of-pairs canonical encoding with helper codecs.


def _freeze(mapping: Dict[str, Dict[str, Any]]) -> Tuple:
    return tuple(
        sorted(
            (name, tuple(sorted(attrs.items())))
            for name, attrs in mapping.items()
        )
    )


def _thaw(state: Tuple) -> Dict[str, Dict[str, Any]]:
    return {name: dict(attrs) for name, attrs in state}


class DirectoryType(SerialDataType):
    """A hierarchical-flat directory of named objects with attributes.

    Operators:

    * ``create(name)`` — create a name with no attributes; reports ``True``
      if created, ``False`` if it already existed;
    * ``remove(name)`` — delete a name; reports whether it existed;
    * ``set_attr(name, attr, value)`` — set an attribute; reports ``True`` on
      success and ``None`` if the name does not exist;
    * ``lookup(name)`` — report the attribute dict of ``name`` (or ``None``);
    * ``get_attr(name, attr)`` — report one attribute value (or ``None``);
    * ``list_names`` — report the sorted tuple of existing names.
    """

    name = "directory"

    @staticmethod
    def create(name: str) -> Operator:
        return Operator("create", (name,))

    @staticmethod
    def remove(name: str) -> Operator:
        return Operator("remove", (name,))

    @staticmethod
    def set_attr(name: str, attr: str, value: Any) -> Operator:
        return Operator("set_attr", (name, attr, value))

    @staticmethod
    def lookup(name: str) -> Operator:
        return Operator("lookup", (name,))

    @staticmethod
    def get_attr(name: str, attr: str) -> Operator:
        return Operator("get_attr", (name, attr))

    @staticmethod
    def list_names() -> Operator:
        return Operator("list_names")

    def initial_state(self) -> Tuple:
        return _freeze({})

    def apply(self, state: Tuple, operator: Operator) -> Tuple[Tuple, Any]:
        mapping = _thaw(state)
        if operator.name == "create":
            (name,) = operator.args
            if name in mapping:
                return state, False
            mapping[name] = {}
            return _freeze(mapping), True
        if operator.name == "remove":
            (name,) = operator.args
            existed = name in mapping
            mapping.pop(name, None)
            return _freeze(mapping), existed
        if operator.name == "set_attr":
            name, attr, value = operator.args
            if name not in mapping:
                return state, None
            mapping[name][attr] = value
            return _freeze(mapping), True
        if operator.name == "lookup":
            (name,) = operator.args
            attrs = mapping.get(name)
            if attrs is None:
                return state, None
            # Report a hashable snapshot of the attributes (sorted pairs).
            return state, tuple(sorted(attrs.items()))
        if operator.name == "get_attr":
            name, attr = operator.args
            attrs = mapping.get(name)
            return state, (attrs.get(attr) if attrs is not None else None)
        if operator.name == "list_names":
            return state, tuple(sorted(mapping))
        raise ValueError(f"unknown directory operator: {operator.name}")

    def is_read_only(self, op: Operator) -> bool:
        return op.name in ("lookup", "get_attr", "list_names")

    def commute(self, a: Operator, b: Operator) -> bool:
        if self.is_read_only(a) or self.is_read_only(b):
            return True
        # Updates on different names always commute.
        if a.args and b.args and a.args[0] != b.args[0]:
            return True
        # Same name: create/create and remove/remove are idempotent;
        # set_attr on different attributes commutes.
        if a.name == b.name == "create" or a.name == b.name == "remove":
            return True
        if a.name == b.name == "set_attr":
            return a.args[1] != b.args[1] or a.args[2] == b.args[2]
        return False

    def oblivious(self, a: Operator, b: Operator) -> bool:
        if self.is_read_only(b):
            return True
        # Operations on different names do not affect each other's values.
        if a.args and b.args and a.args[0] != b.args[0]:
            return True
        return False

    def check_operator(self, operator: Operator) -> None:
        arity = {
            "create": 1,
            "remove": 1,
            "set_attr": 3,
            "lookup": 1,
            "get_attr": 2,
            "list_names": 0,
        }
        if operator.name not in arity:
            raise ValueError(f"unknown directory operator: {operator.name}")
        if len(operator.args) != arity[operator.name]:
            raise ValueError(
                f"{operator.name} takes {arity[operator.name]} argument(s)"
            )
