"""Read/write register serial data type."""

from __future__ import annotations

from typing import Any, Tuple

from repro.datatypes.base import Operator, SerialDataType


class RegisterType(SerialDataType):
    """A single read/write register.

    Operators:

    * ``read`` — reports the current value, leaves the state unchanged;
    * ``write(v)`` — sets the value to ``v`` and reports the value written
      (an "ack" that carries the written value).

    The initial value defaults to ``None`` but may be overridden.
    """

    name = "register"

    def __init__(self, initial: Any = None) -> None:
        self._initial = initial

    @staticmethod
    def read() -> Operator:
        """Build a ``read`` operator."""
        return Operator("read")

    @staticmethod
    def write(value: Any) -> Operator:
        """Build a ``write(value)`` operator."""
        return Operator("write", (value,))

    def initial_state(self) -> Any:
        return self._initial

    def apply(self, state: Any, operator: Operator) -> Tuple[Any, Any]:
        if operator.name == "read":
            return state, state
        if operator.name == "write":
            (value,) = operator.args
            return value, value
        raise ValueError(f"unknown register operator: {operator.name}")

    def is_read_only(self, op: Operator) -> bool:
        return op.name == "read"

    def state_independent(self, op: Operator) -> bool:
        # A write reports the value it writes, whatever the prior state.
        return op.name == "write"

    def commute(self, a: Operator, b: Operator) -> bool:
        if self.is_read_only(a) or self.is_read_only(b):
            return True
        # Two writes commute only when they write the same value.
        return a.args == b.args

    def oblivious(self, a: Operator, b: Operator) -> bool:
        if self.is_read_only(b):
            return True
        # a's value is unaffected by a preceding write only when a is itself a
        # write (its reported value is the value it writes).
        return a.name == "write"

    def check_operator(self, operator: Operator) -> None:
        if operator.name == "read":
            if operator.args:
                raise ValueError("read takes no arguments")
        elif operator.name == "write":
            if len(operator.args) != 1:
                raise ValueError("write takes exactly one argument")
        else:
            raise ValueError(f"unknown register operator: {operator.name}")
