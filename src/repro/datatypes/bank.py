"""Bank account serial data type.

Deposits commute with each other (they are additive), withdrawals may fail
when the balance is insufficient and therefore do not commute with deposits
or each other.  This gives a workload with a natural mix of causal (deposit)
and strict (withdraw, audit) operations, used by the quickstart example and
the strict-ratio benchmark.
"""

from __future__ import annotations

from typing import Tuple

from repro.datatypes.base import Operator, SerialDataType


class BankAccountType(SerialDataType):
    """A single bank account with a non-negative integer balance.

    Operators:

    * ``deposit(k)`` — add ``k`` (``k >= 0``); reports the new balance;
    * ``withdraw(k)`` — subtract ``k`` if the balance allows it; reports the
      new balance on success or ``None`` when rejected;
    * ``balance`` — report the current balance.
    """

    name = "bank"

    def __init__(self, initial: int = 0) -> None:
        if initial < 0:
            raise ValueError("initial balance must be non-negative")
        self._initial = int(initial)

    @staticmethod
    def deposit(amount: int) -> Operator:
        return Operator("deposit", (int(amount),))

    @staticmethod
    def withdraw(amount: int) -> Operator:
        return Operator("withdraw", (int(amount),))

    @staticmethod
    def balance() -> Operator:
        return Operator("balance")

    def initial_state(self) -> int:
        return self._initial

    def apply(self, state: int, operator: Operator) -> Tuple[int, object]:
        if operator.name == "deposit":
            (amount,) = operator.args
            new = state + amount
            return new, new
        if operator.name == "withdraw":
            (amount,) = operator.args
            if amount > state:
                return state, None
            new = state - amount
            return new, new
        if operator.name == "balance":
            return state, state
        raise ValueError(f"unknown bank operator: {operator.name}")

    def is_read_only(self, op: Operator) -> bool:
        return op.name == "balance"

    def commute(self, a: Operator, b: Operator) -> bool:
        if self.is_read_only(a) or self.is_read_only(b):
            return True
        if a.name == "deposit" and b.name == "deposit":
            return True
        # Withdrawals may fail depending on order, so they do not commute in
        # general with deposits or other withdrawals.
        return False

    def oblivious(self, a: Operator, b: Operator) -> bool:
        return self.is_read_only(b)

    def check_operator(self, operator: Operator) -> None:
        if operator.name in ("deposit", "withdraw"):
            if len(operator.args) != 1 or not isinstance(operator.args[0], int):
                raise ValueError(f"{operator.name} takes one integer argument")
            if operator.args[0] < 0:
                raise ValueError(f"{operator.name} amount must be non-negative")
        elif operator.name == "balance":
            if operator.args:
                raise ValueError("balance takes no arguments")
        else:
            raise ValueError(f"unknown bank operator: {operator.name}")
