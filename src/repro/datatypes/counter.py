"""Counter serial data type, including the paper's increment/double example.

Section 10.3 motivates the commutativity requirements with a counter whose
``increment`` and ``double`` operators do not commute: starting from 1, doing
increment-then-double yields 4 while double-then-increment yields 3.  This
type provides exactly those operators (plus ``add`` and ``read``), with the
precise commutativity metadata, so the example is directly runnable.
"""

from __future__ import annotations

from typing import Tuple

from repro.datatypes.base import Operator, SerialDataType


class CounterType(SerialDataType):
    """An integer counter.

    Operators:

    * ``read`` — report the current value;
    * ``increment`` — add one, report the new value;
    * ``add(k)`` — add ``k``, report the new value;
    * ``double`` — multiply by two, report the new value.
    """

    name = "counter"

    def __init__(self, initial: int = 0) -> None:
        self._initial = int(initial)

    @staticmethod
    def read() -> Operator:
        return Operator("read")

    @staticmethod
    def increment() -> Operator:
        return Operator("increment")

    @staticmethod
    def add(amount: int) -> Operator:
        return Operator("add", (int(amount),))

    @staticmethod
    def double() -> Operator:
        return Operator("double")

    def initial_state(self) -> int:
        return self._initial

    def apply(self, state: int, operator: Operator) -> Tuple[int, int]:
        if operator.name == "read":
            return state, state
        if operator.name == "increment":
            new = state + 1
            return new, new
        if operator.name == "add":
            (amount,) = operator.args
            new = state + amount
            return new, new
        if operator.name == "double":
            new = state * 2
            return new, new
        raise ValueError(f"unknown counter operator: {operator.name}")

    def is_read_only(self, op: Operator) -> bool:
        return op.name == "read"

    def commute(self, a: Operator, b: Operator) -> bool:
        if self.is_read_only(a) or self.is_read_only(b):
            return True
        additive = {"increment", "add"}
        if a.name in additive and b.name in additive:
            return True
        if a.name == "double" and b.name == "double":
            return True
        # add(0) commutes with double; otherwise increment/add vs double do not.
        if {a.name, b.name} == {"add", "double"}:
            adder = a if a.name == "add" else b
            return adder.args[0] == 0
        if {a.name, b.name} == {"increment", "double"}:
            return False
        return False

    def oblivious(self, a: Operator, b: Operator) -> bool:
        # Every counter operator reports the post-state, so a is oblivious to
        # b only when b does not change the state.
        return self.is_read_only(b)

    def check_operator(self, operator: Operator) -> None:
        if operator.name in ("read", "increment", "double"):
            if operator.args:
                raise ValueError(f"{operator.name} takes no arguments")
        elif operator.name == "add":
            if len(operator.args) != 1 or not isinstance(operator.args[0], int):
                raise ValueError("add takes exactly one integer argument")
        else:
            raise ValueError(f"unknown counter operator: {operator.name}")
