"""Serial data types (Section 2.2 of the paper).

A *serial data type* describes the sequential behaviour of the object managed
by the data service: a set of states with a distinguished initial state, a set
of reportable values, a set of operators, and a transition function
``tau : State x Operator -> State x Value``.

The ESDS specification and algorithm are parameterised by a serial data type
and never look inside it, so any type implementing
:class:`~repro.datatypes.base.SerialDataType` can be plugged in.  This package
ships the types used throughout the examples, tests and benchmarks:

* :class:`~repro.datatypes.register.RegisterType` — read/write register,
* :class:`~repro.datatypes.counter.CounterType` — increment/add/double/read,
* :class:`~repro.datatypes.gset.GSetType` — grow-only set,
* :class:`~repro.datatypes.directory.DirectoryType` — name -> attribute map
  (the directory-service object of Section 11.2),
* :class:`~repro.datatypes.appendlog.AppendLogType` — append-only log,
* :class:`~repro.datatypes.queue.QueueType` — FIFO queue,
* :class:`~repro.datatypes.bank.BankAccountType` — deposit/withdraw/balance.

Each type also exposes the *commutativity* / *obliviousness* / *independence*
predicates of Section 10.3, which the ``Commute`` replica variant exploits.
"""

from repro.datatypes.base import (
    Operator,
    SerialDataType,
    apply_sequence,
    operators_commute,
    operators_independent,
    operator_oblivious_to,
)
from repro.datatypes.register import RegisterType
from repro.datatypes.counter import CounterType
from repro.datatypes.gset import GSetType
from repro.datatypes.directory import DirectoryType
from repro.datatypes.appendlog import AppendLogType
from repro.datatypes.queue import QueueType
from repro.datatypes.bank import BankAccountType

__all__ = [
    "Operator",
    "SerialDataType",
    "apply_sequence",
    "operators_commute",
    "operators_independent",
    "operator_oblivious_to",
    "RegisterType",
    "CounterType",
    "GSetType",
    "DirectoryType",
    "AppendLogType",
    "QueueType",
    "BankAccountType",
]
