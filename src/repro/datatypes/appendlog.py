"""Append-only log serial data type.

The append-only log makes reorderings directly observable (the log contents
depend on the order of appends), which makes it a good stress type for the
eventual-serializability trace checker and the property-based tests.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.datatypes.base import Operator, SerialDataType


class AppendLogType(SerialDataType):
    """An append-only sequence of entries.

    Operators:

    * ``append(x)`` — append ``x``; reports the index at which it landed;
    * ``read`` — report the whole log (a tuple);
    * ``length`` — report the number of entries;
    * ``last`` — report the final entry (or ``None`` if empty).
    """

    name = "appendlog"

    @staticmethod
    def append(entry: Any) -> Operator:
        return Operator("append", (entry,))

    @staticmethod
    def read() -> Operator:
        return Operator("read")

    @staticmethod
    def length() -> Operator:
        return Operator("length")

    @staticmethod
    def last() -> Operator:
        return Operator("last")

    def initial_state(self) -> Tuple[Any, ...]:
        return ()

    def apply(self, state: Tuple[Any, ...], operator: Operator) -> Tuple[Tuple[Any, ...], Any]:
        if operator.name == "append":
            (entry,) = operator.args
            return state + (entry,), len(state)
        if operator.name == "read":
            return state, state
        if operator.name == "length":
            return state, len(state)
        if operator.name == "last":
            return state, (state[-1] if state else None)
        raise ValueError(f"unknown appendlog operator: {operator.name}")

    def is_read_only(self, op: Operator) -> bool:
        return op.name in ("read", "length", "last")

    def commute(self, a: Operator, b: Operator) -> bool:
        # Appends never commute (the log order differs).
        return self.is_read_only(a) or self.is_read_only(b)

    def oblivious(self, a: Operator, b: Operator) -> bool:
        return self.is_read_only(b)

    def check_operator(self, operator: Operator) -> None:
        if operator.name == "append":
            if len(operator.args) != 1:
                raise ValueError("append takes exactly one argument")
        elif operator.name in ("read", "length", "last"):
            if operator.args:
                raise ValueError(f"{operator.name} takes no arguments")
        else:
            raise ValueError(f"unknown appendlog operator: {operator.name}")
