"""FIFO queue serial data type."""

from __future__ import annotations

from typing import Any, Tuple

from repro.datatypes.base import Operator, SerialDataType


class QueueType(SerialDataType):
    """A FIFO queue.

    Operators:

    * ``enqueue(x)`` — add ``x`` at the tail; reports the queue length after;
    * ``dequeue`` — remove and report the head (or ``None`` if empty);
    * ``peek`` — report the head without removing it (or ``None``);
    * ``length`` — report the number of queued items.
    """

    name = "queue"

    @staticmethod
    def enqueue(item: Any) -> Operator:
        return Operator("enqueue", (item,))

    @staticmethod
    def dequeue() -> Operator:
        return Operator("dequeue")

    @staticmethod
    def peek() -> Operator:
        return Operator("peek")

    @staticmethod
    def length() -> Operator:
        return Operator("length")

    def initial_state(self) -> Tuple[Any, ...]:
        return ()

    def apply(self, state: Tuple[Any, ...], operator: Operator) -> Tuple[Tuple[Any, ...], Any]:
        if operator.name == "enqueue":
            (item,) = operator.args
            new = state + (item,)
            return new, len(new)
        if operator.name == "dequeue":
            if not state:
                return state, None
            return state[1:], state[0]
        if operator.name == "peek":
            return state, (state[0] if state else None)
        if operator.name == "length":
            return state, len(state)
        raise ValueError(f"unknown queue operator: {operator.name}")

    def is_read_only(self, op: Operator) -> bool:
        return op.name in ("peek", "length")

    def commute(self, a: Operator, b: Operator) -> bool:
        # Queue mutations essentially never commute (order is observable).
        return self.is_read_only(a) or self.is_read_only(b)

    def oblivious(self, a: Operator, b: Operator) -> bool:
        return self.is_read_only(b)

    def check_operator(self, operator: Operator) -> None:
        if operator.name == "enqueue":
            if len(operator.args) != 1:
                raise ValueError("enqueue takes exactly one argument")
        elif operator.name in ("dequeue", "peek", "length"):
            if operator.args:
                raise ValueError(f"{operator.name} takes no arguments")
        else:
            raise ValueError(f"unknown queue operator: {operator.name}")
