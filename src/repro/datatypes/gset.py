"""Grow-only set serial data type.

All ``insert`` operators commute with each other, and membership queries are
read-only, which makes the grow-only set the canonical "mostly causal"
workload for an eventually-serializable service: with per-element ``prev``
dependencies it needs no strict operations at all.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Tuple

from repro.datatypes.base import Operator, SerialDataType


class GSetType(SerialDataType):
    """A grow-only set of hashable elements.

    Operators:

    * ``insert(x)`` — add ``x``; reports ``True`` if ``x`` was new;
    * ``contains(x)`` — report whether ``x`` is in the set;
    * ``size`` — report the number of elements;
    * ``snapshot`` — report the whole set (as a frozenset).
    """

    name = "gset"

    @staticmethod
    def insert(element: Any) -> Operator:
        return Operator("insert", (element,))

    @staticmethod
    def contains(element: Any) -> Operator:
        return Operator("contains", (element,))

    @staticmethod
    def size() -> Operator:
        return Operator("size")

    @staticmethod
    def snapshot() -> Operator:
        return Operator("snapshot")

    def initial_state(self) -> FrozenSet[Any]:
        return frozenset()

    def apply(self, state: FrozenSet[Any], operator: Operator) -> Tuple[FrozenSet[Any], Any]:
        if operator.name == "insert":
            (element,) = operator.args
            if element in state:
                return state, False
            return state | {element}, True
        if operator.name == "contains":
            (element,) = operator.args
            return state, element in state
        if operator.name == "size":
            return state, len(state)
        if operator.name == "snapshot":
            return state, state
        raise ValueError(f"unknown gset operator: {operator.name}")

    def is_read_only(self, op: Operator) -> bool:
        return op.name in ("contains", "size", "snapshot")

    def commute(self, a: Operator, b: Operator) -> bool:
        # inserts always commute; queries always commute with everything for
        # the *state*, though they are not oblivious to inserts.
        if self.is_read_only(a) or self.is_read_only(b):
            return True
        return True

    def oblivious(self, a: Operator, b: Operator) -> bool:
        if self.is_read_only(b):
            return True
        # insert(x) reports whether x was new, so it is oblivious to inserts
        # of *other* elements only.
        if a.name == "insert" and b.name == "insert":
            return a.args != b.args
        # queries are not oblivious to inserts (except contains of a different
        # element).
        if a.name == "contains" and b.name == "insert":
            return a.args != b.args
        return False

    def check_operator(self, operator: Operator) -> None:
        if operator.name in ("insert", "contains"):
            if len(operator.args) != 1:
                raise ValueError(f"{operator.name} takes exactly one argument")
        elif operator.name in ("size", "snapshot"):
            if operator.args:
                raise ValueError(f"{operator.name} takes no arguments")
        else:
            raise ValueError(f"unknown gset operator: {operator.name}")
