"""Unified replica feature configuration (``ReplicaConfig``).

Every deployment harness — :class:`~repro.algorithm.system.AlgorithmSystem`,
:class:`~repro.sim.cluster.SimulationParams` (and through it
:class:`~repro.sim.cluster.SimulatedCluster`),
:class:`~repro.service.frontend.ShardedFrontend`,
:class:`~repro.sim.sharded.ShardedCluster` and
:class:`~repro.net.runtime.NetCluster` — switches the same replica-level
features: the fast core, delta gossip, incremental replay, checkpoint
compaction, advert/pull gossip.  Historically each entry point re-declared
them as loose keyword arguments; :class:`ReplicaConfig` is the one shared
dataclass they all accept (``config=...``), with the loose kwargs kept as a
deprecation shim (:func:`merge_legacy_config`).

Two of the fields only mean something under the discrete-event simulator
(``batch_gossip``, ``compaction_interval``); the algorithm-level entry
points ignore them, which keeps one config object usable across every
harness.  ``compaction`` accepts a per-shard mapping only at the sharded
entry points; the single-system entry points require a plain policy.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional, Union

from repro.algorithm.checkpoint import CompactionPolicy
from repro.common import ConfigurationError

#: Sentinel distinguishing "kwarg not passed" from an explicit default — the
#: deprecation shims need the distinction to warn only on real legacy usage.
UNSET: Any = object()

#: Compaction configuration: one policy everywhere, or (sharded entry points
#: only) a mapping from shard id to policy.
CompactionLike = Union[None, CompactionPolicy, Mapping[str, CompactionPolicy]]


@dataclass(frozen=True)
class ReplicaConfig:
    """Replica-level feature flags shared by every deployment entry point.

    Parameters mirror the per-feature ``configure_*`` switches on
    :class:`~repro.algorithm.replica.ReplicaCore`; see each harness for what
    the feature does there.  Instances are immutable and reusable across
    harnesses and shards.
    """

    #: Use :class:`~repro.algorithm.fastcore.FastReplicaCore` as the replica
    #: variant (ignored when an explicit ``replica_factory`` is supplied).
    fast_core: bool = False
    #: Use :class:`~repro.algorithm.batchcore.BatchReplicaCore` — the
    #: struct-of-arrays batch replay kernel layered on the fast core.
    #: Requires ``fast_core=True`` (the kernel extends the fast mirrors).
    batch_replay: bool = False
    #: Destination-specific delta gossip instead of full-state payloads.
    delta_gossip: bool = False
    #: With delta gossip, the periodic full-state fallback interval.
    full_state_interval: int = 8
    #: Cache the last response replay, re-applying only the changed suffix.
    incremental_replay: bool = False
    #: Stability-driven checkpoint compaction policy (``None`` = disabled).
    #: Sharded entry points additionally accept a per-shard mapping.
    compaction: CompactionLike = None
    #: Advert/pull checkpoint gossip (compact advert + on-demand transfer).
    advert_gossip: bool = False
    #: With advert gossip, retained values per transfer chunk (``None`` = 1 msg).
    checkpoint_chunk: Optional[int] = None
    #: Simulator-only: coalesce same-instant gossip arrivals per replica.
    batch_gossip: bool = False
    #: Simulator-only: force a compaction sweep at this simulated interval.
    compaction_interval: Optional[float] = None

    def __post_init__(self) -> None:
        if self.batch_replay and not self.fast_core:
            raise ConfigurationError(
                "batch_replay=True requires fast_core=True: the batch kernel "
                "extends the fast core's interned mirrors"
            )
        if self.full_state_interval < 1:
            raise ConfigurationError("full_state_interval must be at least 1")
        if self.checkpoint_chunk is not None and self.checkpoint_chunk < 1:
            raise ConfigurationError("checkpoint_chunk must be at least 1 or None")
        if self.compaction_interval is not None:
            if self.compaction is None:
                raise ConfigurationError("compaction_interval requires a compaction policy")
            if self.compaction_interval <= 0:
                raise ConfigurationError("compaction_interval must be positive")

    # -- harness adapters ------------------------------------------------------

    def require_single_policy(self, owner: str) -> Optional[CompactionPolicy]:
        """The compaction policy for a single-system harness (rejects the
        per-shard mapping form, which only sharded entry points resolve)."""
        if isinstance(self.compaction, Mapping):
            raise ConfigurationError(
                f"{owner} manages one replica group; per-shard compaction "
                "mappings only apply to the sharded entry points"
            )
        return self.compaction

    def for_shard(self, shard: str) -> "ReplicaConfig":
        """This config with the per-shard compaction mapping resolved for
        *shard* (shards absent from the mapping run uncompacted; the
        interval timer is dropped with the policy, as the simulator's
        parameter validation requires)."""
        if not isinstance(self.compaction, Mapping):
            return self
        policy = self.compaction.get(shard)
        interval = self.compaction_interval if policy is not None else None
        return ReplicaConfig(
            **{
                **self.as_dict(),
                "compaction": policy,
                "compaction_interval": interval,
            }
        )

    def configure_core(self, core) -> None:
        """Apply the feature switches to one replica core (the compaction
        field must already be a plain policy here)."""
        if self.delta_gossip:
            core.configure_delta_gossip(True, self.full_state_interval)
        if self.incremental_replay:
            core.enable_incremental_replay()
        if self.compaction is not None:
            core.configure_compaction(self.compaction)
        if self.advert_gossip:
            core.configure_advert_gossip(True, self.checkpoint_chunk)

    def as_dict(self) -> Dict[str, Any]:
        """All fields as a plain dict (e.g. for SimulationParams overlay)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: Field names a legacy shim may collect (subset per entry point).
LEGACY_FIELD_NAMES = tuple(f.name for f in fields(ReplicaConfig))

#: Entry points that already emitted their deprecation warning this process.
#: A workload constructing thousands of clusters through a legacy call site
#: (the fuzzer, the benchmarks) should nag once, not thousands of times.
_WARNED_OWNERS: set = set()


def reset_legacy_warnings() -> None:
    """Forget which call sites already warned (test isolation)."""
    _WARNED_OWNERS.clear()


def merge_legacy_config(
    config: Optional[ReplicaConfig],
    legacy: Dict[str, Any],
    owner: str,
    stacklevel: int = 3,
) -> ReplicaConfig:
    """Resolve ``config=`` against the deprecated loose kwargs.

    *legacy* maps field names to the received kwarg values, with
    :data:`UNSET` marking "not passed".  Passing both a config and an
    explicit legacy kwarg is rejected (silently preferring one would hide a
    conflicting intent); passing only legacy kwargs warns once per entry
    point per process (:func:`reset_legacy_warnings` clears the registry)
    and builds the equivalent :class:`ReplicaConfig`.
    """
    provided = {name: value for name, value in legacy.items() if value is not UNSET}
    if config is not None:
        if provided:
            raise ConfigurationError(
                f"{owner}: pass replica features via config=ReplicaConfig(...) "
                f"or the legacy kwargs ({', '.join(sorted(provided))}), not both"
            )
        return config
    if provided and owner not in _WARNED_OWNERS:
        _WARNED_OWNERS.add(owner)
        warnings.warn(
            f"{owner}: the loose feature kwargs ({', '.join(sorted(provided))}) are "
            "deprecated; pass config=ReplicaConfig(...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
    return ReplicaConfig(**provided)
