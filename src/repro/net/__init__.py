"""``repro.net`` — the network runtime: a compact binary wire codec and an
asyncio harness that drives the unchanged replica cores over real transports.

Three pieces (see docs/architecture.md, "The network runtime"):

* :mod:`repro.net.codec` — an SSZ-inspired deterministic binary encoding for
  every protocol message (request, response/NACK, gossip full/delta/advert,
  pull, checkpoint-transfer chunk) with varint interval packing, per-frame
  interned identifier tables and length-prefixed framing; content digests are
  computed over the canonical encoding.
* :mod:`repro.net.wire` — :class:`~repro.net.wire.WireCluster`, the
  deterministic wire harness: the seeded simulator with every message passed
  through the codec as real bytes (encode -> frame -> decode), which is what
  measures bytes-on-the-wire (benchmark E13) and replays conformance vectors
  over the net transport (``--runtime=net``).
* :mod:`repro.net.runtime` / :mod:`repro.net.driver` — one asyncio task per
  replica speaking the codec over TCP (or the in-process duplex-stream
  transport), with per-peer bounded send queues and frame coalescing, plus a
  concurrent multi-client load driver reporting ops/s, latency percentiles
  and actual bytes per message kind.
"""

from repro.net.codec import (
    WIRE_VERSION,
    FrameError,
    decode_frame,
    encode_frame,
    encode_message,
    frame_digest,
    json_frame,
    message_digest,
)
from repro.net.runtime import NetCluster, NetParams
from repro.net.wire import WireCluster, WireStats

__all__ = [
    "WIRE_VERSION",
    "FrameError",
    "decode_frame",
    "encode_frame",
    "encode_message",
    "frame_digest",
    "json_frame",
    "message_digest",
    "DriverReport",
    "LoadSpec",
    "run_load",
    "NetCluster",
    "NetParams",
    "WireCluster",
    "WireStats",
]

_DRIVER_EXPORTS = ("DriverReport", "LoadSpec", "run_load")


def __getattr__(name):
    # The driver re-exports are lazy: an eager import would place
    # ``repro.net.driver`` in ``sys.modules`` before ``python -m
    # repro.net.driver`` executes it as ``__main__`` (a RuntimeWarning on
    # the documented CLI invocation).
    if name in _DRIVER_EXPORTS:
        from repro.net import driver

        return getattr(driver, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
