"""The deterministic wire harness: the seeded simulator with real bytes.

:class:`WireCluster` subclasses :class:`~repro.sim.cluster.SimulatedCluster`
and overrides its :meth:`~repro.sim.cluster.SimulatedCluster._transit` hook so
that **every** message — request, response, gossip, pull, transfer — is
pushed through the binary codec on its way from sender to receiver:

    message object --encode--> frame bytes --decode--> fresh message object

The receiver therefore operates on a genuinely deserialized copy (anything
the codec lost would change behaviour), while the event schedule is
bit-identical to the plain simulator's: the hook sits between the network's
loss/delay decisions and delivery, consuming no randomness.  That gives two
things at once:

* a *lockstep twin* proof that the codec is lossless over every message of
  every scenario (same seeds -> same responses, same eventual order, same
  digests as the plain simulator), which is how ``--runtime=net`` replays the
  conformance corpus; and
* exact **bytes-on-the-wire** accounting per message kind
  (:class:`WireStats`), replacing the ``wire_estimate`` op-ref counts in the
  E8/E11 payload claims — benchmark E13 is built on this harness.

With ``json_baseline=True`` the harness additionally sizes each message
under the plain-JSON encoding (:func:`repro.net.codec.json_frame`), so one
run yields both sides of the binary-vs-JSON comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.net.codec import decode_frame, encode_message, json_frame
from repro.sim.cluster import SimulatedCluster

#: Message kinds accounted separately (the simulator's counter categories).
KINDS = ("request", "response", "gossip", "pull", "transfer")


@dataclass
class WireStats:
    """Actual bytes encoded onto the wire, by message kind.

    ``frames`` counts encoded frames (= messages here: the deterministic
    harness frames each message alone so attribution is exact; the asyncio
    runtime coalesces).  ``json_bytes`` is filled only when the harness was
    built with ``json_baseline=True``.
    """

    frames: int = 0
    bytes_by_kind: Dict[str, int] = field(default_factory=lambda: {k: 0 for k in KINDS})
    json_bytes_by_kind: Dict[str, int] = field(default_factory=lambda: {k: 0 for k in KINDS})

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_kind.values())

    @property
    def total_json_bytes(self) -> int:
        return sum(self.json_bytes_by_kind.values())

    def bytes_for(self, *kinds: str) -> int:
        return sum(self.bytes_by_kind[kind] for kind in kinds)


class WireCluster(SimulatedCluster):
    """A :class:`~repro.sim.cluster.SimulatedCluster` whose messages really
    cross the codec.  Same constructor; see the module docstring."""

    def __init__(self, *args, json_baseline: bool = False, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.wire_stats = WireStats()
        self._json_baseline = json_baseline

    def _transit(self, kind: str, message):
        frame = encode_message(message)
        self.wire_stats.frames += 1
        self.wire_stats.bytes_by_kind[kind] += len(frame)
        if self._json_baseline:
            self.wire_stats.json_bytes_by_kind[kind] += len(json_frame([message]))
        (decoded,) = decode_frame(frame)
        return decoded
