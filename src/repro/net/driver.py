"""Concurrent multi-client load driver for the asyncio runtime.

Drives a :class:`~repro.net.runtime.NetCluster` with one coroutine per
client, in either loop discipline:

* **closed loop** — each client keeps exactly one operation outstanding
  (submit, await the value, optionally think, repeat): the classic
  saturation-throughput shape;
* **open loop** — arrivals follow a Poisson process with the configured mean
  interarrival time, regardless of completions: the latency-under-offered-
  load shape.

Keys are drawn zipfian over a :class:`~repro.service.keyed.KeyedStore` (the
same ``zipfian_cdf`` the simulator workloads use) when ``num_keys`` is set;
otherwise operations hit the flat data type directly.  The report carries
ops/s, latency percentiles from per-operation wall-clock timing, and the
**actual bytes sent per message kind** out of the cluster's traffic stats.

Runnable as a module (see the README quick-start)::

    PYTHONPATH=src python -m repro.net.driver --replicas 4 --clients 8 \\
        --ops 200 --transport tcp --gossip delta --fast-core
"""

from __future__ import annotations

import argparse
import asyncio
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.algorithm.checkpoint import CompactionPolicy
from repro.datatypes.base import Operator
from repro.net.runtime import NetCluster, NetParams, OperationFailed
from repro.sim.workload import CLIENT_SEED_STRIDE, zipfian_cdf

#: Builds one operator given the per-client RNG and the operation index.
OperatorFactory = Callable[[random.Random, int], Operator]


def _default_factory(rng: random.Random, index: int) -> Operator:
    return Operator("add", (1,))


def keyed_factory(
    num_keys: int,
    zipf_exponent: float = 1.1,
    inner: Optional[OperatorFactory] = None,
) -> OperatorFactory:
    """Zipfian-keyed operators over a :class:`~repro.service.keyed.KeyedStore`
    (rank-to-key assignment is identity; spread clients via seeds)."""
    from repro.service.keyed import KeyedStore

    cdf = zipfian_cdf(num_keys, zipf_exponent)
    base = inner or _default_factory

    def factory(rng: random.Random, index: int) -> Operator:
        from bisect import bisect_left

        rank = bisect_left(cdf, rng.random())
        return KeyedStore.at(f"k{min(rank, num_keys - 1)}", base(rng, index))

    return factory


@dataclass
class LoadSpec:
    """What each client does.  ``mode`` is ``"closed"`` or ``"open"``."""

    operations_per_client: int = 100
    mode: str = "closed"
    #: Open loop: mean interarrival time (s) of the Poisson process.
    mean_interarrival: float = 0.01
    #: Closed loop: think time (s) between completion and next submit.
    think_time: float = 0.0
    #: Fraction of operations submitted strict (block until stable).
    strict_fraction: float = 0.0
    #: Zipfian keyed access when set (requires a KeyedStore data type).
    num_keys: Optional[int] = None
    zipf_exponent: float = 1.1
    operator_factory: Optional[OperatorFactory] = None
    seed: int = 0
    #: Per-operation response timeout (s).
    timeout: float = 30.0

    def resolve_factory(self) -> OperatorFactory:
        if self.operator_factory is not None:
            return self.operator_factory
        if self.num_keys is not None:
            return keyed_factory(self.num_keys, self.zipf_exponent)
        return _default_factory


@dataclass
class DriverReport:
    """What the run measured."""

    operations: int = 0
    failures: int = 0
    duration: float = 0.0
    ops_per_sec: float = 0.0
    latency_mean: float = 0.0
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    bytes_sent: int = 0
    bytes_received: int = 0
    bytes_per_op: float = 0.0
    payload_bytes_by_kind: Dict[str, int] = field(default_factory=dict)
    messages_by_kind: Dict[str, int] = field(default_factory=dict)

    def format(self) -> str:
        lines = [
            f"operations      {self.operations}  (failures {self.failures})",
            f"duration        {self.duration:.3f} s",
            f"throughput      {self.ops_per_sec:,.0f} ops/s",
            "latency         mean {:.2f} ms   p50 {:.2f}   p95 {:.2f}   p99 {:.2f}".format(
                self.latency_mean * 1e3,
                self.latency_p50 * 1e3,
                self.latency_p95 * 1e3,
                self.latency_p99 * 1e3,
            ),
            f"bytes on wire   sent {self.bytes_sent:,}  received {self.bytes_received:,}"
            f"  ({self.bytes_per_op:,.0f} B/op sent)",
        ]
        for kind in sorted(self.payload_bytes_by_kind):
            count = self.messages_by_kind.get(kind, 0)
            total = self.payload_bytes_by_kind[kind]
            mean = total / count if count else 0.0
            lines.append(f"  {kind:<9} {count:>8} msgs  {total:>12,} B  ({mean:,.0f} B/msg)")
        return "\n".join(lines)


def _percentile(latencies: List[float], fraction: float) -> float:
    if not latencies:
        return 0.0
    index = min(len(latencies) - 1, int(round(fraction * (len(latencies) - 1))))
    return latencies[index]


async def run_load(cluster: NetCluster, spec: LoadSpec) -> DriverReport:
    """Run *spec* against a started *cluster* and report.  The byte counters
    are deltas over the run (gossip idling before/after is excluded)."""
    if spec.mode not in ("closed", "open"):
        raise ValueError(f"unknown load mode {spec.mode!r}")
    factory = spec.resolve_factory()
    latencies: List[float] = []
    failures = [0]
    loop = asyncio.get_running_loop()

    async def one_op(client: str, rng: random.Random, index: int) -> None:
        operator = factory(rng, index)
        strict = spec.strict_fraction > 0 and rng.random() < spec.strict_fraction
        begin = loop.time()
        try:
            await cluster.submit(client, operator, strict=strict, timeout=spec.timeout)
        except (OperationFailed, asyncio.TimeoutError):
            failures[0] += 1
            return
        latencies.append(loop.time() - begin)

    async def closed_client(client: str, rng: random.Random) -> None:
        for index in range(spec.operations_per_client):
            await one_op(client, rng, index)
            if spec.think_time > 0:
                await asyncio.sleep(spec.think_time)

    async def open_client(client: str, rng: random.Random) -> None:
        pending: List[asyncio.Task] = []
        for index in range(spec.operations_per_client):
            pending.append(loop.create_task(one_op(client, rng, index)))
            await asyncio.sleep(rng.expovariate(1.0 / spec.mean_interarrival))
        await asyncio.gather(*pending)

    runner = closed_client if spec.mode == "closed" else open_client
    sent_before = cluster.stats.bytes_sent
    received_before = cluster.stats.bytes_received
    payload_before = dict(cluster.stats.payload_bytes_by_kind)
    messages_before = dict(cluster.stats.messages_by_kind)

    start = loop.time()
    await asyncio.gather(
        *(
            runner(cid, random.Random(spec.seed + i * CLIENT_SEED_STRIDE))
            for i, cid in enumerate(cluster.client_ids)
        )
    )
    duration = loop.time() - start

    latencies.sort()
    report = DriverReport(
        operations=len(latencies),
        failures=failures[0],
        duration=duration,
        ops_per_sec=len(latencies) / duration if duration > 0 else 0.0,
        latency_mean=sum(latencies) / len(latencies) if latencies else 0.0,
        latency_p50=_percentile(latencies, 0.50),
        latency_p95=_percentile(latencies, 0.95),
        latency_p99=_percentile(latencies, 0.99),
        bytes_sent=cluster.stats.bytes_sent - sent_before,
        bytes_received=cluster.stats.bytes_received - received_before,
        payload_bytes_by_kind={
            kind: cluster.stats.payload_bytes_by_kind[kind] - payload_before.get(kind, 0)
            for kind in cluster.stats.payload_bytes_by_kind
        },
        messages_by_kind={
            kind: cluster.stats.messages_by_kind[kind] - messages_before.get(kind, 0)
            for kind in cluster.stats.messages_by_kind
        },
    )
    if report.operations:
        report.bytes_per_op = report.bytes_sent / report.operations
    return report


# --------------------------------------------------------------------------- #
# CLI                                                                         #
# --------------------------------------------------------------------------- #

def _build_cluster(args: argparse.Namespace) -> NetCluster:
    from repro.datatypes.counter import CounterType
    from repro.service.keyed import KeyedStore

    params = NetParams(
        gossip_period=args.gossip_period,
        delta_gossip=args.gossip in ("delta", "advert"),
        advert_gossip=args.gossip == "advert",
        compaction=CompactionPolicy() if args.gossip == "advert" else None,
        fast_core=args.fast_core or args.batch_core,
        batch_replay=args.batch_core,
        incremental_replay=True,
    )
    data_type: Any = KeyedStore(CounterType()) if args.keys else CounterType()
    return NetCluster(
        data_type,
        num_replicas=args.replicas,
        client_ids=tuple(f"c{i}" for i in range(args.clients)),
        params=params,
        transport=args.transport,
    )


async def _main_async(args: argparse.Namespace) -> DriverReport:
    cluster = _build_cluster(args)
    spec = LoadSpec(
        operations_per_client=args.ops,
        mode=args.mode,
        mean_interarrival=args.interarrival,
        num_keys=args.keys if args.keys else None,
        seed=args.seed,
    )
    async with cluster:
        report = await run_load(cluster, spec)
        await cluster.quiesce(timeout=10.0)
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.driver",
        description="Load a NetCluster and report throughput, latency and bytes on the wire.",
    )
    parser.add_argument("--replicas", type=int, default=4)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--ops", type=int, default=200, help="operations per client")
    parser.add_argument("--transport", choices=("memory", "tcp"), default="tcp")
    parser.add_argument("--gossip", choices=("full", "delta", "advert"), default="delta")
    parser.add_argument("--gossip-period", type=float, default=0.05)
    parser.add_argument("--mode", choices=("closed", "open"), default="closed")
    parser.add_argument("--interarrival", type=float, default=0.01,
                        help="open-loop mean interarrival (s)")
    parser.add_argument("--keys", type=int, default=0,
                        help="zipfian keyed access over this many keys (0 = flat counter)")
    parser.add_argument("--fast-core", action="store_true")
    parser.add_argument("--batch-core", action="store_true",
                        help="struct-of-arrays batch replay kernel (implies --fast-core)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    report = asyncio.run(_main_async(args))
    print(report.format())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
