"""The asyncio replica runtime: real concurrency, real bytes, same cores.

One asyncio task group per replica speaks the binary codec
(:mod:`repro.net.codec`) over a duplex stream transport, driving the
*unchanged* :class:`~repro.algorithm.replica.ReplicaCore` /
:class:`~repro.algorithm.fastcore.FastReplicaCore` state machines — the same
variant interface the action-level driver and the seeded simulator use, so
this is the third harness over one algorithm.

Transports
    ``tcp``
        every replica listens on a loopback socket (OS-assigned port);
        replicas dial one outgoing connection per peer, clients dial one
        duplex connection per replica (requests out, responses back).
    ``memory``
        the same stream discipline over in-process pipes built from
        ``asyncio.StreamReader`` pairs — no OS sockets, deterministic enough
        for CI, and a crashed endpoint breaks its peers' writers exactly
        like a reset socket would.

Framing and flow control
    Every frame is length-prefixed (4-byte big-endian).  Each sender->peer
    link owns a **bounded** send queue drained by one writer task, which
    **coalesces** everything currently queued into a single frame (one
    magic/table overhead amortized over the batch).  A full queue means the
    peer is slow: clients and the pull/transfer plane block on ``put``
    (backpressure), while the gossip tick *skips* the peer for that round
    before building a message — deliberately, since a skipped gossip is
    indistinguishable from a lost one and, under delta gossip, building a
    message that is then dropped would burn a stream seqno and stall the
    receiver's cumulative ack.

Loss tolerance
    Connections (re)connect lazily; a write onto a broken link loses the
    batch, and nothing retransmits at the transport level.  That is the
    algorithm's own fault model — gossip re-sends knowledge every period,
    pulls are re-queued off the next advert, and the front end retries
    unanswered requests — so replica crash/recovery needs no connection
    handshake beyond re-dialing.

The cluster exposes the same oracle surface as the simulator (``requested``
/ ``responded`` / ``trace`` / ``replicas`` / ``compaction_ledger``), so
:func:`repro.sim.cluster.algorithm_view_of` and
:func:`~repro.sim.cluster.eventual_order_of` — and with them the Section 7/8
invariant checker and the serializability oracles — run unmodified against a
quiesced network deployment.
"""

from __future__ import annotations

import asyncio
import socket
import struct
from dataclasses import InitVar, dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.algorithm.checkpoint import CompactionLedger, CompactionPolicy
from repro.config import ReplicaConfig
from repro.algorithm.batchcore import core_factory
from repro.algorithm.frontend import FrontEndCore
from repro.algorithm.messages import ResponseMessage
from repro.algorithm.replica import ReplicaCore
from repro.common import (
    ConfigurationError,
    EsdsError,
    OperationId,
    OperationIdGenerator,
)
from repro.core.operations import OperationDescriptor, make_operation
from repro.datatypes.base import Operator, SerialDataType
from repro.net.codec import decode_frame, encode_frame_detailed
from repro.spec.guarantees import TraceRecord

#: Upper bound on one frame (a defensive limit, far above any real frame).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class OperationFailed(EsdsError):
    """Every replica NACKed the operation (its retained value aged out)."""


@dataclass
class NetParams:
    """Policy knobs of a network deployment.  The gossip-mode flags mirror
    :class:`~repro.sim.cluster.SimulationParams` (same core configuration
    calls); the transport knobs are runtime-specific."""

    #: Seconds between gossip rounds at each replica.
    gossip_period: float = 0.05
    #: Ack-based destination deltas instead of full state (Section 10.4).
    delta_gossip: bool = False
    #: With delta gossip, full-state fallback every this-many sends per peer.
    full_state_interval: int = 8
    #: Advert/pull checkpoint gossip (bounded steady-state payload).
    advert_gossip: bool = False
    #: With advert gossip, max retained values per transfer chunk.
    checkpoint_chunk: Optional[int] = None
    #: Stability-driven checkpoint compaction policy; ``None`` disables.
    compaction: Optional[CompactionPolicy] = None
    #: Suffix-only response replay at the replicas.
    incremental_replay: bool = False
    #: Use :class:`~repro.algorithm.fastcore.FastReplicaCore`.
    fast_core: bool = False
    #: Use the struct-of-arrays batch replay kernel
    #: (:class:`~repro.algorithm.batchcore.BatchReplicaCore`) on top of the
    #: fast core (requires ``fast_core=True``); per-frame gossip batches
    #: merge through ``receive_gossip_batch``.
    batch_replay: bool = False
    #: Bounded per-peer send queue length (messages). Full queue = slow peer:
    #: senders block (clients, pulls) or skip the round (gossip).
    send_queue_limit: int = 64
    #: Max messages coalesced into one frame per writer wakeup.
    coalesce_limit: int = 64
    #: Front ends re-send an unanswered request after this many seconds
    #: (redirecting away from replicas that NACKed, like the simulator).
    request_retry: float = 1.0
    #: Delay before a broken link re-dials its peer.
    reconnect_delay: float = 0.05
    #: Unified replica feature configuration: when given, its replica-level
    #: fields replace the loose per-feature fields above, so one
    #: :class:`~repro.config.ReplicaConfig` threads through every harness.
    #: The simulator-only fields (``batch_gossip``, ``compaction_interval``)
    #: are ignored here, as documented on :mod:`repro.config`.
    replica: InitVar[Optional[ReplicaConfig]] = None

    def __post_init__(self, replica: Optional[ReplicaConfig] = None) -> None:
        if replica is not None:
            self.fast_core = replica.fast_core
            self.batch_replay = replica.batch_replay
            self.delta_gossip = replica.delta_gossip
            self.full_state_interval = replica.full_state_interval
            self.incremental_replay = replica.incremental_replay
            self.compaction = replica.require_single_policy("NetParams")
            self.advert_gossip = replica.advert_gossip
            self.checkpoint_chunk = replica.checkpoint_chunk
        if self.gossip_period <= 0:
            raise ConfigurationError("gossip_period must be positive")
        if self.send_queue_limit < 1:
            raise ConfigurationError("send_queue_limit must be at least 1")
        if self.coalesce_limit < 1:
            raise ConfigurationError("coalesce_limit must be at least 1")
        if self.request_retry <= 0:
            raise ConfigurationError("request_retry must be positive")
        if self.full_state_interval < 1:
            raise ConfigurationError("full_state_interval must be at least 1")

    @property
    def replica_config(self) -> ReplicaConfig:
        """The replica-level slice of these parameters as the unified
        :class:`~repro.config.ReplicaConfig` (the loose fields stay the
        storage; this is the one object the runtime configures cores from)."""
        return ReplicaConfig(
            fast_core=self.fast_core,
            batch_replay=self.batch_replay,
            delta_gossip=self.delta_gossip,
            full_state_interval=self.full_state_interval,
            incremental_replay=self.incremental_replay,
            compaction=self.compaction,
            advert_gossip=self.advert_gossip,
            checkpoint_chunk=self.checkpoint_chunk,
        )


@dataclass
class NetStats:
    """Actual traffic accounting.  ``payload_bytes_by_kind`` attributes each
    message's encoded payload to its kind; ``bytes_sent`` additionally
    counts the shared frame overhead (magic, table, length prefixes)."""

    KINDS = ("request", "response", "gossip", "pull", "transfer")

    frames_sent: int = 0
    bytes_sent: int = 0
    frames_received: int = 0
    bytes_received: int = 0
    messages_by_kind: Dict[str, int] = field(
        default_factory=lambda: {k: 0 for k in NetStats.KINDS}
    )
    payload_bytes_by_kind: Dict[str, int] = field(
        default_factory=lambda: {k: 0 for k in NetStats.KINDS}
    )
    #: Gossip rounds skipped because a peer's send queue was full.
    gossip_skipped: int = 0

    def record_frame(
        self, batch: Sequence[Tuple[str, Any]], frame_len: int, sizes: Sequence[int]
    ) -> None:
        self.frames_sent += 1
        self.bytes_sent += frame_len + _LEN.size
        for (kind, _), size in zip(batch, sizes):
            self.messages_by_kind[kind] += 1
            self.payload_bytes_by_kind[kind] += size


# --------------------------------------------------------------------------- #
# Stream helpers (shared by both transports)                                  #
# --------------------------------------------------------------------------- #

async def read_frame(reader) -> Optional[bytes]:
    """Read one length-prefixed frame; ``None`` on EOF / reset."""
    try:
        header = await reader.readexactly(_LEN.size)
    except (asyncio.IncompleteReadError, ConnectionError, OSError):
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise EsdsError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES} limit")
    try:
        return await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError, OSError):
        return None


async def write_frame(writer, frame: bytes) -> None:
    """Write one length-prefixed frame."""
    writer.write(_LEN.pack(len(frame)) + frame)
    await writer.drain()


async def _read_hello(reader) -> Optional[str]:
    frame = await read_frame(reader)
    if frame is None:
        return None
    return frame.decode("utf-8")


async def _write_hello(writer, name: str) -> None:
    await write_frame(writer, name.encode("utf-8"))


# --------------------------------------------------------------------------- #
# In-process transport: StreamReader pairs wired back to back                 #
# --------------------------------------------------------------------------- #

class _MemoryWriter:
    """Write end of an in-process pipe.  Closing it EOFs the peer's reader
    and *breaks* the peer's write end, so a crashed endpoint surfaces to its
    peers as a reset connection — same failure surface as a socket."""

    def __init__(self, peer_reader: asyncio.StreamReader) -> None:
        self._peer_reader = peer_reader
        self._peer_writer: Optional["_MemoryWriter"] = None
        self._closed = False
        self._broken = False

    def write(self, data: bytes) -> None:
        if self._closed or self._broken:
            raise ConnectionResetError("in-process peer closed")
        self._peer_reader.feed_data(data)

    async def drain(self) -> None:
        if self._closed or self._broken:
            raise ConnectionResetError("in-process peer closed")
        # Yield to the event loop so readers run; there is no real buffer.
        await asyncio.sleep(0)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._peer_reader.feed_eof()
        if self._peer_writer is not None:
            self._peer_writer._broken = True

    def is_closing(self) -> bool:
        return self._closed

    async def wait_closed(self) -> None:
        return


class _MemoryTransport:
    """The registry of listening in-process nodes."""

    def __init__(self) -> None:
        self._handlers: Dict[str, Any] = {}

    async def listen(self, name: str, handler) -> "_MemoryServer":
        self._handlers[name] = handler
        return _MemoryServer(self, name)

    async def connect(self, name: str):
        handler = self._handlers.get(name)
        if handler is None:
            raise ConnectionRefusedError(f"no listener named {name!r}")
        here_reader = asyncio.StreamReader()
        there_reader = asyncio.StreamReader()
        here_writer = _MemoryWriter(there_reader)
        there_writer = _MemoryWriter(here_reader)
        here_writer._peer_writer = there_writer
        there_writer._peer_writer = here_writer
        asyncio.get_running_loop().create_task(handler(there_reader, there_writer))
        return here_reader, here_writer


class _MemoryServer:
    def __init__(self, transport: _MemoryTransport, name: str) -> None:
        self._transport = transport
        self._name = name

    def close(self) -> None:
        self._transport._handlers.pop(self._name, None)

    async def wait_closed(self) -> None:
        return


# --------------------------------------------------------------------------- #
# TCP transport (loopback)                                                    #
# --------------------------------------------------------------------------- #

def _set_nodelay(writer) -> None:
    """Disable Nagle on a TCP stream.  The protocol is strictly small
    request/response and gossip frames; with Nagle on, every sub-MSS frame
    waits for the peer's delayed ACK (~40ms on Linux loopback), which caps
    a ping-pong client at ~25 ops/s regardless of how fast the replicas
    are.  Both the dialing and the accepting side must opt out — either
    side's Nagle re-introduces the stall."""
    sock = writer.get_extra_info("socket")
    if sock is not None:
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # not a TCP socket (or a platform without the knob)


class _TcpTransport:
    """Loopback TCP with a name -> (host, port) registry, resolved at every
    connect so a recovered replica's fresh port is picked up lazily."""

    def __init__(self) -> None:
        self._addresses: Dict[str, Tuple[str, int]] = {}

    async def listen(self, name: str, handler):
        async def accept(reader, writer):
            _set_nodelay(writer)
            await handler(reader, writer)

        server = await asyncio.start_server(accept, "127.0.0.1", 0)
        self._addresses[name] = server.sockets[0].getsockname()[:2]
        return _TcpServer(self, name, server)

    async def connect(self, name: str):
        address = self._addresses.get(name)
        if address is None:
            raise ConnectionRefusedError(f"no listener named {name!r}")
        reader, writer = await asyncio.open_connection(*address)
        _set_nodelay(writer)
        return reader, writer


class _TcpServer:
    def __init__(self, transport: _TcpTransport, name: str, server: asyncio.AbstractServer) -> None:
        self._transport = transport
        self._name = name
        self._server = server

    def close(self) -> None:
        self._transport._addresses.pop(self._name, None)
        self._server.close()

    async def wait_closed(self) -> None:
        await self._server.wait_closed()


# --------------------------------------------------------------------------- #
# Send links                                                                  #
# --------------------------------------------------------------------------- #

class _SendLink:
    """One bounded outgoing queue + writer task toward a fixed peer.

    ``dial=True`` links own their connection (replica->replica: lazily
    (re)connected through the transport registry); ``dial=False`` links
    write onto an already-accepted connection's writer (replica->client
    responses ride the client's own duplex connection)."""

    def __init__(self, cluster: "NetCluster", source: str, dest: str,
                 writer=None) -> None:
        self._cluster = cluster
        self._source = source
        self._dest = dest
        self._writer = writer
        self._dial = writer is None
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=cluster.params.send_queue_limit)
        self.task = asyncio.get_running_loop().create_task(self._run())

    async def send(self, kind: str, message) -> None:
        await self.queue.put((kind, message))

    def send_nowait(self, kind: str, message) -> bool:
        try:
            self.queue.put_nowait((kind, message))
            return True
        except asyncio.QueueFull:
            return False

    def close(self) -> None:
        self.task.cancel()
        if self._writer is not None:
            try:
                self._writer.close()
            except Exception:
                pass
            self._writer = None

    async def _run(self) -> None:
        params = self._cluster.params
        while True:
            batch: List[Tuple[str, Any]] = [await self.queue.get()]
            while len(batch) < params.coalesce_limit:
                try:
                    batch.append(self.queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            frame, sizes = encode_frame_detailed([message for _, message in batch])
            if self._writer is None and self._dial:
                self._writer = await self._connect()
                if self._writer is None:
                    continue  # peer unreachable: the batch is lost (fault model)
            try:
                await write_frame(self._writer, frame)
            except (ConnectionError, OSError):
                self._drop_connection()
                continue  # batch lost; re-dial on the next one
            self._cluster.stats.record_frame(batch, len(frame), sizes)

    def _drop_connection(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
            except Exception:
                pass
        self._writer = None
        if not self._dial:
            # An accepted connection cannot be re-dialed from this side;
            # the peer re-connects and a fresh link replaces this one.
            self.task.cancel()

    async def _connect(self):
        try:
            reader, writer = await self._cluster.transport.connect(self._dest)
            await _write_hello(writer, self._source)
        except (ConnectionError, OSError):
            await asyncio.sleep(self._cluster.params.reconnect_delay)
            return None
        # The reverse direction of a dialed replica link is unused; leave
        # the reader unconsumed (EOF surfaces through write errors).
        return writer


# --------------------------------------------------------------------------- #
# Nodes                                                                       #
# --------------------------------------------------------------------------- #

class _ReplicaNode:
    def __init__(self, replica_id: str, core: ReplicaCore) -> None:
        self.id = replica_id
        self.core = core
        self.crashed = False
        self.server = None
        #: Outgoing replica->replica links.
        self.links: Dict[str, _SendLink] = {}
        #: Response links keyed by client id (onto accepted connections).
        self.client_out: Dict[str, _SendLink] = {}
        #: Tasks serving accepted connections (+ the gossip loop).
        self.tasks: Set[asyncio.Task] = set()

    def teardown(self) -> None:
        self.crashed = True
        if self.server is not None:
            self.server.close()
            self.server = None
        for task in self.tasks:
            task.cancel()
        self.tasks.clear()
        for link in self.links.values():
            link.close()
        self.links.clear()
        for link in self.client_out.values():
            link.close()
        self.client_out.clear()


class _ClientConn:
    """A client's duplex connection to one replica."""

    def __init__(self, writer, reader_task: asyncio.Task) -> None:
        self.writer = writer
        self.reader_task = reader_task
        self.lock = asyncio.Lock()
        self.dead = False

    def close(self) -> None:
        self.dead = True
        self.reader_task.cancel()
        try:
            self.writer.close()
        except Exception:
            pass


class NetCluster:
    """A full ESDS deployment over asyncio streams.

    Usage (an event loop must be running — tests wrap in ``asyncio.run``)::

        cluster = NetCluster(Counter(), num_replicas=4, client_ids=("c0",),
                             params=NetParams(delta_gossip=True), transport="tcp")
        async with cluster:
            value = await cluster.submit("c0", Operator("add", (5,)))
            await cluster.quiesce()

    The constructor mirrors :class:`~repro.sim.cluster.SimulatedCluster`
    where the concepts coincide; time is real, so there are no ``df``/``dg``
    knobs — delivery takes as long as the event loop takes.
    """

    def __init__(
        self,
        data_type: SerialDataType,
        num_replicas: int = 3,
        client_ids: Sequence[str] = ("c0",),
        params: Optional[NetParams] = None,
        transport: str = "memory",
        config: Optional[ReplicaConfig] = None,
    ) -> None:
        if num_replicas < 2:
            raise ConfigurationError("the algorithm assumes at least two replicas")
        self.data_type = data_type
        self.params = params or NetParams()
        if config is not None:
            # Overlay the unified replica configuration onto the transport
            # parameters (same precedence as SimulationParams(replica=...)).
            self.params = replace(self.params, replica=config)
        if transport == "memory":
            self.transport = _MemoryTransport()
        elif transport == "tcp":
            self.transport = _TcpTransport()
        else:
            raise ConfigurationError(f"unknown transport {transport!r}")

        self.replica_ids: Tuple[str, ...] = tuple(f"r{i}" for i in range(num_replicas))
        factory = core_factory(self.params.replica_config)
        self.replicas: Dict[str, ReplicaCore] = {
            rid: factory(rid, self.replica_ids, data_type) for rid in self.replica_ids
        }
        self.compaction_ledger = CompactionLedger()
        replica_config = self.params.replica_config
        for rid, core in self.replicas.items():
            replica_config.configure_core(core)
            core.on_compact = self.compaction_ledger.record

        self.client_ids: Tuple[str, ...] = tuple(client_ids)
        self.frontends: Dict[str, FrontEndCore] = {
            cid: FrontEndCore(cid, self.replica_ids) for cid in self.client_ids
        }
        self.id_generators: Dict[str, OperationIdGenerator] = {
            cid: OperationIdGenerator(cid) for cid in self.client_ids
        }
        self._affinity: Dict[str, str] = {
            cid: self.replica_ids[i % len(self.replica_ids)]
            for i, cid in enumerate(self.client_ids)
        }

        self.trace = TraceRecord()
        self.requested: Dict[OperationId, OperationDescriptor] = {}
        self.responded: Dict[OperationId, Any] = {}
        self.failed: Dict[OperationId, str] = {}
        self.stats = NetStats()

        self._nodes: Dict[str, _ReplicaNode] = {}
        self._client_conns: Dict[str, Dict[str, _ClientConn]] = {cid: {} for cid in self.client_ids}
        self._futures: Dict[OperationId, asyncio.Future] = {}
        self._started = False

    # -- lifecycle -------------------------------------------------------------

    async def __aenter__(self) -> "NetCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    async def start(self) -> None:
        if self._started:
            return
        self._started = True
        for rid in self.replica_ids:
            await self._start_replica(rid)
        for cid in self.client_ids:
            for rid in self.replica_ids:
                await self._connect_client(cid, rid)

    async def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        for node in self._nodes.values():
            node.teardown()
        for conns in self._client_conns.values():
            for conn in conns.values():
                conn.close()
            conns.clear()
        # Let cancellations unwind before the loop closes.
        await asyncio.sleep(0)

    async def _start_replica(self, rid: str) -> None:
        node = _ReplicaNode(rid, self.replicas[rid])
        self._nodes[rid] = node

        async def serve(reader, writer) -> None:
            await self._serve_connection(node, reader, writer)

        node.server = await self.transport.listen(rid, serve)
        for dest in self.replica_ids:
            if dest != rid:
                node.links[dest] = _SendLink(self, rid, dest)
        task = asyncio.get_running_loop().create_task(self._gossip_loop(node))
        node.tasks.add(task)

    # -- replica side ----------------------------------------------------------

    async def _serve_connection(self, node: _ReplicaNode, reader, writer) -> None:
        task = asyncio.current_task()
        node.tasks.add(task)
        try:
            sender = await _read_hello(reader)
            if sender is None or node.crashed:
                return
            if sender in self.frontends:
                # The client's duplex connection doubles as its response
                # channel; a reconnect replaces any stale link.
                old = node.client_out.pop(sender, None)
                if old is not None:
                    old.close()
                node.client_out[sender] = _SendLink(self, node.id, sender, writer=writer)
            while True:
                frame = await read_frame(reader)
                if frame is None or node.crashed:
                    break
                self.stats.frames_received += 1
                self.stats.bytes_received += len(frame) + _LEN.size
                await self._handle_frame(node, decode_frame(frame))
        except asyncio.CancelledError:
            # Replica crash / cluster stop cancels serve tasks; exiting
            # normally keeps asyncio's stream-protocol callback quiet.
            pass
        finally:
            node.tasks.discard(task)
            try:
                writer.close()
            except Exception:
                pass

    async def _handle_frame(self, node: _ReplicaNode, messages: Sequence[Any]) -> None:
        """Apply one decoded frame's messages to the replica core.

        A coalesced frame is one sender's wakeup worth of messages, so runs
        of gossip messages within it merge as a batch through
        ``receive_gossip_batch`` (the batch kernel defers its order splices
        across the run), and the post-merge sweep — stale NACKs, the
        ``do_it`` sweep, ready responses — runs once per frame instead of
        once per message.  Pull requests only generate transfers and never
        need the sweep, matching the previous per-message handling."""
        if node.crashed:
            return
        core = node.core
        swept = True
        i, n = 0, len(messages)
        while i < n:
            message = messages[i]
            kind = message.kind
            if kind == "gossip":
                j = i + 1
                while j < n and messages[j].kind == "gossip":
                    j += 1
                core.receive_gossip_batch(messages[i:j])
                for pull in core.take_pending_pulls():
                    await node.links[pull.target].send("pull", pull)
                swept = False
                i = j
                continue
            if kind == "request":
                core.receive_request(message)
                swept = False
            elif kind == "pull":
                for transfer in core.receive_pull_request(message):
                    await node.links[transfer.requester].send("transfer", transfer)
            elif kind == "transfer":
                core.receive_transfer(message)
                swept = False
            # else: a response frame sent to a replica — ignore
            i += 1
        if swept:
            return
        for operation in core.take_stale_nacks():
            await self._send_response(
                node,
                ResponseMessage(operation=operation, value=None, stale=True, sender=node.id),
            )
        core.do_all_ready()
        for operation in core.ready_responses():
            await self._send_response(node, core.make_response(operation))

    async def _send_response(self, node: _ReplicaNode, message: ResponseMessage) -> None:
        link = node.client_out.get(message.operation.id.client)
        if link is not None:
            await link.send("response", message)
        # No connection from that client: the response is lost, exactly like
        # a dropped message; the front end's retry path recovers.

    async def _gossip_loop(self, node: _ReplicaNode) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.params.gossip_period)
            if node.crashed:
                return
            for dest, link in node.links.items():
                if link.queue.full():
                    # Skip *before* building: under delta gossip a built-
                    # then-dropped message would consume a stream seqno.
                    self.stats.gossip_skipped += 1
                    continue
                message = node.core.make_gossip(dest)
                message.sent_at = loop.time()
                if not link.send_nowait("gossip", message):
                    self.stats.gossip_skipped += 1

    # -- client side -----------------------------------------------------------

    async def _connect_client(self, cid: str, rid: str) -> Optional[_ClientConn]:
        try:
            reader, writer = await self.transport.connect(rid)
            await _write_hello(writer, cid)
        except (ConnectionError, OSError):
            return None
        task = asyncio.get_running_loop().create_task(self._client_reader(cid, reader))
        conn = _ClientConn(writer, task)
        self._client_conns[cid][rid] = conn
        return conn

    async def _client_reader(self, cid: str, reader) -> None:
        while True:
            frame = await read_frame(reader)
            if frame is None:
                return
            self.stats.frames_received += 1
            self.stats.bytes_received += len(frame) + _LEN.size
            for message in decode_frame(frame):
                if message.kind == "response":
                    self._deliver_response(cid, message)

    def _deliver_response(self, cid: str, message: ResponseMessage) -> None:
        frontend = self.frontends[cid]
        op_id = message.operation.id
        if not frontend.receive_response(message):
            # A stale NACK may have just tipped the operation into permanent
            # failure (every replica's retained value aged out).
            if message.stale and op_id in frontend.failed and op_id not in self.failed:
                self.failed[op_id] = frontend.failed[op_id]
                future = self._futures.pop(op_id, None)
                if future is not None and not future.done():
                    future.set_exception(OperationFailed(self.failed[op_id]))
            return
        value = frontend.respond(message.operation)
        self.responded[op_id] = value
        self.failed.pop(op_id, None)
        self.trace.record_response(message.operation, value)
        future = self._futures.pop(op_id, None)
        if future is not None and not future.done():
            future.set_result(value)

    async def _send_request(self, cid: str, rid: str, message) -> None:
        conn = self._client_conns[cid].get(rid)
        if conn is None or conn.dead:
            conn = await self._connect_client(cid, rid)
            if conn is None:
                return  # replica unreachable: the send is lost
        frame, sizes = encode_frame_detailed([message])
        try:
            async with conn.lock:
                await write_frame(conn.writer, frame)
        except (ConnectionError, OSError):
            conn.close()
            self._client_conns[cid].pop(rid, None)
            return
        self.stats.record_frame([("request", message)], len(frame), sizes)

    # -- public client API -----------------------------------------------------

    def ensure_client(self, client_id: str) -> None:
        """Register *client_id* lazily: a front end, an id counter, an
        affinity replica.  Used when a foreign composite client identity
        first appears at this deployment — e.g. a migrated slice being
        :meth:`ingest`-ed under its original minting identities.  Existing
        clients are left untouched; connections dial lazily on first send."""
        if client_id in self.frontends:
            return
        self.client_ids = self.client_ids + (client_id,)
        self.frontends[client_id] = FrontEndCore(client_id, self.replica_ids)
        self.id_generators[client_id] = OperationIdGenerator(client_id)
        self._affinity[client_id] = self.replica_ids[len(self._affinity) % len(self.replica_ids)]
        self._client_conns.setdefault(client_id, {})

    async def ingest(
        self, operations: Sequence[OperationDescriptor], timeout: float = 30.0
    ) -> Dict[OperationId, Any]:
        """Replay a ``prev``-chained operation slice under its original
        (possibly foreign) client identities — the network-side hook a
        resharding coordinator uses to hand a migrated history to its new
        owner.  Operations execute sequentially so every link's ``prev`` is
        answered at the affinity replica before the next link is sent; the
        returned mapping carries each operation's response value."""
        values: Dict[OperationId, Any] = {}
        for operation in operations:
            self.ensure_client(operation.id.client)
            if operation.id in self.responded:
                values[operation.id] = self.responded[operation.id]
                continue
            values[operation.id] = await self.execute(operation, timeout=timeout)
        return values

    def make_operation(
        self,
        client: str,
        operator: Operator,
        prev: Iterable[OperationId] = (),
        strict: bool = False,
    ) -> OperationDescriptor:
        if client not in self.id_generators:
            raise ConfigurationError(f"unknown client {client!r}")
        self.data_type.check_operator(operator)
        prev_ids = frozenset(prev)
        unknown = {p for p in prev_ids if p not in self.requested}
        if unknown:
            raise ConfigurationError(
                f"prev references operations never requested: {sorted(map(str, unknown))}"
            )
        return make_operation(operator, self.id_generators[client].fresh(), prev_ids, strict)

    async def submit(
        self,
        client: str,
        operator: Operator,
        prev: Iterable[OperationId] = (),
        strict: bool = False,
        timeout: float = 30.0,
    ) -> Any:
        """Submit one operation and await its response value.

        Raises :class:`OperationFailed` if every replica NACKs it, and
        ``asyncio.TimeoutError`` if nothing answers within *timeout*."""
        operation = self.make_operation(client, operator, prev, strict)
        return await self.execute(operation, timeout=timeout)

    async def execute(self, operation: OperationDescriptor, timeout: float = 30.0) -> Any:
        client = operation.id.client
        frontend = self.frontends[client]
        frontend.request(operation)
        self.requested[operation.id] = operation
        self.trace.record_request(operation)
        future = asyncio.get_running_loop().create_future()
        self._futures[operation.id] = future
        message = frontend.make_request_message(operation)
        targets: List[str] = [self._affinity[client]]
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            for rid in targets:
                await self._send_request(client, rid, message)
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                self._futures.pop(operation.id, None)
                raise asyncio.TimeoutError(f"operation {operation.id} unanswered")
            try:
                return await asyncio.wait_for(
                    asyncio.shield(future), min(self.params.request_retry, remaining)
                )
            except asyncio.TimeoutError:
                if future.done():
                    return future.result()
                # Retry, redirected away from replicas that NACKed (the
                # affinity replica would otherwise be retried forever).
                nacked = frontend.nacked.get(operation.id, ())
                live = [rid for rid in self.replica_ids if not self._nodes[rid].crashed]
                targets = [rid for rid in live if rid not in nacked] or list(self.replica_ids)

    # -- faults ----------------------------------------------------------------

    async def crash_replica(self, rid: str, volatile_memory: bool = True) -> None:
        """Crash a replica: its server stops, every connection breaks, its
        volatile state is lost (labels survive in stable storage)."""
        node = self._nodes[rid]
        node.teardown()
        self.replicas[rid].crash(volatile_memory=volatile_memory)
        for cid in self.client_ids:
            conn = self._client_conns[cid].pop(rid, None)
            if conn is not None:
                conn.close()
        await asyncio.sleep(0)

    async def recover_replica(self, rid: str) -> None:
        """Restart a crashed replica: reload stable storage, listen again
        (on a fresh port); peers and clients re-dial lazily and the next
        gossip rounds resupply the lost state (Section 9.3)."""
        self.replicas[rid].recover_from_stable_storage()
        await self._start_replica(rid)

    # -- oracles / convergence -------------------------------------------------

    def fully_converged(self) -> bool:
        """Has every requested operation become stable at every live
        replica?  (Compacted operations are stable by construction.)"""
        requested = set(self.requested.values())
        return all(
            all(replica.knows_stable(op) for op in requested)
            for rid, replica in self.replicas.items()
            if not self._nodes[rid].crashed
        )

    def outstanding_operations(self) -> int:
        return len(self._futures)

    async def quiesce(self, timeout: float = 30.0) -> bool:
        """Wait (gossip keeps flowing) until every submitted operation is
        answered and every live replica knows everything stable; ``True`` on
        convergence, ``False`` on timeout."""
        deadline = asyncio.get_running_loop().time() + timeout
        while asyncio.get_running_loop().time() < deadline:
            if not self._futures and self.fully_converged():
                return True
            await asyncio.sleep(self.params.gossip_period)
        return False

    def algorithm_view(self):
        """See :func:`repro.sim.cluster.algorithm_view_of`; faithful once
        :meth:`quiesce` returned ``True``."""
        from repro.sim.cluster import algorithm_view_of

        return algorithm_view_of(self)

    def eventual_order(self) -> List[OperationId]:
        """See :func:`repro.sim.cluster.eventual_order_of`."""
        from repro.sim.cluster import eventual_order_of

        return eventual_order_of(self)
