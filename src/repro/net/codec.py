"""The binary wire codec: deterministic, compact, digest-friendly.

Modelled on SSZ (simple-serialize): a small set of fixed composition rules,
no self-describing schema on the wire, and one *canonical* encoding per value
so that content digests can be computed over the bytes themselves.  The
format is deliberately independent of ``PYTHONHASHSEED`` — every set is
sorted before encoding (operation sets by identifier, value-level sets by
their own encoded bytes) — so the same message encodes to the same bytes in
every process, which is what makes :func:`message_digest` a usable content
address.

Layout of one frame (all integers are LEB128 varints unless noted)::

    magic     2 bytes   0xE5 0x0D
    version   1 byte    WIRE_VERSION
    table_n   varint    interned-identifier table size
    table     table_n x (varint length + utf-8 bytes)
    msg_n     varint    messages in the frame (coalescing batches several)
    msgs      msg_n  x (varint payload length + payload)

A payload is one kind tag byte followed by the kind-specific body.  The
interned table holds the *protocol identifiers* — client ids, replica ids,
checkpoint digests — which repeat heavily within a frame; they are referenced
by varint index.  Operation identifiers encode as ``(client ref, seqno)``;
compacted-id summaries pack per-client seqno intervals as delta varints, so a
steady-state advert costs a few bytes per client regardless of history
length.  Gossip set triples (received/done/stable) are encoded as one sorted
descriptor union plus a per-descriptor membership byte, since the three sets
overlap almost completely.

Arbitrary leaf values (operator arguments, data states, response values) use
a self-contained tagged value encoding (no table references, so sorting a
set by element bytes is well defined): ``None``/bools/ints/floats/strings/
bytes/tuples/frozensets/dicts plus the domain atoms ``Operator``,
``OperationId``, ``Label`` and ``INFINITY``.

The transport layer length-prefixes each frame with a 4-byte big-endian
length (:func:`write_frame` / :func:`read_frame` in
:mod:`repro.net.runtime`).  A delta message's ``basis`` is *never* encoded —
the receiver provably already holds it (see
:class:`repro.algorithm.messages.GossipMessage`) — so decoded deltas carry
``basis=None``, exactly like a message that crossed a real network.

:func:`json_frame` is the honest plain-JSON baseline the E13 benchmark
compares against: the same message content as tagged JSON, compactly dumped.

Digest note: :meth:`repro.algorithm.checkpoint.Checkpoint.digest` (the PR 4
transfer-integrity digest) is deliberately left on its original material so
the checked-in conformance corpus stays valid; :func:`message_digest` /
:func:`frame_digest` are the wire-level counterparts computed over this
canonical encoding.

Hot-path notes (wire version 2):

* Encoders append varints in place (no per-varint ``bytes`` allocation) and
  frames are assembled from a pooled grow-only buffer — one payload copy
  into the frame, no intermediate per-payload ``bytes``.
* A :class:`~repro.algorithm.checkpoint.CheckpointAdvert` encodes
  *self-contained* (length-prefixed strings instead of table references),
  which makes its bytes frame-independent — and therefore memoizable keyed
  by ``(digest, order_digest)``, which the content digest makes a complete
  key (it covers frontier, id summary and values).  A replica re-advertising
  an unchanged checkpoint every gossip round hits the memo every time.
* :func:`decode_frame` accepts any bytes-like object and decodes through
  one ``memoryview`` — interior slices (strings, floats, raw runs) are
  views, copied only at the leaves that must own their bytes.
"""

from __future__ import annotations

import hashlib
import json
import struct
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.algorithm.checkpoint import Checkpoint, CheckpointAdvert, OpIdSummary
from repro.algorithm.labels import Label
from repro.algorithm.messages import (
    CheckpointTransferMessage,
    GossipMessage,
    PullRequestMessage,
    RequestMessage,
    ResponseMessage,
)
from repro.common import INFINITY, EsdsError, OperationId
from repro.core.operations import OperationDescriptor
from repro.datatypes.base import Operator

#: Bump on any change to the wire layout.
WIRE_VERSION = 2

MAGIC = b"\xe5\x0d"

#: Message kind tags.
_K_REQUEST = 1
_K_RESPONSE = 2
_K_GOSSIP = 3
_K_PULL = 4
_K_TRANSFER = 5

_KIND_TAGS = {
    "request": _K_REQUEST,
    "response": _K_RESPONSE,
    "gossip": _K_GOSSIP,
    "pull": _K_PULL,
    "transfer": _K_TRANSFER,
}

#: Value encoding tags (self-contained; see module docstring).
_V_NONE = 0
_V_FALSE = 1
_V_TRUE = 2
_V_INT = 3
_V_FLOAT = 4
_V_STR = 5
_V_BYTES = 6
_V_TUPLE = 7
_V_SET = 8
_V_DICT = 9
_V_OPERATOR = 10
_V_OPID = 11
_V_LABEL = 12
_V_INFINITY = 13
#: A *mutable* ``set`` (as opposed to _V_SET's ``frozenset``).  The
#: distinction matters: checkpoint transfer receivers recompute the content
#: digest over ``repr`` of the decoded retained values, and
#: ``repr(set(...))`` differs from ``repr(frozenset(...))`` even though the
#: two compare equal — a codec that normalized one into the other would make
#: every legitimate transfer of a set-valued response look corrupted.
_V_MUTSET = 14


class FrameError(EsdsError):
    """A frame failed to encode or decode."""


# --------------------------------------------------------------------------- #
# Varints                                                                     #
# --------------------------------------------------------------------------- #

def encode_varint(value: int) -> bytes:
    """Unsigned LEB128."""
    out = bytearray()
    _append_varint(out, value)
    return bytes(out)


def _append_varint(out: bytearray, value: int) -> None:
    """Append one unsigned LEB128 varint in place (the hot-path form: no
    per-varint ``bytes`` allocation)."""
    if value < 0:
        raise FrameError(f"varint cannot encode negative value {value}")
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _append_str(out: bytearray, text: str) -> None:
    """Append one length-prefixed utf-8 string (self-contained, no table)."""
    raw = text.encode("utf-8")
    _append_varint(out, len(raw))
    out += raw


def zigzag(value: int) -> int:
    """Map signed integers onto unsigned ones (0, -1, 1, -2 -> 0, 1, 2, 3)."""
    return (value << 1) ^ (value >> (value.bit_length() + 1)) if value < 0 else value << 1


def unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


# --------------------------------------------------------------------------- #
# Encoder                                                                     #
# --------------------------------------------------------------------------- #

def _value_bytes(value: Any) -> bytes:
    """The self-contained tagged encoding of one leaf value."""
    out = bytearray()
    _encode_value(out, value)
    return bytes(out)


def _encode_value(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_V_NONE)
    elif value is INFINITY:
        out.append(_V_INFINITY)
    elif isinstance(value, bool):
        out.append(_V_TRUE if value else _V_FALSE)
    elif isinstance(value, int):
        out.append(_V_INT)
        _append_varint(out, zigzag(value))
    elif isinstance(value, float):
        out.append(_V_FLOAT)
        out += struct.pack(">d", value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_V_STR)
        _append_varint(out, len(raw))
        out += raw
    elif isinstance(value, bytes):
        out.append(_V_BYTES)
        _append_varint(out, len(value))
        out += value
    elif isinstance(value, Operator):
        out.append(_V_OPERATOR)
        _encode_value(out, value.name)
        _encode_value(out, value.args)
    elif isinstance(value, OperationId):
        out.append(_V_OPID)
        _encode_value(out, value.client)
        _append_varint(out, zigzag(value.seqno))
    elif isinstance(value, Label):
        out.append(_V_LABEL)
        _append_varint(out, zigzag(value.rank))
        _encode_value(out, value.replica)
    elif isinstance(value, tuple):
        out.append(_V_TUPLE)
        _append_varint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, (set, frozenset)):
        encoded = sorted(_value_bytes(item) for item in value)
        out.append(_V_SET if isinstance(value, frozenset) else _V_MUTSET)
        _append_varint(out, len(encoded))
        for item in encoded:
            out += item
    elif isinstance(value, dict):
        pairs = sorted(
            (_value_bytes(k), _value_bytes(v)) for k, v in value.items()
        )
        out.append(_V_DICT)
        _append_varint(out, len(pairs))
        for key, val in pairs:
            out += key
            out += val
    else:
        raise FrameError(f"cannot encode value of type {type(value).__name__}: {value!r}")


def _id_sort_key(op_id: OperationId) -> Tuple[str, int]:
    return (op_id.client, op_id.seqno)


class _Encoder:
    """Accumulates one frame: an interned identifier table plus payloads."""

    def __init__(self) -> None:
        self._table: Dict[str, int] = {}
        self._order: List[str] = []
        self.out = bytearray()

    def reset(self) -> None:
        """Make this encoder reusable for the next frame (pooling)."""
        self._table.clear()
        self._order.clear()
        del self.out[:]

    # -- primitives ----------------------------------------------------------

    def u(self, value: int) -> None:
        _append_varint(self.out, value)

    def s(self, value: int) -> None:
        _append_varint(self.out, zigzag(value))

    def byte(self, value: int) -> None:
        self.out.append(value & 0xFF)

    def ident(self, text: str) -> None:
        """A table-interned identifier reference."""
        index = self._table.get(text)
        if index is None:
            index = len(self._order)
            self._table[text] = index
            self._order.append(text)
        self.u(index)

    def value(self, value: Any) -> None:
        _encode_value(self.out, value)

    # -- domain pieces -------------------------------------------------------

    def op_id(self, op_id: OperationId) -> None:
        self.ident(op_id.client)
        self.s(op_id.seqno)

    def label(self, label: Label) -> None:
        self.s(label.rank)
        self.ident(label.replica)

    def operation(self, op: OperationDescriptor) -> None:
        self.value(op.op)
        self.op_id(op.id)
        self.byte(1 if op.strict else 0)
        prev = sorted(op.prev, key=_id_sort_key)
        self.u(len(prev))
        for p in prev:
            self.op_id(p)

    def summary(self, summary: OpIdSummary) -> None:
        """Per-client seqno intervals as delta varints (the packing that
        keeps adverts at a few bytes per client)."""
        ranges = sorted(summary.ranges.items())
        self.u(len(ranges))
        for client, intervals in ranges:
            self.ident(client)
            self.u(len(intervals))
            prev_hi: Optional[int] = None
            for lo, hi in intervals:
                if prev_hi is None:
                    self.s(lo)
                else:
                    # Normalized intervals are disjoint and non-adjacent:
                    # lo >= prev_hi + 2, so the gap below is non-negative.
                    self.u(lo - prev_hi - 2)
                self.u(hi - lo)
                prev_hi = hi

    def checkpoint(self, checkpoint: Checkpoint) -> None:
        self.value(checkpoint.base_state)
        if checkpoint.frontier is None:
            self.byte(0)
        else:
            self.byte(1)
            self.label(checkpoint.frontier)
        self.summary(checkpoint.ids)
        self.ident(checkpoint.order_digest)
        # The retained-value ledger is *insertion ordered* (oldest first) and
        # eviction depends on that order, so it is encoded as an ordered
        # sequence, not a sorted map.  Python dict order is insertion order:
        # deterministic for a given execution, independent of the hash seed.
        self.u(len(checkpoint.values))
        for op_id, value in checkpoint.values.items():
            self.op_id(op_id)
            self.value(value)

    def advert(self, advert: CheckpointAdvert) -> None:
        self.out += _advert_bytes(advert)


#: Digest-keyed advert encode memo.  An advert encodes self-contained (no
#: table references), so its bytes are frame-independent and the memo is a
#: straight lookup; ``(digest, order_digest)`` is a complete key because the
#: content digest covers the frontier, the id summary and the values.  A
#: replica steadily re-advertising an unchanged checkpoint (the common case
#: between compactions) pays the encode once per checkpoint, not per gossip.
_ADVERT_CACHE: Dict[Tuple[str, str], bytes] = {}
_ADVERT_CACHE_MAX = 512


def _advert_bytes(advert: CheckpointAdvert) -> bytes:
    key = (advert.digest, advert.order_digest)
    cached = _ADVERT_CACHE.get(key)
    if cached is not None:
        return cached
    out = bytearray()
    _append_varint(out, zigzag(advert.frontier.rank))
    _append_str(out, advert.frontier.replica)
    _append_str(out, advert.digest)
    _append_str(out, advert.order_digest)
    ranges = sorted(advert.ids.ranges.items())
    _append_varint(out, len(ranges))
    for client, intervals in ranges:
        _append_str(out, client)
        _append_varint(out, len(intervals))
        prev_hi: Optional[int] = None
        for lo, hi in intervals:
            if prev_hi is None:
                _append_varint(out, zigzag(lo))
            else:
                _append_varint(out, lo - prev_hi - 2)
            _append_varint(out, hi - lo)
            prev_hi = hi
    if len(_ADVERT_CACHE) >= _ADVERT_CACHE_MAX:
        _ADVERT_CACHE.clear()
    encoded = _ADVERT_CACHE[key] = bytes(out)
    return encoded


# --------------------------------------------------------------------------- #
# Per-kind message bodies                                                     #
# --------------------------------------------------------------------------- #

def _encode_request(enc: _Encoder, message: RequestMessage) -> None:
    enc.operation(message.operation)


def _encode_response(enc: _Encoder, message: ResponseMessage) -> None:
    flags = (1 if message.stale else 0) | (2 if message.sender is not None else 0)
    enc.byte(flags)
    enc.operation(message.operation)
    enc.value(message.value)
    if message.sender is not None:
        enc.ident(message.sender)


_G_DELTA = 1
_G_SEQNO = 2
_G_ACK = 4
_G_CHECKPOINT = 8
_G_ADVERT = 16
_G_SENT_AT = 32


def _encode_gossip(enc: _Encoder, message: GossipMessage) -> None:
    flags = 0
    if message.is_delta:
        flags |= _G_DELTA
    if message.seqno is not None:
        flags |= _G_SEQNO
    if message.ack is not None:
        flags |= _G_ACK
    if message.checkpoint is not None:
        flags |= _G_CHECKPOINT
    if message.advert is not None:
        flags |= _G_ADVERT
    if message.sent_at is not None:
        flags |= _G_SENT_AT
    enc.byte(flags)
    enc.ident(message.sender)
    enc.u(message.epoch)
    enc.u(message.stream)
    if message.seqno is not None:
        enc.u(message.seqno)
    if message.ack is not None:
        enc.u(message.ack)
        enc.u(message.ack_epoch or 0)
        enc.u(message.ack_stream or 0)

    # One sorted union of descriptors with a membership byte each: the three
    # sets overlap almost completely (done and stable are subsets of the
    # sender's knowledge), so each descriptor is encoded exactly once.
    union: Dict[OperationDescriptor, int] = {}
    for op in message.received:
        union[op] = union.get(op, 0) | 1
    for op in message.done:
        union[op] = union.get(op, 0) | 2
    for op in message.stable:
        union[op] = union.get(op, 0) | 4
    ordered = sorted(union, key=lambda op: _id_sort_key(op.id))
    enc.u(len(ordered))
    for op in ordered:
        enc.operation(op)
        enc.byte(union[op])

    labels = sorted(message.labels.items(), key=lambda item: _id_sort_key(item[0]))
    enc.u(len(labels))
    for op_id, label in labels:
        enc.op_id(op_id)
        enc.label(label)

    if message.checkpoint is not None:
        enc.checkpoint(message.checkpoint)
    if message.advert is not None:
        enc.advert(message.advert)
    if message.sent_at is not None:
        enc.out += struct.pack(">d", message.sent_at)


def _encode_pull(enc: _Encoder, message: PullRequestMessage) -> None:
    enc.byte(1 if message.have_frontier is not None else 0)
    enc.ident(message.requester)
    enc.ident(message.target)
    enc.ident(message.digest)
    enc.label(message.frontier)
    if message.have_frontier is not None:
        enc.label(message.have_frontier)


def _encode_transfer(enc: _Encoder, message: CheckpointTransferMessage) -> None:
    enc.byte(1 if message.base_state is not None else 0)
    enc.ident(message.sender)
    enc.ident(message.requester)
    enc.u(message.epoch)
    enc.ident(message.digest)
    enc.ident(message.order_digest)
    enc.label(message.frontier)
    enc.summary(message.ids)
    enc.u(message.chunk_index)
    enc.u(message.chunk_count)
    # Chunk slices preserve the ledger's insertion order (reassembly and
    # retention eviction depend on it) — ordered pairs, like the checkpoint.
    enc.u(len(message.values_chunk))
    for op_id, value in message.values_chunk.items():
        enc.op_id(op_id)
        enc.value(value)
    if message.base_state is not None:
        enc.value(message.base_state)


_ENCODERS = {
    _K_REQUEST: _encode_request,
    _K_RESPONSE: _encode_response,
    _K_GOSSIP: _encode_gossip,
    _K_PULL: _encode_pull,
    _K_TRANSFER: _encode_transfer,
}


# --------------------------------------------------------------------------- #
# Frame assembly                                                              #
# --------------------------------------------------------------------------- #

#: Pooled frame encoders: encoder objects (intern table, payload buffer) and
#: frame buffers are reused across frames instead of re-created per call
#: (asyncio runs the send loops on one thread; a concurrent encode simply
#: misses the pool and pays a fresh allocation, so reentrancy is safe, just
#: unpooled).
_ENCODER_POOL: List[Tuple[_Encoder, bytearray]] = []


def encode_frame_detailed(messages: Sequence[Any]) -> Tuple[bytes, List[int]]:
    """Like :func:`encode_frame`, also returning each message's encoded
    payload length — the runtime attributes coalesced-frame bytes to message
    kinds with these (the shared magic/table/length overhead is counted as
    framing, not against any kind)."""
    enc, frame = _ENCODER_POOL.pop() if _ENCODER_POOL else (_Encoder(), bytearray())
    try:
        spans: List[Tuple[int, int]] = []
        for message in messages:
            tag = _KIND_TAGS.get(getattr(message, "kind", None))
            if tag is None:
                raise FrameError(
                    f"cannot encode message of type {type(message).__name__}"
                )
            start = len(enc.out)
            enc.byte(tag)
            _ENCODERS[tag](enc, message)
            spans.append((start, len(enc.out)))

        frame += MAGIC
        frame.append(WIRE_VERSION)
        _append_varint(frame, len(enc._order))
        for text in enc._order:
            _append_str(frame, text)
        _append_varint(frame, len(spans))
        # One copy per payload, straight from the shared payload buffer into
        # the frame buffer — no intermediate per-payload ``bytes``.
        with memoryview(enc.out) as body:
            for start, end in spans:
                _append_varint(frame, end - start)
                frame += body[start:end]
        return bytes(frame), [end - start for start, end in spans]
    finally:
        enc.reset()
        del frame[:]
        if len(_ENCODER_POOL) < 4:
            _ENCODER_POOL.append((enc, frame))


def encode_frame(messages: Sequence[Any]) -> bytes:
    """Encode *messages* (protocol message objects) into one frame.

    Several messages to the same destination share one frame (and one
    interned table) — the runtime's coalescing path; the deterministic wire
    harness sends one message per frame for exact per-kind byte attribution.
    """
    return encode_frame_detailed(messages)[0]


def encode_message(message: Any) -> bytes:
    """A single-message frame (the canonical encoding of one message)."""
    return encode_frame([message])


def frame_digest(frame: bytes) -> str:
    """Short sha-256 content digest of an encoded frame."""
    return hashlib.sha256(frame).hexdigest()[:16]


def message_digest(message: Any) -> str:
    """Content digest of one message, over its canonical encoding.  Stable
    across processes and ``PYTHONHASHSEED`` values (every set is sorted
    before encoding)."""
    return frame_digest(encode_message(message))


# --------------------------------------------------------------------------- #
# Decoder                                                                     #
# --------------------------------------------------------------------------- #

class _Decoder:
    def __init__(self, data, table: Sequence[str], pos: int = 0) -> None:
        self.data = data
        self.table = table
        self.pos = pos

    # -- primitives ----------------------------------------------------------

    def u(self) -> int:
        result = 0
        shift = 0
        while True:
            if self.pos >= len(self.data):
                raise FrameError("truncated varint")
            byte = self.data[self.pos]
            self.pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7

    def s(self) -> int:
        return unzigzag(self.u())

    def byte(self) -> int:
        if self.pos >= len(self.data):
            raise FrameError("truncated byte")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def raw(self, n: int):
        """A run of *n* raw bytes.  When the decoder reads a ``memoryview``
        (the zero-copy frame path) the run is a *view*, not a copy — callers
        that must own their bytes convert at the leaf."""
        if self.pos + n > len(self.data):
            raise FrameError("truncated bytes")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def text(self) -> str:
        """One self-contained length-prefixed utf-8 string (no table)."""
        return str(self.raw(self.u()), "utf-8")

    def ident(self) -> str:
        index = self.u()
        if index >= len(self.table):
            raise FrameError(f"identifier reference {index} outside table")
        return self.table[index]

    def value(self) -> Any:
        tag = self.byte()
        if tag == _V_NONE:
            return None
        if tag == _V_INFINITY:
            return INFINITY
        if tag == _V_FALSE:
            return False
        if tag == _V_TRUE:
            return True
        if tag == _V_INT:
            return self.s()
        if tag == _V_FLOAT:
            return struct.unpack(">d", self.raw(8))[0]
        if tag == _V_STR:
            return str(self.raw(self.u()), "utf-8")
        if tag == _V_BYTES:
            return bytes(self.raw(self.u()))
        if tag == _V_OPERATOR:
            name = self.value()
            args = self.value()
            return Operator(name, args)
        if tag == _V_OPID:
            client = self.value()
            return OperationId(client=client, seqno=self.s())
        if tag == _V_LABEL:
            rank = self.s()
            return Label(rank=rank, replica=self.value())
        if tag == _V_TUPLE:
            return tuple(self.value() for _ in range(self.u()))
        if tag == _V_SET:
            return frozenset(self.value() for _ in range(self.u()))
        if tag == _V_MUTSET:
            return {self.value() for _ in range(self.u())}
        if tag == _V_DICT:
            return {self.value(): self.value() for _ in range(self.u())}
        raise FrameError(f"unknown value tag {tag}")

    # -- domain pieces -------------------------------------------------------

    def op_id(self) -> OperationId:
        client = self.ident()
        return OperationId(client=client, seqno=self.s())

    def label(self) -> Label:
        rank = self.s()
        return Label(rank=rank, replica=self.ident())

    def operation(self) -> OperationDescriptor:
        op = self.value()
        op_id = self.op_id()
        strict = bool(self.byte())
        prev = frozenset(self.op_id() for _ in range(self.u()))
        return OperationDescriptor(op=op, id=op_id, prev=prev, strict=strict)

    def summary(self) -> OpIdSummary:
        ranges: Dict[str, List[Tuple[int, int]]] = {}
        for _ in range(self.u()):
            client = self.ident()
            intervals: List[Tuple[int, int]] = []
            prev_hi: Optional[int] = None
            for _ in range(self.u()):
                lo = self.s() if prev_hi is None else prev_hi + 2 + self.u()
                hi = lo + self.u()
                intervals.append((lo, hi))
                prev_hi = hi
            ranges[client] = intervals
        return OpIdSummary(ranges)

    def checkpoint(self) -> Checkpoint:
        base_state = self.value()
        frontier = self.label() if self.byte() else None
        ids = self.summary()
        order_digest = self.ident()
        values = {}
        for _ in range(self.u()):
            op_id = self.op_id()
            values[op_id] = self.value()
        return Checkpoint(
            base_state=base_state,
            frontier=frontier,
            ids=ids,
            values=values,
            order_digest=order_digest,
        )

    def advert(self) -> CheckpointAdvert:
        # Self-contained strings, mirroring ``_advert_bytes`` (the advert is
        # the one piece encoded outside the frame's interned table so its
        # bytes can be memoized across frames).
        rank = self.s()
        frontier = Label(rank=rank, replica=self.text())
        digest = self.text()
        order_digest = self.text()
        ranges: Dict[str, List[Tuple[int, int]]] = {}
        for _ in range(self.u()):
            client = self.text()
            intervals: List[Tuple[int, int]] = []
            prev_hi: Optional[int] = None
            for _ in range(self.u()):
                lo = self.s() if prev_hi is None else prev_hi + 2 + self.u()
                hi = lo + self.u()
                intervals.append((lo, hi))
                prev_hi = hi
            ranges[client] = intervals
        return CheckpointAdvert(
            frontier=frontier,
            digest=digest,
            ids=OpIdSummary(ranges),
            order_digest=order_digest,
        )


def _decode_request(dec: _Decoder) -> RequestMessage:
    return RequestMessage(operation=dec.operation())


def _decode_response(dec: _Decoder) -> ResponseMessage:
    flags = dec.byte()
    operation = dec.operation()
    value = dec.value()
    sender = dec.ident() if flags & 2 else None
    return ResponseMessage(operation=operation, value=value, stale=bool(flags & 1), sender=sender)


def _decode_gossip(dec: _Decoder) -> GossipMessage:
    flags = dec.byte()
    sender = dec.ident()
    epoch = dec.u()
    stream = dec.u()
    seqno = dec.u() if flags & _G_SEQNO else None
    ack = ack_epoch = ack_stream = None
    if flags & _G_ACK:
        ack = dec.u()
        ack_epoch = dec.u()
        ack_stream = dec.u()

    received: List[OperationDescriptor] = []
    done: List[OperationDescriptor] = []
    stable: List[OperationDescriptor] = []
    for _ in range(dec.u()):
        op = dec.operation()
        membership = dec.byte()
        if membership & 1:
            received.append(op)
        if membership & 2:
            done.append(op)
        if membership & 4:
            stable.append(op)

    labels: Dict[OperationId, Label] = {}
    for _ in range(dec.u()):
        op_id = dec.op_id()
        labels[op_id] = dec.label()

    checkpoint = dec.checkpoint() if flags & _G_CHECKPOINT else None
    advert = dec.advert() if flags & _G_ADVERT else None
    sent_at = struct.unpack(">d", dec.raw(8))[0] if flags & _G_SENT_AT else None
    return GossipMessage(
        sender=sender,
        received=frozenset(received),
        done=frozenset(done),
        labels=labels,
        stable=frozenset(stable),
        epoch=epoch,
        stream=stream,
        seqno=seqno,
        ack=ack,
        ack_epoch=ack_epoch,
        ack_stream=ack_stream,
        is_delta=bool(flags & _G_DELTA),
        basis=None,  # never transmitted; the receiver already holds it
        checkpoint=checkpoint,
        advert=advert,
        sent_at=sent_at,
    )


def _decode_pull(dec: _Decoder) -> PullRequestMessage:
    flags = dec.byte()
    requester = dec.ident()
    target = dec.ident()
    digest = dec.ident()
    frontier = dec.label()
    have_frontier = dec.label() if flags & 1 else None
    return PullRequestMessage(
        requester=requester,
        target=target,
        digest=digest,
        frontier=frontier,
        have_frontier=have_frontier,
    )


def _decode_transfer(dec: _Decoder) -> CheckpointTransferMessage:
    flags = dec.byte()
    sender = dec.ident()
    requester = dec.ident()
    epoch = dec.u()
    digest = dec.ident()
    order_digest = dec.ident()
    frontier = dec.label()
    ids = dec.summary()
    chunk_index = dec.u()
    chunk_count = dec.u()
    values_chunk = {}
    for _ in range(dec.u()):
        op_id = dec.op_id()
        values_chunk[op_id] = dec.value()
    base_state = dec.value() if flags & 1 else None
    return CheckpointTransferMessage(
        sender=sender,
        requester=requester,
        epoch=epoch,
        digest=digest,
        frontier=frontier,
        ids=ids,
        values_chunk=values_chunk,
        chunk_index=chunk_index,
        chunk_count=chunk_count,
        base_state=base_state,
        order_digest=order_digest,
    )


_DECODERS = {
    _K_REQUEST: _decode_request,
    _K_RESPONSE: _decode_response,
    _K_GOSSIP: _decode_gossip,
    _K_PULL: _decode_pull,
    _K_TRANSFER: _decode_transfer,
}


def decode_frame(frame) -> List[Any]:
    """Decode one frame (any bytes-like object) back into its message
    objects.  Decoding runs over one ``memoryview`` of the input: interior
    runs are sliced as views, so nothing is copied except the leaves that
    must own their bytes (strings, ``bytes`` values)."""
    data = frame if isinstance(frame, memoryview) else memoryview(frame)
    if len(data) < 3 or data[:2] != MAGIC:
        raise FrameError("not a wire frame (bad magic)")
    if data[2] != WIRE_VERSION:
        raise FrameError(f"wire version {data[2]}, this codec understands {WIRE_VERSION}")
    head = _Decoder(data, (), pos=3)
    table: List[str] = []
    for _ in range(head.u()):
        table.append(head.text())
    dec = _Decoder(data, table, pos=head.pos)
    messages: List[Any] = []
    for _ in range(dec.u()):
        length = dec.u()
        end = dec.pos + length
        if end > len(data):
            raise FrameError("truncated message payload")
        tag = dec.byte()
        decoder = _DECODERS.get(tag)
        if decoder is None:
            raise FrameError(f"unknown message kind tag {tag}")
        messages.append(decoder(dec))
        if dec.pos != end:
            raise FrameError(
                f"message payload length mismatch (declared {length}, "
                f"consumed {dec.pos - (end - length)})"
            )
    if dec.pos != len(data):
        raise FrameError(f"{len(data) - dec.pos} trailing bytes after last message")
    return messages


# --------------------------------------------------------------------------- #
# JSON baseline (benchmark E13's comparison point)                            #
# --------------------------------------------------------------------------- #

def _json_value(value: Any) -> Any:
    """Tagged-JSON form of a leaf value (the conformance-codec conventions
    extended with the domain atoms the wire carries)."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if value is INFINITY:
        return {"inf": True}
    if isinstance(value, float):
        return {"f": repr(value)}
    if isinstance(value, Operator):
        return {"op": [value.name, _json_value(value.args)]}
    if isinstance(value, OperationId):
        return {"id": f"{value.client}#{value.seqno}"}
    if isinstance(value, Label):
        return {"l": [value.rank, value.replica]}
    if isinstance(value, tuple):
        return {"t": [_json_value(item) for item in value]}
    if isinstance(value, (set, frozenset)):
        encoded = [_json_value(item) for item in value]
        encoded.sort(key=lambda item: json.dumps(item, sort_keys=True))
        return {"s": encoded}
    if isinstance(value, dict):
        pairs = [[_json_value(k), _json_value(v)] for k, v in value.items()]
        pairs.sort(key=lambda pair: json.dumps(pair[0], sort_keys=True))
        return {"d": pairs}
    raise FrameError(f"cannot JSON-encode value of type {type(value).__name__}")


def _json_operation(op: OperationDescriptor) -> Dict[str, Any]:
    return {
        "op": _json_value(op.op),
        "id": f"{op.id.client}#{op.id.seqno}",
        "prev": sorted(f"{p.client}#{p.seqno}" for p in op.prev),
        "strict": op.strict,
    }


def _json_summary(summary: OpIdSummary) -> Dict[str, Any]:
    return {client: [list(iv) for iv in ivs] for client, ivs in sorted(summary.ranges.items())}


def _json_checkpoint(checkpoint: Checkpoint) -> Dict[str, Any]:
    return {
        "base_state": _json_value(checkpoint.base_state),
        "frontier": _json_value(checkpoint.frontier),
        "ids": _json_summary(checkpoint.ids),
        "values": [
            [f"{op_id.client}#{op_id.seqno}", _json_value(value)]
            for op_id, value in checkpoint.values.items()
        ],
    }


def _json_message(message: Any) -> Dict[str, Any]:
    kind = message.kind
    if kind == "request":
        return {"kind": kind, "operation": _json_operation(message.operation)}
    if kind == "response":
        return {
            "kind": kind,
            "operation": _json_operation(message.operation),
            "value": _json_value(message.value),
            "stale": message.stale,
            "sender": message.sender,
        }
    if kind == "gossip":
        doc: Dict[str, Any] = {
            "kind": kind,
            "sender": message.sender,
            "received": sorted(
                (_json_operation(op) for op in message.received),
                key=lambda d: d["id"],
            ),
            "done": sorted(
                (_json_operation(op) for op in message.done), key=lambda d: d["id"]
            ),
            "stable": sorted(
                (_json_operation(op) for op in message.stable), key=lambda d: d["id"]
            ),
            "labels": {
                f"{op_id.client}#{op_id.seqno}": _json_value(label)
                for op_id, label in sorted(
                    message.labels.items(), key=lambda item: _id_sort_key(item[0])
                )
            },
            "epoch": message.epoch,
            "stream": message.stream,
            "seqno": message.seqno,
            "ack": message.ack,
            "ack_epoch": message.ack_epoch,
            "ack_stream": message.ack_stream,
            "is_delta": message.is_delta,
            "sent_at": message.sent_at,
        }
        if message.checkpoint is not None:
            doc["checkpoint"] = _json_checkpoint(message.checkpoint)
        if message.advert is not None:
            doc["advert"] = {
                "frontier": _json_value(message.advert.frontier),
                "digest": message.advert.digest,
                "ids": _json_summary(message.advert.ids),
            }
        return doc
    if kind == "pull":
        return {
            "kind": kind,
            "requester": message.requester,
            "target": message.target,
            "digest": message.digest,
            "frontier": _json_value(message.frontier),
            "have_frontier": _json_value(message.have_frontier),
        }
    if kind == "transfer":
        return {
            "kind": kind,
            "sender": message.sender,
            "requester": message.requester,
            "epoch": message.epoch,
            "digest": message.digest,
            "frontier": _json_value(message.frontier),
            "ids": _json_summary(message.ids),
            "values_chunk": [
                [f"{op_id.client}#{op_id.seqno}", _json_value(value)]
                for op_id, value in message.values_chunk.items()
            ],
            "chunk_index": message.chunk_index,
            "chunk_count": message.chunk_count,
            "base_state": _json_value(message.base_state),
        }
    raise FrameError(f"cannot JSON-encode message kind {kind!r}")


def json_frame(messages: Sequence[Any]) -> bytes:
    """The plain-JSON baseline encoding of *messages* — same content, no
    interning, no varints, no set-union sharing.  E13 measures the binary
    codec against this."""
    doc = [_json_message(message) for message in messages]
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), ensure_ascii=True).encode(
        "utf-8"
    )
