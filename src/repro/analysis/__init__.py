"""Analytic performance bounds (Section 9) and helpers to compare them
against simulated measurements."""

from repro.analysis.bounds import (
    TimingAssumptions,
    operation_class,
    response_time_bound,
    check_latency_records_against_bounds,
    stabilization_time_bound,
)

__all__ = [
    "TimingAssumptions",
    "operation_class",
    "response_time_bound",
    "check_latency_records_against_bounds",
    "stabilization_time_bound",
]
