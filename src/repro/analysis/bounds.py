"""Response-time bounds of Theorems 9.3 and 9.4.

Under the timing assumptions of Section 9.1 — message delays bounded by
``df`` (front end <-> replica) and ``dg`` (replica <-> replica), gossip sent
at least every ``g`` time units, negligible local computation — every
requested operation ``x`` receives a response within ``delta(x)`` of its
request, where::

    delta(x) = 2*df                      if not x.strict and x.prev == {}
    delta(x) = 2*df + g + dg             if not x.strict and x.prev != {}
    delta(x) = 2*df + 3*(g + dg)         if x.strict

Theorem 9.4 extends this to recovery: if the timing assumptions hold from
time ``t`` onwards, an operation requested by time ``t`` is answered within
``[t, t + delta(x)]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.core.operations import OperationDescriptor
from repro.sim.metrics import LatencyRecord, classify_operation


@dataclass(frozen=True)
class TimingAssumptions:
    """The Section 9.1 timing parameters."""

    df: float
    dg: float
    gossip_period: float

    @property
    def gossip_round(self) -> float:
        """``g + dg`` — the worst-case time for one round of gossip to land."""
        return self.gossip_period + self.dg


def operation_class(operation: OperationDescriptor) -> str:
    """The three classes distinguished by Theorem 9.3."""
    return classify_operation(operation)


def response_time_bound(operation: OperationDescriptor, timing: TimingAssumptions) -> float:
    """``delta(x)`` — the Theorem 9.3 response-time bound for *operation*."""
    if operation.strict:
        return 2 * timing.df + 3 * timing.gossip_round
    if operation.prev:
        return 2 * timing.df + timing.gossip_round
    return 2 * timing.df


def bound_by_class(timing: TimingAssumptions) -> Dict[str, float]:
    """The delta table keyed by operation class (the rows of Theorem 9.3)."""
    return {
        "nonstrict_no_prev": 2 * timing.df,
        "nonstrict_with_prev": 2 * timing.df + timing.gossip_round,
        "strict": 2 * timing.df + 3 * timing.gossip_round,
    }


def stabilization_time_bound(timing: TimingAssumptions) -> float:
    """Worst-case time from request until the operation is stable at every
    replica *and* some replica knows it (the Lemma 9.2 + two-extra-rounds
    argument): ``df + 3*(g + dg)``."""
    return timing.df + 3 * timing.gossip_round


def check_latency_records_against_bounds(
    records: Iterable[LatencyRecord],
    timing: TimingAssumptions,
    resume_time: float = 0.0,
    tolerance: float = 1e-9,
) -> List[Tuple[LatencyRecord, float]]:
    """Return the records violating Theorem 9.3 / 9.4 (empty list == all good).

    ``resume_time`` is the ``t`` of Theorem 9.4: for operations requested
    before it, the bound applies from ``resume_time`` rather than from the
    request time.
    """
    violations: List[Tuple[LatencyRecord, float]] = []
    for record in records:
        bound = response_time_bound(record.operation, timing)
        start = max(record.request_time, resume_time)
        deadline = start + bound + tolerance
        if record.response_time > deadline:
            violations.append((record, bound))
    return violations


def summarize_bounds_vs_measured(
    records: Iterable[LatencyRecord],
    timing: TimingAssumptions,
) -> Dict[str, Dict[str, float]]:
    """Per operation class: the analytic bound and the measured maximum /
    mean latency — the table printed by benchmark E3."""
    bounds = bound_by_class(timing)
    by_class: Dict[str, List[float]] = {name: [] for name in bounds}
    for record in records:
        by_class.setdefault(record.category, []).append(record.latency)
    summary: Dict[str, Dict[str, float]] = {}
    for name, bound in bounds.items():
        latencies = by_class.get(name, [])
        summary[name] = {
            "bound": bound,
            "count": float(len(latencies)),
            "max": max(latencies) if latencies else float("nan"),
            "mean": sum(latencies) / len(latencies) if latencies else float("nan"),
        }
    return summary
