"""``ShardedFrontend`` — N independent ESDS replica groups behind one router.

Each shard is a complete, unmodified
:class:`~repro.algorithm.system.AlgorithmSystem` managing a
:class:`~repro.service.keyed.KeyedStore` over the base data type; the
frontend consistent-hashes every request's key to pick the shard and mints
globally unique operation identifiers (one counter per client per shard,
under the ``client@shard`` composite identity — each shard sees one
contiguous seqno run per client, so compacted id summaries stay at one
interval per client), and the union of the shard traces is a well-formed
multi-object history.

Client-specified constraints (``prev`` sets) are a *per-object* notion in the
paper, and shards are independent objects: a ``prev`` edge must therefore
stay within one shard.  Since the router maps equal keys to equal shards,
per-key dependency chains (the session-guarantee pattern) always satisfy
this; a cross-shard ``prev`` is rejected with :class:`ConfigurationError`
rather than silently weakened.

The frontend intentionally exposes the same driving surface as a single
``AlgorithmSystem`` (``run_random``, ``drain``, invariant and trace checks),
so every verification tool in :mod:`repro.verification` applies shard by
shard.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.algorithm.checkpoint import CompactionPolicy
from repro.algorithm.system import AlgorithmSystem, ReplicaFactory
from repro.common import ConfigurationError, OperationId, ensure_not_stale
from repro.config import UNSET, ReplicaConfig, merge_legacy_config
from repro.core.operations import OperationDescriptor
from repro.datatypes.base import Operator, SerialDataType
from repro.service.keyed import KeyedStore
from repro.service.reshard import chain_ops
from repro.service.router import (
    KeyRangeMove,
    KeyspaceDirectory,
    ShardRouter,
    composite_client,
    stable_hash,
)


class ShardedFrontend:
    """A keyed, sharded data service built from independent ESDS instances.

    Parameters
    ----------
    base_type:
        The serial data type stored under every key.
    num_shards:
        Number of independent replica groups (ignored when *router* given).
    replicas_per_shard:
        Replicas in each group (the algorithm requires at least two).
    client_ids:
        Clients; each shard hosts a front end for every client under the
        ``client@shard`` composite identity, and identifier counters run
        per (client, shard) so each shard's seqnos are contiguous while
        operation identifiers stay globally unique.
    fast_core:
        Use the raw-speed replay/ordering core
        (:class:`~repro.algorithm.fastcore.FastReplicaCore`) in every
        shard; ignored when *replica_factory* is given.
    batch_replay:
        Layer the struct-of-arrays batch replay kernel
        (:class:`~repro.algorithm.batchcore.BatchReplicaCore`) on the fast
        core in every shard (requires ``fast_core=True``).
    delta_gossip / full_state_interval / incremental_replay:
        Forwarded to every shard's :class:`AlgorithmSystem`.
    compaction:
        Checkpoint-compaction configuration, threaded per shard: a single
        :class:`CompactionPolicy` applied everywhere, or a mapping from
        shard id to policy (shards absent from the mapping run uncompacted).
        Bounds each shard's tracked replica state by its unstable suffix.
    advert_gossip / checkpoint_chunk:
        Advert/pull checkpoint gossip, forwarded to every shard: gossip
        carries a compact checkpoint advert instead of the body, and behind
        replicas pull the body on demand (in ``checkpoint_chunk``-value
        transfer chunks).  Bounds each shard's steady-state gossip payload
        the way ``compaction`` bounds its memory.
    """

    def __init__(
        self,
        base_type: SerialDataType,
        num_shards: int = 2,
        replicas_per_shard: int = 3,
        client_ids: Sequence[str] = ("c0",),
        router: Optional[ShardRouter] = None,
        replica_factory: Optional[ReplicaFactory] = None,
        fast_core: bool = UNSET,
        batch_replay: bool = UNSET,
        delta_gossip: bool = UNSET,
        full_state_interval: int = UNSET,
        incremental_replay: bool = UNSET,
        virtual_nodes: int = 64,
        compaction: Union[None, CompactionPolicy, Mapping[str, CompactionPolicy]] = UNSET,
        advert_gossip: bool = UNSET,
        checkpoint_chunk: Optional[int] = UNSET,
        config: Optional[ReplicaConfig] = None,
    ) -> None:
        self.base_type = base_type
        self.store_type = KeyedStore(base_type)
        self.router = router or ShardRouter.for_count(num_shards, virtual_nodes=virtual_nodes)
        self.shard_ids: Tuple[str, ...] = self.router.shard_ids
        self.client_ids: Tuple[str, ...] = tuple(client_ids)
        self.config = merge_legacy_config(
            config,
            dict(
                fast_core=fast_core,
                batch_replay=batch_replay,
                delta_gossip=delta_gossip,
                full_state_interval=full_state_interval,
                incremental_replay=incremental_replay,
                compaction=compaction,
                advert_gossip=advert_gossip,
                checkpoint_chunk=checkpoint_chunk,
            ),
            "ShardedFrontend",
        )
        self._replicas_per_shard = replicas_per_shard
        self._replica_factory = replica_factory

        # Each shard hosts front ends under the composite per-shard client
        # identities the directory mints operation ids with: one contiguous
        # seqno counter per (client, shard), so a shard's compacted id
        # summary stays at one interval per client.
        self.systems: Dict[str, AlgorithmSystem] = {
            shard: self._build_system(shard) for shard in self.shard_ids
        }
        #: Shared routing/bookkeeping: unique identifiers, same-shard prev
        #: validation, operation-to-shard/key records.
        self.directory = KeyspaceDirectory(self.router, self.client_ids, base_type)

    def _build_system(self, shard: str) -> AlgorithmSystem:
        """One shard's complete ESDS instance (also used by ``add_shard``)."""
        return AlgorithmSystem(
            self.store_type,
            [f"{shard}.r{i}" for i in range(self._replicas_per_shard)],
            [composite_client(c, shard) for c in self.client_ids],
            replica_factory=self._replica_factory,
            config=self.config.for_shard(shard),
        )

    # -- routing ---------------------------------------------------------------

    def shard_of(self, key: str) -> str:
        """The shard identifier owning *key*."""
        return self.router.shard_for(key)

    def shard_of_operation(self, op_id: OperationId) -> str:
        """The shard a previously requested operation was routed to."""
        return self.directory.shard_of_operation(op_id)

    def key_of_operation(self, op_id: OperationId) -> str:
        """The key a previously requested operation addressed."""
        return self.directory.key_of_operation(op_id)

    def last_operation_on(self, key: str) -> Optional[OperationId]:
        """The most recently requested operation on *key* (any client)."""
        return self.directory.last_operation_on(key)

    # -- client interface ------------------------------------------------------

    def request(
        self,
        client: str,
        key: str,
        operator: Operator,
        prev: Sequence[OperationId] = (),
        strict: bool = False,
    ) -> OperationDescriptor:
        """Issue a keyed operation; returns the descriptor handed to the shard.

        ``prev`` identifiers must belong to operations previously routed to
        the *same* shard (always true for same-key dependencies).
        """
        shard, operation = self.directory.route(client, key, operator, prev, strict)
        self.systems[shard].request(operation)
        return operation

    # -- scheduling ------------------------------------------------------------

    def run_random(self, rng: random.Random, steps: int) -> int:
        """Perform up to *steps* random actions, interleaving shards randomly.

        Each step picks a shard uniformly and performs one of its enabled
        actions; shards progress independently, exactly as independent
        deployments would.
        """
        performed = 0
        shard_list = list(self.shard_ids)
        for _ in range(steps):
            shard = rng.choice(shard_list)
            if self.systems[shard].random_step(rng) is not None:
                performed += 1
        return performed

    def drain(self, rng: random.Random) -> None:
        """Deliver all traffic and gossip every shard to quiescence."""
        for shard in self.shard_ids:
            self.systems[shard].drain(rng)

    # -- resharding ------------------------------------------------------------

    def add_shard(self, shard_id: str, rng: random.Random) -> List[KeyRangeMove]:
        """Grow the ring by one shard: see :meth:`reshard`."""
        return self.reshard(self.router.add_shard(shard_id), rng)

    def drain_shard(self, shard_id: str, rng: random.Random) -> List[KeyRangeMove]:
        """Shrink the ring by one shard; its key ranges migrate to the
        surviving successors and the retired system's history stays
        readable.  See :meth:`reshard`."""
        return self.reshard(self.router.remove_shard(shard_id), rng)

    def reshard(self, new_router: ShardRouter, rng: random.Random) -> List[KeyRangeMove]:
        """Elastic reshard, synchronous flavour: drain to stability, migrate
        each moved key range's frozen history into its new owner as a
        ``prev``-chained slice (source eventual order), re-drain, flip.

        The channel-level frontend has no in-flight window — draining first
        freezes every slice at stability, so the flip is atomic here; the
        simulator's :meth:`repro.sim.sharded.ShardedCluster.reshard` is the
        live variant with a genuine dual-route handoff window.  Per-key
        barrier constraints are still installed (every post-reshard
        operation on a migrated key is chained after the migrated tail), so
        the destination's min-label order can never reorder the relocated
        history.  Returns the movement plan that was executed.
        """
        plan = ShardRouter.movement_plan(self.router, new_router)
        for shard in new_router.shard_ids:
            if shard not in self.router.shard_ids:
                if shard in self.systems:
                    raise ConfigurationError(
                        f"shard id {shard!r} was retired by an earlier reshard "
                        f"and cannot be reused"
                    )
                self.systems[shard] = self._build_system(shard)
        # Freeze every slice: all traffic answered and stable everywhere.
        self.drain(rng)
        by_pair: Dict[Tuple[str, str], List[KeyRangeMove]] = {}
        for move in plan:
            by_pair.setdefault((move.source, move.destination), []).append(move)
        hash_cache: Dict[str, int] = {}
        for (source, destination), moves in sorted(by_pair.items()):
            system = self.systems[source]
            key_ops: Dict[str, List[OperationId]] = {}
            for op_id, key in self.directory.keyed_operations():
                point = hash_cache.get(key)
                if point is None:
                    point = hash_cache[key] = stable_hash(key)
                if any(move.contains(point) for move in moves):
                    key_ops.setdefault(key, []).append(op_id)
            slice_ids = {op_id for ids in key_ops.values() for op_id in ids}
            if not slice_ids:
                continue
            order = [op_id for op_id in system.eventual_order() if op_id in slice_ids]
            by_id = {op.id: op for op in system.users.requested}
            target = self.systems[destination]
            present = {op.id for op in target.users.requested}
            chained = chain_ops(
                [by_id[op_id] for op_id in order],
                key_of=self.directory.key_of_operation,
            )
            for operation in chained:
                # A history migrating back to a former owner is partly
                # present already; the per-key chain links survive the skip.
                if operation.id in present:
                    continue
                target.ensure_client(operation.id.client)
                target.request(operation)
            target.drain(rng)
            for op_id in order:
                # Iterating in slice order, the last write per key is its
                # migrated tail: post-reshard operations on the key chain
                # after the relocated history.
                self.directory.set_barrier(
                    self.directory.key_of_operation(op_id), frozenset({op_id})
                )
        self.router = new_router
        self.directory.router = new_router
        self.shard_ids = new_router.shard_ids
        return plan

    # -- results ---------------------------------------------------------------

    @property
    def responded(self) -> Dict[OperationId, Any]:
        """Every delivered response, across all shards.

        After a reshard, a migrated operation is answered both by its
        minting shard and by the destination's re-answer of the injected
        chain; the minting shard's value wins the merge (the two agree when
        the handoff preserved the per-key order — which the trace oracles
        verify)."""
        merged: Dict[OperationId, Any] = {}
        for sid, system in self.systems.items():
            for op_id, value in system.users.responded.items():
                if self.directory.origin_shard(op_id, sid) == sid:
                    merged[op_id] = value
                else:
                    merged.setdefault(op_id, value)
        return merged

    @property
    def failed(self) -> Dict[OperationId, str]:
        """Operations declared unanswerable — every replica of their shard
        NACKed the retransmit because the compacted response value aged out
        of its retained-value ledger (finite ``value_retention``).  The
        explicit failure signal replaces silently-never-answering."""
        merged: Dict[OperationId, str] = {}
        for sid, system in self.systems.items():
            for frontend in system.frontends.values():
                for op_id, reason in frontend.failed.items():
                    if self.directory.origin_shard(op_id, sid) == sid:
                        merged[op_id] = reason
                    else:
                        merged.setdefault(op_id, reason)
        return merged

    def value_of(self, operation: OperationDescriptor) -> Any:
        """The value returned for *operation* (KeyError when unanswered,
        :class:`~repro.common.StaleValueError` when it failed for good)."""
        shard = self.directory.shard_of_operation(operation.id)
        system = self.systems[shard]
        ensure_not_stale(system.frontends[operation.id.client].failed, operation.id)
        return system.users.responded[operation.id]

    def outstanding_operations(self) -> int:
        """Requested operations neither answered nor failed, across shards."""
        total = 0
        for system in self.systems.values():
            failed = sum(len(fe.failed) for fe in system.frontends.values())
            total += len(system.users.requested) - len(system.users.responded) - failed
        return total

    def eventual_orders(self) -> Dict[str, List[OperationId]]:
        """Each shard's eventual total order (by system-wide minimum label)."""
        return {shard: system.eventual_order() for shard, system in self.systems.items()}

    # -- verification ----------------------------------------------------------

    def check_invariants(self) -> None:
        """Run the Section 7/8 invariant checker on every shard."""
        from repro.verification.invariants import AlgorithmInvariantChecker

        for system in self.systems.values():
            AlgorithmInvariantChecker(system).check_all()

    def check_traces(self, check_nonstrict: bool = False) -> None:
        """Check the Theorem 5.7/5.8 guarantees on every shard's trace."""
        from repro.verification.serializability import check_system_trace

        for system in self.systems.values():
            check_system_trace(system, check_nonstrict=check_nonstrict)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedFrontend({self.store_type.name}, shards={len(self.shard_ids)}, "
            f"clients={len(self.client_ids)})"
        )
