"""Consistent-hash routing of keys onto shards.

The router is the only component that decides key placement, so it must be
*deterministic across processes and runs*: Python's built-in ``hash`` for
strings is randomized per process (``PYTHONHASHSEED``), so points on the ring
are derived from MD5 digests instead (MD5 is used purely as a mixing
function, not for security).

A classic consistent-hash ring with virtual nodes is used rather than plain
``hash(key) % n`` so that growing the shard fleet only moves ``~1/n`` of the
keyspace — the property every production sharded store relies on for
rebalancing, and the one :class:`TestRouterStability` pins down.

:class:`KeyspaceDirectory` layers the service-level bookkeeping on top of
the ring: globally unique operation identifiers (one counter per client per
shard, minted under the ``client@shard`` composite identity so each shard
sees a contiguous seqno run per client), the same-shard ``prev``
validation, and the operation-to-shard/key records both the algorithm-level
and the simulated sharded frontends need.  Keeping it here means the two
frontends cannot drift apart on the routing rules.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common import ConfigurationError, OperationId, OperationIdGenerator
from repro.core.operations import OperationDescriptor, make_operation
from repro.datatypes.base import Operator, SerialDataType
from repro.service.keyed import KeyedStore


def stable_hash(text: str) -> int:
    """A 64-bit hash of *text* that is stable across processes and runs."""
    return int.from_bytes(hashlib.md5(text.encode("utf-8")).digest()[:8], "big")


class ShardRouter:
    """Maps string keys onto shard identifiers via a consistent-hash ring.

    Parameters
    ----------
    shard_ids:
        Identifiers of the shards (non-empty, unique).
    virtual_nodes:
        Ring points per shard; more points smooth the keyspace split at the
        cost of a larger (still tiny) ring.
    """

    def __init__(self, shard_ids: Sequence[str], virtual_nodes: int = 64) -> None:
        ids = tuple(shard_ids)
        if not ids:
            raise ConfigurationError("a router needs at least one shard")
        if len(set(ids)) != len(ids):
            raise ConfigurationError("shard identifiers must be unique")
        if virtual_nodes < 1:
            raise ConfigurationError("virtual_nodes must be at least 1")
        self.shard_ids: Tuple[str, ...] = ids
        self.virtual_nodes = virtual_nodes
        ring: List[Tuple[int, str]] = []
        for shard in ids:
            for replica in range(virtual_nodes):
                ring.append((stable_hash(f"{shard}#{replica}"), shard))
        ring.sort()
        self._ring = ring
        self._points = [point for point, _shard in ring]

    @classmethod
    def for_count(cls, num_shards: int, prefix: str = "s", virtual_nodes: int = 64) -> "ShardRouter":
        """A router over ``num_shards`` shards named ``s0 .. s{n-1}``."""
        if num_shards < 1:
            raise ConfigurationError("num_shards must be at least 1")
        return cls([f"{prefix}{i}" for i in range(num_shards)], virtual_nodes)

    # -- routing ---------------------------------------------------------------

    def shard_for(self, key: str) -> str:
        """The shard owning *key* (deterministic)."""
        index = bisect.bisect_right(self._points, stable_hash(key)) % len(self._ring)
        return self._ring[index][1]

    def spread(self, keys: Iterable[str]) -> Dict[str, int]:
        """How many of *keys* each shard owns (all shards present, 0 allowed)."""
        counts: Dict[str, int] = {shard: 0 for shard in self.shard_ids}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self.shard_ids)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardRouter({list(self.shard_ids)}, virtual_nodes={self.virtual_nodes})"


def composite_client(client: str, shard: str) -> str:
    """The per-shard client identity operations are minted under.

    Identifier counters run per ``(client, shard)``: the seqnos one shard
    sees from one client are contiguous, so a shard's compacted
    :class:`~repro.algorithm.checkpoint.OpIdSummary` coalesces to one
    interval per client instead of fragmenting across the client's
    interleaved traffic to other shards.  Uniqueness across the service is
    by construction — distinct shards mint under distinct composite names.
    """
    return f"{client}@{shard}"


class KeyspaceDirectory:
    """Routing plus operation bookkeeping shared by the sharded frontends.

    Mints globally unique identifiers (one counter per client *per shard*,
    under the :func:`composite_client` identity — each shard's view of a
    client is a contiguous seqno run), validates that ``prev`` constraints
    stay within one shard (client-specified constraints are a per-object
    notion, and shards are independent objects; equal keys always route to
    equal shards, so per-key chains are always legal), and records which
    shard and key every operation went to.
    """

    def __init__(
        self,
        router: ShardRouter,
        client_ids: Sequence[str],
        base_type: SerialDataType,
    ) -> None:
        self.router = router
        self.base_type = base_type
        self.client_ids: Tuple[str, ...] = tuple(client_ids)
        self.id_generators: Dict[Tuple[str, str], OperationIdGenerator] = {}
        self._shard_of_op: Dict[OperationId, str] = {}
        self._key_of_op: Dict[OperationId, str] = {}
        self._last_on_key: Dict[str, OperationId] = {}

    def route(
        self,
        client: str,
        key: str,
        operator: Operator,
        prev: Iterable[OperationId] = (),
        strict: bool = False,
    ) -> Tuple[str, OperationDescriptor]:
        """Validate and build one keyed operation; returns ``(shard, op)``."""
        if client not in self.client_ids:
            raise ConfigurationError(f"unknown client {client!r}")
        self.base_type.check_operator(operator)
        shard = self.router.shard_for(key)
        prev_ids = frozenset(prev)
        for dep in prev_ids:
            owner = self._shard_of_op.get(dep)
            if owner is None:
                raise ConfigurationError(
                    f"prev references an operation never requested here: {dep}"
                )
            if owner != shard:
                raise ConfigurationError(
                    f"prev constraint {dep} crosses shards ({owner} -> {shard}); "
                    f"client-specified constraints only hold within one shard"
                )
        generator = self.id_generators.get((client, shard))
        if generator is None:
            generator = OperationIdGenerator(composite_client(client, shard))
            self.id_generators[(client, shard)] = generator
        operation = make_operation(
            KeyedStore.at(key, operator), generator.fresh(), prev_ids, strict
        )
        self._shard_of_op[operation.id] = shard
        self._key_of_op[operation.id] = key
        self._last_on_key[key] = operation.id
        return shard, operation

    # -- lookups ---------------------------------------------------------------

    def shard_of_operation(self, op_id: OperationId) -> str:
        return self._shard_of_op[op_id]

    def key_of_operation(self, op_id: OperationId) -> str:
        return self._key_of_op[op_id]

    def last_operation_on(self, key: str) -> Optional[OperationId]:
        return self._last_on_key.get(key)
