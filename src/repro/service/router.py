"""Consistent-hash routing of keys onto shards.

The router is the only component that decides key placement, so it must be
*deterministic across processes and runs*: Python's built-in ``hash`` for
strings is randomized per process (``PYTHONHASHSEED``), so points on the ring
are derived from MD5 digests instead (MD5 is used purely as a mixing
function, not for security).

A classic consistent-hash ring with virtual nodes is used rather than plain
``hash(key) % n`` so that growing the shard fleet only moves ``~1/n`` of the
keyspace — the property every production sharded store relies on for
rebalancing, and the one :class:`TestRouterStability` pins down.

:class:`KeyspaceDirectory` layers the service-level bookkeeping on top of
the ring: globally unique operation identifiers (one counter per client per
shard, minted under the ``client@shard`` composite identity so each shard
sees a contiguous seqno run per client), the same-shard ``prev``
validation, and the operation-to-shard/key records both the algorithm-level
and the simulated sharded frontends need.  Keeping it here means the two
frontends cannot drift apart on the routing rules.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common import ConfigurationError, OperationId, OperationIdGenerator
from repro.core.operations import OperationDescriptor, make_operation
from repro.datatypes.base import Operator, SerialDataType
from repro.service.keyed import KeyedStore


def stable_hash(text: str) -> int:
    """A 64-bit hash of *text* that is stable across processes and runs."""
    return int.from_bytes(hashlib.md5(text.encode("utf-8")).digest()[:8], "big")


#: Size of the hash space the ring lives in (``stable_hash`` is 64-bit).
HASH_SPACE = 1 << 64


@dataclass(frozen=True)
class KeyRangeMove:
    """One contiguous hash range whose ownership changes between two rings.

    ``start`` is inclusive, ``end`` exclusive; ranges are linear (a move
    wrapping the top of the hash space appears as two entries).  Every key
    whose :func:`stable_hash` falls in ``[start, end)`` moves from
    ``source`` to ``destination``.
    """

    start: int
    end: int
    source: str
    destination: str

    def contains(self, point: int) -> bool:
        return self.start <= point < self.end


class ShardRouter:
    """Maps string keys onto shard identifiers via a consistent-hash ring.

    Parameters
    ----------
    shard_ids:
        Identifiers of the shards (non-empty, unique).
    virtual_nodes:
        Ring points per shard; more points smooth the keyspace split at the
        cost of a larger (still tiny) ring.
    """

    def __init__(self, shard_ids: Sequence[str], virtual_nodes: int = 64) -> None:
        ids = tuple(shard_ids)
        if not ids:
            raise ConfigurationError("a router needs at least one shard")
        if len(set(ids)) != len(ids):
            raise ConfigurationError("shard identifiers must be unique")
        if virtual_nodes < 1:
            raise ConfigurationError("virtual_nodes must be at least 1")
        self.shard_ids: Tuple[str, ...] = ids
        self.virtual_nodes = virtual_nodes
        ring: List[Tuple[int, str]] = []
        for shard in ids:
            for replica in range(virtual_nodes):
                ring.append((stable_hash(f"{shard}#{replica}"), shard))
        ring.sort()
        self._ring = ring
        self._points = [point for point, _shard in ring]

    @classmethod
    def for_count(cls, num_shards: int, prefix: str = "s", virtual_nodes: int = 64) -> "ShardRouter":
        """A router over ``num_shards`` shards named ``s0 .. s{n-1}``."""
        if num_shards < 1:
            raise ConfigurationError("num_shards must be at least 1")
        return cls([f"{prefix}{i}" for i in range(num_shards)], virtual_nodes)

    # -- routing ---------------------------------------------------------------

    def shard_for(self, key: str) -> str:
        """The shard owning *key* (deterministic)."""
        return self.shard_for_hash(stable_hash(key))

    def shard_for_hash(self, point: int) -> str:
        """The shard owning ring position *point* (the successor rule)."""
        index = bisect.bisect_right(self._points, point) % len(self._ring)
        return self._ring[index][1]

    # -- ring mutation (resharding) --------------------------------------------

    def add_shard(self, shard_id: str) -> "ShardRouter":
        """A new router with *shard_id* joined (the ring is immutable; live
        migration swaps routers once the moved ranges are caught up)."""
        if shard_id in self.shard_ids:
            raise ConfigurationError(f"shard {shard_id!r} already present")
        return ShardRouter(self.shard_ids + (shard_id,), self.virtual_nodes)

    def remove_shard(self, shard_id: str) -> "ShardRouter":
        """A new router with *shard_id* drained out of the ring."""
        if shard_id not in self.shard_ids:
            raise ConfigurationError(f"shard {shard_id!r} not present")
        remaining = tuple(s for s in self.shard_ids if s != shard_id)
        if not remaining:
            raise ConfigurationError("cannot drain the last shard")
        return ShardRouter(remaining, self.virtual_nodes)

    @staticmethod
    def movement_plan(old: "ShardRouter", new: "ShardRouter") -> List[KeyRangeMove]:
        """The exact hash ranges whose owner differs between two rings.

        Merging both rings' points splits the hash space into elementary
        arcs on which ownership is constant in *both* rings; arcs whose old
        and new owner differ are the moves, coalesced when contiguous with
        the same (source, destination).  Consistent hashing guarantees the
        plan only ever moves keys **to** a joining shard or **from** a
        draining one — roughly ``1/n`` of the space either way.
        """
        if old.virtual_nodes != new.virtual_nodes:
            raise ConfigurationError("movement plans require equal virtual_nodes")
        points = sorted({*old._points, *new._points})
        boundaries = [0] + points + [HASH_SPACE]
        moves: List[KeyRangeMove] = []
        for start, end in zip(boundaries, boundaries[1:]):
            if start == end:
                continue
            source = old.shard_for_hash(start)
            destination = new.shard_for_hash(start)
            if source == destination:
                continue
            last = moves[-1] if moves else None
            if (
                last is not None
                and last.end == start
                and last.source == source
                and last.destination == destination
            ):
                moves[-1] = KeyRangeMove(last.start, end, source, destination)
            else:
                moves.append(KeyRangeMove(start, end, source, destination))
        return moves

    def spread(self, keys: Iterable[str]) -> Dict[str, int]:
        """How many of *keys* each shard owns (all shards present, 0 allowed)."""
        counts: Dict[str, int] = {shard: 0 for shard in self.shard_ids}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self.shard_ids)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardRouter({list(self.shard_ids)}, virtual_nodes={self.virtual_nodes})"


def composite_client(client: str, shard: str) -> str:
    """The per-shard client identity operations are minted under.

    Identifier counters run per ``(client, shard)``: the seqnos one shard
    sees from one client are contiguous, so a shard's compacted
    :class:`~repro.algorithm.checkpoint.OpIdSummary` coalesces to one
    interval per client instead of fragmenting across the client's
    interleaved traffic to other shards.  Uniqueness across the service is
    by construction — distinct shards mint under distinct composite names.
    """
    return f"{client}@{shard}"


class TransitionRouter:
    """Dual-routing overlay active during a live reshard.

    Presents the same ``shard_for`` surface as :class:`ShardRouter` while a
    migration is in flight: hash ranges from the movement plan route to the
    *old* owner until their handoff window closes (the destination caught
    up), then :meth:`flip` switches that range — and only that range — to
    the *new* ring.  Once every planned range has flipped the overlay is
    equivalent to the new router and the harness swaps it out.
    """

    def __init__(
        self, old: ShardRouter, new: ShardRouter, plan: Sequence[KeyRangeMove]
    ) -> None:
        self.old = old
        self.new = new
        self.plan: Tuple[KeyRangeMove, ...] = tuple(plan)
        self.virtual_nodes = new.virtual_nodes
        self._flipped: List[KeyRangeMove] = []
        self._flipped_starts: List[int] = []

    @property
    def shard_ids(self) -> Tuple[str, ...]:
        """Old shards first (a draining shard keeps routing until its ranges
        flip), then any joining shards."""
        extra = tuple(s for s in self.new.shard_ids if s not in self.old.shard_ids)
        return self.old.shard_ids + extra

    def flip(self, move: KeyRangeMove) -> None:
        """Atomically switch *move*'s hash range to the new ring."""
        if move not in self.plan:
            raise ConfigurationError(f"range {move} is not part of the movement plan")
        if move in self._flipped:
            return
        index = bisect.bisect_right(self._flipped_starts, move.start)
        self._flipped_starts.insert(index, move.start)
        self._flipped.insert(index, move)

    def complete(self) -> bool:
        return len(self._flipped) == len(self.plan)

    def shard_for_hash(self, point: int) -> str:
        index = bisect.bisect_right(self._flipped_starts, point) - 1
        if index >= 0 and self._flipped[index].contains(point):
            return self.new.shard_for_hash(point)
        return self.old.shard_for_hash(point)

    def shard_for(self, key: str) -> str:
        return self.shard_for_hash(stable_hash(key))

    def __len__(self) -> int:
        return len(self.shard_ids)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TransitionRouter({list(self.old.shard_ids)} -> {list(self.new.shard_ids)}, "
            f"flipped={len(self._flipped)}/{len(self.plan)})"
        )


class KeyspaceDirectory:
    """Routing plus operation bookkeeping shared by the sharded frontends.

    Mints globally unique identifiers (one counter per client *per shard*,
    under the :func:`composite_client` identity — each shard's view of a
    client is a contiguous seqno run), validates that ``prev`` constraints
    stay within one shard (client-specified constraints are a per-object
    notion, and shards are independent objects; equal keys always route to
    equal shards, so per-key chains are always legal), and records which
    shard and key every operation went to.
    """

    def __init__(
        self,
        router: ShardRouter,
        client_ids: Sequence[str],
        base_type: SerialDataType,
    ) -> None:
        self.router = router
        self.base_type = base_type
        self.client_ids: Tuple[str, ...] = tuple(client_ids)
        self.id_generators: Dict[Tuple[str, str], OperationIdGenerator] = {}
        self._shard_of_op: Dict[OperationId, str] = {}
        self._key_of_op: Dict[OperationId, str] = {}
        self._last_on_key: Dict[str, OperationId] = {}
        #: Per-key migration barriers: while key ``k`` is in a reshard
        #: handoff (and forever after), every new operation on ``k`` carries
        #: these identifiers as additional ``prev`` constraints, ordering it
        #: after the migrated history at the destination.  During the window
        #: the barrier is the *whole* frozen slice-set of ``k``'s operations
        #: (the slice order is only fixed at stability, but its membership is
        #: frozen at the flip); after injection it tightens to the single
        #: per-key chain tail.
        self.migration_barriers: Dict[str, frozenset] = {}

    def route(
        self,
        client: str,
        key: str,
        operator: Operator,
        prev: Iterable[OperationId] = (),
        strict: bool = False,
    ) -> Tuple[str, OperationDescriptor]:
        """Validate and build one keyed operation; returns ``(shard, op)``."""
        if client not in self.client_ids:
            raise ConfigurationError(f"unknown client {client!r}")
        self.base_type.check_operator(operator)
        shard = self.router.shard_for(key)
        prev_ids = frozenset(prev)
        for dep in prev_ids:
            owner = self._shard_of_op.get(dep)
            if owner is None:
                raise ConfigurationError(
                    f"prev references an operation never requested here: {dep}"
                )
            if owner != shard and self.router.shard_for(self._key_of_op[dep]) != shard:
                # The minting shard differs AND the dependency's key does not
                # currently route here either: a genuine cross-shard
                # constraint.  (After a reshard, operations minted by the old
                # owner whose key migrated satisfy the second test — their
                # history moved with the key, so same-key chains keep
                # working across the flip.)
                raise ConfigurationError(
                    f"prev constraint {dep} crosses shards ({owner} -> {shard}); "
                    f"client-specified constraints only hold within one shard"
                )
        barrier = self.migration_barriers.get(key)
        if barrier:
            # Barrier identifiers are same-key operations, so they always
            # pass the cross-shard validation above; without this edge a
            # destination replica that has not executed the injected chain
            # yet could give the new operation a minimum label *below* the
            # migrated history's, reordering the key's past.
            prev_ids = prev_ids | barrier
        generator = self.id_generators.get((client, shard))
        if generator is None:
            generator = OperationIdGenerator(composite_client(client, shard))
            self.id_generators[(client, shard)] = generator
        operation = make_operation(
            KeyedStore.at(key, operator), generator.fresh(), prev_ids, strict
        )
        self._shard_of_op[operation.id] = shard
        self._key_of_op[operation.id] = key
        self._last_on_key[key] = operation.id
        return shard, operation

    # -- lookups ---------------------------------------------------------------

    def shard_of_operation(self, op_id: OperationId) -> str:
        return self._shard_of_op[op_id]

    def key_of_operation(self, op_id: OperationId) -> str:
        return self._key_of_op[op_id]

    def last_operation_on(self, key: str) -> Optional[OperationId]:
        return self._last_on_key.get(key)

    def origin_shard(self, op_id: OperationId, default: Optional[str] = None) -> Optional[str]:
        """The shard that *minted* an operation (its answering shard even
        after the key migrates away)."""
        return self._shard_of_op.get(op_id, default)

    def keyed_operations(self) -> Iterable[Tuple[OperationId, str]]:
        """Every recorded ``(operation id, key)`` pair (reshard coordinators
        scan this to freeze a moving range's operation set at flip time)."""
        return self._key_of_op.items()

    def set_barrier(self, key: str, ids: frozenset) -> None:
        """Install (or tighten) the migration barrier for *key*."""
        self.migration_barriers[key] = ids
