"""``KeyedStore`` — a multi-object serial data type built from any base type.

Section 2.2 defines a serial data type as ``(Sigma, sigma_0, V, O, tau)``.
Given a base type ``B``, the keyed store is itself a serial data type whose
states are finite maps ``key -> B.state``: the operator ``at(k, o)`` applies
the base operator ``o`` to the sub-state stored under ``k`` (implicitly
``B.sigma_0`` for keys never written), and ``keys()`` reports the set of keys
present.  Because the result is again a :class:`SerialDataType`, the whole
specification / algorithm / verification stack applies to it unchanged — a
single ESDS instance can manage an entire keyspace, and the sharded service
layer assigns disjoint keyspace slices to independent instances.

States are represented as tuples of ``(key, sub_state)`` pairs sorted by key,
so they stay immutable and hashable whenever the base states are (a protocol
requirement of :class:`~repro.datatypes.base.SerialDataType`).

The Section 10.3 commutativity predicates lift pointwise: operators on
*different* keys always commute and are mutually oblivious (they touch
disjoint sub-states), while operators on the *same* key delegate to the base
type.  This is what makes keyed workloads so friendly to the ``Commute``
replica variant and to sharding alike.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.datatypes.base import Operator, SerialDataType

#: The keyed-store state: ``(key, sub_state)`` pairs sorted by key.
KeyedState = Tuple[Tuple[str, Any], ...]


class KeyedStore(SerialDataType):
    """Maps string keys onto independent instances of a base data type.

    >>> store = KeyedStore(CounterType())
    >>> state, _ = store.apply(store.initial_state(),
    ...                        KeyedStore.at("a", CounterType.increment()))
    >>> store.lookup(state, "a")
    1
    """

    def __init__(self, base: SerialDataType) -> None:
        self.base = base
        self.name = f"keyed<{base.name}>"

    # -- operator constructors ----------------------------------------------

    @staticmethod
    def at(key: str, operator: Operator) -> Operator:
        """The keyed operator applying *operator* to the object under *key*."""
        return Operator("at", (key, operator))

    @staticmethod
    def keys_op() -> Operator:
        """Report the tuple of keys currently present (read-only)."""
        return Operator("keys")

    @staticmethod
    def key_of(operator: Operator) -> Optional[str]:
        """The key an ``at`` operator addresses (``None`` for ``keys``).

        The shard router uses this to route requests without interpreting
        the inner operator.
        """
        if operator.name == "at" and len(operator.args) == 2:
            return operator.args[0]
        return None

    @staticmethod
    def inner_of(operator: Operator) -> Operator:
        """The base-type operator wrapped by an ``at`` operator."""
        if operator.name != "at" or len(operator.args) != 2:
            raise ValueError(f"{operator} is not a keyed 'at' operator")
        return operator.args[1]

    # -- serial data type interface ------------------------------------------

    def initial_state(self) -> KeyedState:
        return ()

    def apply(self, state: KeyedState, operator: Operator) -> Tuple[KeyedState, Any]:
        if operator.name == "keys":
            return state, tuple(key for key, _sub in state)
        key, inner = operator.args
        mapping: Dict[str, Any] = dict(state)
        sub_state = mapping.get(key, self.base.initial_state())
        new_sub, value = self.base.apply(sub_state, inner)
        if new_sub == sub_state:
            # No sub-state change: return the input state itself.  Beyond
            # skipping a rebuild on the replay hot path, this keeps the
            # is_read_only/oblivious/commute contracts honest — a read-only
            # operator on an absent key must not materialize it, and keys()
            # must not report phantom entries.
            return state, value
        mapping[key] = new_sub
        next_state = tuple(sorted(mapping.items(), key=lambda item: item[0]))
        return next_state, value

    def check_operator(self, operator: Operator) -> None:
        if operator.name == "keys":
            if operator.args:
                raise ValueError("keys() takes no arguments")
            return
        if operator.name != "at":
            raise ValueError(f"unknown keyed-store operator {operator.name!r}")
        if len(operator.args) != 2:
            raise ValueError("at(key, operator) takes exactly two arguments")
        key, inner = operator.args
        if not isinstance(key, str):
            raise ValueError(f"keyed-store keys must be strings, got {key!r}")
        if not isinstance(inner, Operator):
            raise ValueError(f"at() wraps a base-type Operator, got {inner!r}")
        self.base.check_operator(inner)

    # -- Section 10.3 predicates, lifted pointwise ----------------------------

    def is_read_only(self, op: Operator) -> bool:
        if op.name == "keys":
            return True
        return self.base.is_read_only(self.inner_of(op))

    def state_independent(self, op: Operator) -> bool:
        # keys() reports which keys exist — state-dependent by definition;
        # an ``at`` reports whatever its inner operator reports.
        if op.name == "keys":
            return False
        return self.base.state_independent(self.inner_of(op))

    def commute(self, a: Operator, b: Operator) -> bool:
        # ``keys`` never changes the state, so it state-commutes with
        # everything; ``at`` operators on distinct keys touch disjoint
        # sub-states.
        if a.name == "keys" or b.name == "keys":
            return True
        if self.key_of(a) != self.key_of(b):
            return True
        return self.base.commute(self.inner_of(a), self.inner_of(b))

    def oblivious(self, a: Operator, b: Operator) -> bool:
        # Is ``a``'s reported value unchanged by running ``b`` first?
        if b.name == "keys":
            return True  # keys() is the identity on states
        if a.name == "keys":
            # ``b`` is an ``at`` and may create its key, changing keys().
            return self.base.is_read_only(self.inner_of(b))
        if self.key_of(a) != self.key_of(b):
            return True
        return self.base.oblivious(self.inner_of(a), self.inner_of(b))

    # -- state inspection ------------------------------------------------------

    def lookup(self, state: KeyedState, key: str) -> Any:
        """The sub-state stored under *key* (the base initial state when the
        key has never been written)."""
        for existing, sub_state in state:
            if existing == key:
                return sub_state
        return self.base.initial_state()

    def as_dict(self, state: KeyedState) -> Dict[str, Any]:
        """A plain ``dict`` view of the keyed state."""
        return dict(state)
