"""Sharded multi-object service layer.

The paper's algorithm manages a *single* replicated object.  The service
layer scales it to a keyed, multi-object store the way production systems do
(and the way the roadmap's north star demands): partition a string keyspace
across many *independent* ESDS instances, each of which runs the unmodified
per-object algorithm, and route every request to the instance owning its key.
Because shards never share operations, the per-shard correctness argument
(Sections 5-8) carries over unchanged — each shard is its own eventually
serializable data service, and the composition is a per-key eventually
serializable store.

Three pieces:

* :class:`~repro.service.keyed.KeyedStore` — a serial-data-type adapter
  mapping string keys onto any existing :mod:`repro.datatypes` object, so a
  single ESDS instance manages a whole keyspace slice;
* :class:`~repro.service.router.ShardRouter` — deterministic consistent
  hashing of keys onto shard identifiers (virtual nodes, stable across
  processes and ``PYTHONHASHSEED``);
* :class:`~repro.service.frontend.ShardedFrontend` — N independent
  :class:`~repro.algorithm.system.AlgorithmSystem` replica groups behind one
  routing interface, with globally unique operation identifiers and
  per-shard invariant / trace checking.

The simulated-time counterpart (one seeded event loop driving every shard)
is :class:`repro.sim.sharded.ShardedCluster`.
"""

from repro.service.keyed import KeyedStore
from repro.service.router import ShardRouter
from repro.service.frontend import ShardedFrontend

__all__ = [
    "KeyedStore",
    "ShardRouter",
    "ShardedFrontend",
]
