"""Live-resharding primitives: history slices, verified chunked transfer,
chain injection.

When a key range moves between shards, the destination must end up with the
*same per-key operation history in the same order* the source settled on —
otherwise values computed after the flip could contradict answers the source
already gave.  Three cooperating pieces make that hold:

* **Slice** — the moving keys' full operation history in the source shard's
  eventual order.  The coordinator only cuts a slice once every sliced
  operation is answered and stable at every source replica, so the order is
  frozen (Invariant 7.2: the stable prefix is never reordered).

* **Chunked, digest-verified transfer** — the slice ships in label-order
  chunks mirroring the checkpoint-transfer path: every chunk carries the
  whole slice's :class:`~repro.algorithm.checkpoint.OpIdSummary`, the
  chained fold-order digest and a content digest over operations *and*
  source-recorded response values.  The receiver reassembles, recomputes
  both digests, and rejects any tampered or truncated body — the sender
  then re-sends the slice (heal-by-re-pull, same discipline as corrupted
  checkpoint transfers).

* **Chain injection** — verified operations are injected into the
  destination as *ordinary* requests, with their original ``prev`` sets
  replaced by one link to the previously injected operation.  The chain
  forces every destination replica to execute the slice in source order,
  and minimum-label merging preserves chained order system-wide (for
  chained ``x < y``, at the replica achieving ``minlabel(y)`` the label of
  ``x`` is smaller, so ``minlabel(x) < minlabel(y)``).  Per-key values are
  then correct by :class:`~repro.service.keyed.KeyedStore` obliviousness:
  the value of an operation on key ``k`` depends only on the
  ``k``-subsequence of the order, which injection preserves exactly.
  Cross-key ``prev`` links cannot be lost — the directory never admits
  them across shards in the first place.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algorithm.checkpoint import (
    GENESIS_ORDER_DIGEST,
    OpIdSummary,
    canonical_repr,
    chain_order_digest,
    chunk_slices,
)
from repro.common import OperationId
from repro.core.operations import OperationDescriptor, make_operation

#: Marker wrapped around a migrated value tampered in flight by the
#: corruption adversary (mirrors the checkpoint-transfer marker).
MIGRATION_CORRUPTION_MARKER = "__corrupted__"


def slice_digest(
    ops: Sequence[OperationDescriptor], values: Mapping[OperationId, Any]
) -> str:
    """Content digest of one migration slice: the chained order digest over
    the operation identifiers plus every shipped response value, canonically
    rendered (set/dict ``repr`` instability must not brand honest payloads
    as corrupt — same reasoning as checkpoint digests)."""
    order = chain_order_digest(GENESIS_ORDER_DIGEST, (op.id for op in ops))
    material = repr((
        order,
        tuple(
            (repr(op_id), canonical_repr(values[op_id]))
            for op_id in sorted(values, key=repr)
        ),
    ))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class MigrationChunk:
    """One label-order slice of a key-range migration transfer.

    Every chunk carries the whole slice's id summary and digests, so the
    receiver can verify the assembled body end to end no matter which chunk
    arrives last; ``epoch`` distinguishes re-sends after a rejection or a
    loss timeout (chunks of different epochs never mix in one assembly).
    """

    source: str
    destination: str
    epoch: int
    seq: int
    total: int
    ops: Tuple[OperationDescriptor, ...]
    #: Source-recorded response values of this chunk's answered operations,
    #: in slice (label) order.
    values: Tuple[Tuple[OperationId, Any], ...]
    ids: OpIdSummary
    order_digest: str
    digest: str

    def size_estimate(self) -> int:
        """Wire-size contribution in op-ref units (rides the transfer-kind
        accounting, like checkpoint transfer chunks)."""
        return len(self.ops) + len(self.values) + self.ids.interval_count + 2


def build_chunks(
    source: str,
    destination: str,
    ops: Sequence[OperationDescriptor],
    values: Mapping[OperationId, Any],
    chunk: Optional[int],
    epoch: int,
) -> List[MigrationChunk]:
    """Split a frozen slice into transfer chunks of at most *chunk*
    operations each (``None`` = a single chunk), in slice order."""
    ops = list(ops)
    ids = OpIdSummary().with_ids(op.id for op in ops)
    order = chain_order_digest(GENESIS_ORDER_DIGEST, (op.id for op in ops))
    digest = slice_digest(ops, values)
    slices = chunk_slices(ops, chunk)
    chunks: List[MigrationChunk] = []
    for seq, part in enumerate(slices):
        chunks.append(
            MigrationChunk(
                source=source,
                destination=destination,
                epoch=epoch,
                seq=seq,
                total=len(slices),
                ops=tuple(part),
                values=tuple(
                    (op.id, values[op.id]) for op in part if op.id in values
                ),
                ids=ids,
                order_digest=order,
                digest=digest,
            )
        )
    return chunks


def tamper_chunk(chunk: MigrationChunk) -> MigrationChunk:
    """The corruption adversary's bit-flip on one migration chunk: a value
    is wrapped (or, value-free chunks, an operation is dropped) while the
    digest fields ride along intact — the receiver's recomputation must
    catch either mutation."""
    if chunk.values:
        (op_id, value), *rest = chunk.values
        return replace(
            chunk, values=((op_id, (MIGRATION_CORRUPTION_MARKER, value)), *rest)
        )
    return replace(chunk, ops=chunk.ops[1:])


class SliceAssembly:
    """Destination-side reassembly of one slice with end-to-end verification.

    Chunks arrive unordered (and possibly duplicated, lost, or re-sent under
    a newer epoch); the newest epoch wins.  When every sequence number of
    the current epoch is present the body is assembled in slice order and
    both digests are recomputed: a mismatch rejects the body (counted in
    ``rejections``) and resets the assembly for the sender's re-send.
    """

    def __init__(self) -> None:
        self._epoch: Optional[int] = None
        self._chunks: Dict[int, MigrationChunk] = {}
        self.rejections = 0

    def receive(
        self, chunk: MigrationChunk
    ) -> Optional[Tuple[List[OperationDescriptor], Dict[OperationId, Any]]]:
        """Absorb one chunk; returns the verified ``(ops, values)`` body when
        this chunk completes the slice, ``None`` otherwise (including on a
        digest rejection, which bumps ``rejections``)."""
        if self._epoch is None or chunk.epoch > self._epoch:
            self._epoch = chunk.epoch
            self._chunks = {}
        elif chunk.epoch < self._epoch:
            return None  # stale re-send; a newer epoch is already assembling
        self._chunks[chunk.seq] = chunk
        if len(self._chunks) < chunk.total:
            return None
        parts = [self._chunks[seq] for seq in range(chunk.total)]
        self._chunks = {}
        ops = [op for part in parts for op in part.ops]
        values = {op_id: value for part in parts for op_id, value in part.values}
        if (
            chain_order_digest(GENESIS_ORDER_DIGEST, (op.id for op in ops))
            != chunk.order_digest
            or slice_digest(ops, values) != chunk.digest
        ):
            self.rejections += 1
            return None
        return ops, values


def chain_ops(
    ops: Sequence[OperationDescriptor],
    key_of: Optional[Callable[[OperationId], str]] = None,
) -> List[OperationDescriptor]:
    """Rebuild a frozen slice as a ``prev``-chained sequence of ordinary
    operations: each keeps its identifier and operator but its constraint
    set becomes a link to its predecessor, forcing every destination
    replica to execute the slice in source order.  Original ``prev`` sets
    are deliberately dropped — they were satisfied at the source (and are
    unrepresentable after the split anyway); injected operations are never
    strict, since the source already answered them.

    With *key_of*, each operation additionally links to the previous slice
    operation **on its own key**.  A destination may skip injecting slice
    operations it already holds (a history migrating back to a former
    owner), which breaks the single-link chain across the skipped entry;
    the per-key link survives the skip and is exactly the order the keyed
    store's response values depend on."""
    rebuilt: List[OperationDescriptor] = []
    previous: Optional[OperationId] = None
    last_on_key: Dict[str, OperationId] = {}
    for op in ops:
        prev = set() if previous is None else {previous}
        if key_of is not None:
            key = key_of(op.id)
            if key in last_on_key:
                prev.add(last_on_key[key])
            last_on_key[key] = op.id
        rebuilt.append(make_operation(op.op, op.id, frozenset(prev), strict=False))
        previous = op.id
    return rebuilt
