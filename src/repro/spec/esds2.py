"""Specification automaton **ESDS-II** (Section 5.3, Fig. 3).

ESDS-II is equivalent to ESDS-I but more nondeterministic: ``enter`` may be
repeated for an operation already in ``ops`` (a repeated enter acts like
``add_constraints``), ``stabilize`` may be repeated, and an operation may
stabilize even when operations preceding it have not stabilized yet (leaving
"gaps" that ESDS-I would have to fill first).  The extra nondeterminism makes
it the convenient target of the forward simulation from the algorithm
(Section 8); the simulation from ESDS-II back to ESDS-I (Fig. 4) closes the
loop and is checked in :mod:`repro.verification.simulation_check`.
"""

from __future__ import annotations

from repro.core.operations import OperationDescriptor
from repro.core.orders import PartialOrder
from repro.spec.base import EsdsSpecBase


class EsdsSpecII(EsdsSpecBase):
    """The ESDS-II automaton (Fig. 3)."""

    name = "ESDS-II"

    def _enter_enabled(self, x: OperationDescriptor, new_po: PartialOrder) -> bool:
        if x not in self.wait:
            return False
        return self._enter_common_enabled(x, new_po)

    def _stabilize_enabled(self, x: OperationDescriptor) -> bool:
        if x not in self.ops:
            return False
        for y in self.ops:
            if y == x:
                continue
            if not self.po.comparable(y.id, x.id):
                return False
        # po must totally order the prefix ops|_{<=po x}: preceding operations
        # need not be *stable* (gaps are allowed), but their relative order
        # must already be fixed so that x's value is determined.
        prefix_ids = {y.id for y in self.ops if self.po.precedes(y.id, x.id)} | {x.id}
        return self.po.totally_orders(prefix_ids)
