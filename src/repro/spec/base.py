"""Shared machinery of the ESDS-I and ESDS-II specification automata.

Both automata (Figs. 2 and 3) have the same signature and the same state
variables:

* ``wait`` — requested operations not yet responded to;
* ``rept`` — pairs ``(x, v)`` that may be returned to clients;
* ``ops`` — operations that have been *entered*;
* ``po`` — a strict partial order on identifiers constraining the order in
  which entered operations may be applied;
* ``stabilized`` — the stable operations.

They differ only in the preconditions of ``enter`` and ``stabilize``; the
subclasses override :meth:`EsdsSpecBase._enter_enabled` and
:meth:`EsdsSpecBase._stabilize_enabled`.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.automata.automaton import Action, IOAutomaton, Signature
from repro.common import OperationId
from repro.core.operations import OperationDescriptor, client_specified_constraints
from repro.core.orders import PartialOrder, valset
from repro.datatypes.base import SerialDataType


class EsdsSpecBase(IOAutomaton):
    """Common state, effects and candidate generation for ESDS-I / ESDS-II."""

    name = "ESDS-spec"
    signature = Signature(
        inputs=frozenset({"request"}),
        outputs=frozenset({"response"}),
        internals=frozenset({"enter", "stabilize", "calculate", "add_constraints"}),
    )

    #: Cap on the number of linear extensions enumerated when sampling values
    #: for ``calculate`` candidates (the *check* of a given value is exact).
    candidate_valset_limit = 24

    def __init__(self, data_type: SerialDataType) -> None:
        self.data_type = data_type
        self.wait: Set[OperationDescriptor] = set()
        self.rept: Set[Tuple[OperationDescriptor, Any]] = set()
        self.ops: Set[OperationDescriptor] = set()
        self.po: PartialOrder = PartialOrder()
        self.stabilized: Set[OperationDescriptor] = set()

    # ------------------------------------------------------------------ state

    @property
    def ops_ids(self) -> Set[OperationId]:
        """``ops.id``."""
        return {x.id for x in self.ops}

    def operation_by_id(self, op_id: OperationId) -> Optional[OperationDescriptor]:
        for x in self.ops:
            if x.id == op_id:
                return x
        return None

    # -------------------------------------------------------------- conditions

    def _enter_enabled(self, x: OperationDescriptor, new_po: PartialOrder) -> bool:
        raise NotImplementedError

    def _stabilize_enabled(self, x: OperationDescriptor) -> bool:
        raise NotImplementedError

    def _enter_common_enabled(self, x: OperationDescriptor, new_po: PartialOrder) -> bool:
        """The clauses of ``enter`` shared by ESDS-I and ESDS-II."""
        if not x.prev <= self.ops_ids:
            return False
        if not new_po.span() <= self.ops_ids | {x.id}:
            return False
        if not self.po <= new_po:
            return False
        if not client_specified_constraints({x}) <= set(new_po.pairs):
            return False
        stable_before = {(y.id, x.id) for y in self.stabilized}
        if not stable_before <= set(new_po.pairs):
            return False
        return True

    def _calculate_enabled(self, x: OperationDescriptor, value: Any) -> bool:
        if x not in self.ops:
            return False
        if x.strict and x not in self.stabilized:
            return False
        values = valset(self.data_type, x, self.ops, self.po)
        return value in values

    def _add_constraints_enabled(self, new_po: PartialOrder) -> bool:
        return new_po.span() <= self.ops_ids and self.po <= new_po

    def _response_enabled(self, x: OperationDescriptor, value: Any) -> bool:
        return (x, value) in self.rept and x in self.wait

    # ------------------------------------------------------------ precondition

    def precondition(self, action: Action) -> bool:
        kind = action.kind
        if kind == "enter":
            return self._enter_enabled(action["operation"], action["new_po"])
        if kind == "stabilize":
            return self._stabilize_enabled(action["operation"])
        if kind == "calculate":
            return self._calculate_enabled(action["operation"], action["value"])
        if kind == "add_constraints":
            return self._add_constraints_enabled(action["new_po"])
        if kind == "response":
            return self._response_enabled(action["operation"], action["value"])
        return True

    # ----------------------------------------------------------------- effects

    def apply(self, action: Action) -> None:
        kind = action.kind
        if kind == "request":
            self.wait.add(action["operation"])
        elif kind == "enter":
            self.ops.add(action["operation"])
            self.po = action["new_po"]
        elif kind == "stabilize":
            self.stabilized.add(action["operation"])
        elif kind == "calculate":
            x = action["operation"]
            if x in self.wait:
                self.rept.add((x, action["value"]))
        elif kind == "add_constraints":
            self.po = action["new_po"]
        elif kind == "response":
            x = action["operation"]
            self.wait.discard(x)
            self.rept = {(y, v) for (y, v) in self.rept if y != x}
        else:  # pragma: no cover - guarded by signature
            raise ValueError(f"unexpected action {kind!r}")

    # -------------------------------------------------------------- candidates

    def _minimal_new_po_for(self, x: OperationDescriptor) -> Optional[PartialOrder]:
        """The smallest ``new_po`` satisfying the ``enter`` constraints for
        *x*, or ``None`` if the required constraints are cyclic."""
        required = set(client_specified_constraints({x}))
        required |= {(y.id, x.id) for y in self.stabilized}
        try:
            return self.po.extended_with(required)
        except ValueError:
            return None

    def candidate_actions(self, rng: random.Random) -> List[Action]:
        candidates: List[Action] = []

        # enter: pick waiting operations whose prev sets are satisfied.
        for x in sorted(self.wait, key=lambda op: repr(op.id)):
            new_po = self._minimal_new_po_for(x)
            if new_po is None:
                continue
            if self._enter_enabled(x, new_po):
                candidates.append(Action("enter", operation=x, new_po=new_po))

        # stabilize: any operation whose precondition holds.
        for x in sorted(self.ops, key=lambda op: repr(op.id)):
            if self._stabilize_enabled(x):
                candidates.append(Action("stabilize", operation=x))

        # calculate: sample a value from the valset of each eligible op.
        for x in sorted(self.ops, key=lambda op: repr(op.id)):
            if x.strict and x not in self.stabilized:
                continue
            if x not in self.wait:
                continue
            values = valset(
                self.data_type, x, self.ops, self.po, limit=self.candidate_valset_limit
            )
            if values:
                value = rng.choice(sorted(values, key=repr))
                candidates.append(Action("calculate", operation=x, value=value))

        # add_constraints: occasionally propose ordering one incomparable pair.
        unordered = self._one_unordered_pair(rng)
        if unordered is not None:
            a, b = unordered
            try:
                extended = self.po.extended_with({(a, b)})
            except ValueError:
                extended = None
            if extended is not None:
                candidates.append(Action("add_constraints", new_po=extended))

        # response: anything sitting in rept for a waiting operation.
        for x, value in sorted(self.rept, key=repr):
            if x in self.wait:
                candidates.append(Action("response", operation=x, value=value))

        return candidates

    def _one_unordered_pair(self, rng: random.Random) -> Optional[Tuple[OperationId, OperationId]]:
        ids = sorted(self.ops_ids, key=repr)
        if len(ids) < 2:
            return None
        for _ in range(4):
            a, b = rng.sample(ids, 2)
            if not self.po.comparable(a, b):
                return (a, b)
        return None

    # ------------------------------------------------------------ derived sets

    def stable_prefix_ids(self, x: OperationDescriptor) -> Set[OperationId]:
        """``ops|_{<po x}`` as a set of identifiers."""
        return {y.id for y in self.ops if self.po.precedes(y.id, x.id)}

    def snapshot(self) -> Dict[str, Any]:
        return {
            "wait": set(self.wait),
            "rept": set(self.rept),
            "ops": set(self.ops),
            "po": self.po,
            "stabilized": set(self.stabilized),
        }
