"""The ESDS specification automata (Sections 4 and 5 of the paper).

* :mod:`repro.spec.users` — the well-formed client automaton ``Users`` and its
  commutativity-restricted variant ``SafeUsers`` (Section 10.3);
* :mod:`repro.spec.esds1` — specification automaton **ESDS-I** (Fig. 2);
* :mod:`repro.spec.esds2` — specification automaton **ESDS-II** (Fig. 3);
* :mod:`repro.spec.guarantees` — executable renderings of Theorems 5.7 and
  5.8 and Corollary 5.9 (existence of explaining total orders / the eventual
  total order) used to check observed traces.

An *eventually-serializable data service* is, by definition, any automaton
that implements ESDS-I; the lazy-replication algorithm of
:mod:`repro.algorithm` is shown (operationally, in
:mod:`repro.verification.simulation_check`) to implement ESDS-II, which is
equivalent to ESDS-I.
"""

from repro.spec.users import Users, SafeUsers
from repro.spec.esds1 import EsdsSpecI
from repro.spec.esds2 import EsdsSpecII
from repro.spec.guarantees import (
    TraceRecord,
    check_eventual_total_order,
    check_strict_responses_explained,
    find_explaining_total_order,
)

__all__ = [
    "Users",
    "SafeUsers",
    "EsdsSpecI",
    "EsdsSpecII",
    "TraceRecord",
    "check_eventual_total_order",
    "check_strict_responses_explained",
    "find_explaining_total_order",
]
