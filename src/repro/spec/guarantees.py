"""Executable renderings of the behavioural guarantees of Section 5.2.

* **Theorem 5.7** — for every response event there is a total order of the
  requested operations, consistent with the client-specified constraints,
  that explains this response and the response of every *strict* operation
  answered before this operation was requested.
* **Theorem 5.8** — for a finite trace there is a single *eventual total
  order* consistent with the client-specified constraints explaining every
  strict response.
* **Corollary 5.9** — if every request is strict, the service looks like an
  atomic object serialized by the eventual total order.

These guarantees quantify existentially over total orders, so checking them
on an arbitrary trace requires search.  In practice the algorithm provides a
*witness*: the order of system-wide minimum labels.  The functions below
accept an optional witness; without one they fall back to bounded
linear-extension search (suitable for the small traces used in tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Set, Tuple

from repro.common import OperationId
from repro.core.operations import OperationDescriptor, client_specified_constraints
from repro.core.orders import linear_extensions, val
from repro.datatypes.base import SerialDataType


@dataclass
class TraceRecord:
    """An external trace of the service: request and response events in order.

    ``events`` is a list of ``("request", x)`` and ``("response", x, v)``
    tuples in the order they occurred.  Helper constructors let the simulator
    and the automata harness build records uniformly.
    """

    events: List[Tuple] = field(default_factory=list)

    def record_request(self, operation: OperationDescriptor) -> None:
        self.events.append(("request", operation))

    def record_response(self, operation: OperationDescriptor, value: Any) -> None:
        self.events.append(("response", operation, value))

    # -- views ----------------------------------------------------------------

    @property
    def requests(self) -> List[OperationDescriptor]:
        return [e[1] for e in self.events if e[0] == "request"]

    @property
    def responses(self) -> List[Tuple[OperationDescriptor, Any]]:
        return [(e[1], e[2]) for e in self.events if e[0] == "response"]

    def request_index(self, op_id: OperationId) -> Optional[int]:
        for i, e in enumerate(self.events):
            if e[0] == "request" and e[1].id == op_id:
                return i
        return None

    def response_index(self, op_id: OperationId) -> Optional[int]:
        for i, e in enumerate(self.events):
            if e[0] == "response" and e[1].id == op_id:
                return i
        return None

    def strict_responses_before(self, index: int) -> List[Tuple[OperationDescriptor, Any]]:
        """Strict responses occurring strictly before event *index*."""
        result = []
        for e in self.events[:index]:
            if e[0] == "response" and e[1].strict:
                result.append((e[1], e[2]))
        return result

    def csc(self) -> Set[Tuple[OperationId, OperationId]]:
        """Client-specified constraints of all requested operations."""
        return client_specified_constraints(self.requests)


def _value_under_order(
    data_type: SerialDataType,
    target: OperationDescriptor,
    operations: Sequence[OperationDescriptor],
    order_ids: Sequence[OperationId],
) -> Any:
    return val(data_type, target, operations, list(order_ids))


def check_eventual_total_order(
    data_type: SerialDataType,
    trace: TraceRecord,
    eventual_order: Sequence[OperationId],
) -> bool:
    """Theorem 5.8 with an explicit witness.

    Checks that *eventual_order* (a total order on the identifiers of all
    requested operations) is consistent with the client-specified constraints
    and explains every strict response in *trace*.
    """
    requests = trace.requests
    request_ids = {x.id for x in requests}
    order = list(eventual_order)
    if set(order) != request_ids:
        return False
    position = {op_id: i for i, op_id in enumerate(order)}
    for before, after in trace.csc():
        if before in position and after in position and position[before] >= position[after]:
            return False
    for x, value in trace.responses:
        if not x.strict:
            continue
        if _value_under_order(data_type, x, requests, order) != value:
            return False
    return True


def check_strict_responses_explained(
    data_type: SerialDataType,
    trace: TraceRecord,
    eventual_order: Optional[Sequence[OperationId]] = None,
    search_limit: int = 20000,
) -> bool:
    """Theorem 5.8: does *some* eventual total order explain all strict
    responses?

    With a witness this is :func:`check_eventual_total_order`; without one,
    linear extensions of the client-specified constraints are enumerated (up
    to *search_limit*) looking for an explaining order.
    """
    if eventual_order is not None:
        return check_eventual_total_order(data_type, trace, eventual_order)

    requests = trace.requests
    strict_responses = [(x, v) for x, v in trace.responses if x.strict]
    if not strict_responses:
        return True
    ids = [x.id for x in requests]
    for extension in linear_extensions(trace.csc(), ids, limit=search_limit):
        if all(
            _value_under_order(data_type, x, requests, extension) == v
            for x, v in strict_responses
        ):
            return True
    return False


def find_explaining_total_order(
    data_type: SerialDataType,
    trace: TraceRecord,
    response: Tuple[OperationDescriptor, Any],
    search_limit: int = 20000,
) -> Optional[List[OperationId]]:
    """Theorem 5.7 for a single response event.

    Searches for a total order ``to(x)`` of all requested operations,
    consistent with the client-specified constraints, explaining the given
    ``(operation, value)`` response *and* the response of every strict
    operation that was answered before this operation was requested.

    Returns the explaining order, or ``None`` if none was found within the
    search limit.
    """
    x, value = response
    requests = trace.requests
    request_event_index = trace.request_index(x.id)
    if request_event_index is None:
        return None
    earlier_strict = trace.strict_responses_before(request_event_index)

    ids = [y.id for y in requests]
    for extension in linear_extensions(trace.csc(), ids, limit=search_limit):
        if _value_under_order(data_type, x, requests, extension) != value:
            continue
        if all(
            _value_under_order(data_type, y, requests, extension) == v
            for y, v in earlier_strict
        ):
            return list(extension)
    return None


def check_all_responses_explained(
    data_type: SerialDataType,
    trace: TraceRecord,
    search_limit: int = 20000,
) -> bool:
    """Apply Theorem 5.7 to every response in the trace (bounded search)."""
    return all(
        find_explaining_total_order(data_type, trace, response, search_limit) is not None
        for response in trace.responses
    )


def check_atomicity_when_all_strict(
    data_type: SerialDataType,
    trace: TraceRecord,
    eventual_order: Optional[Sequence[OperationId]] = None,
    search_limit: int = 20000,
) -> bool:
    """Corollary 5.9: with all requests strict, a single total order must
    explain every response."""
    if any(not x.strict for x in trace.requests):
        raise ValueError("corollary 5.9 applies only when every request is strict")
    if eventual_order is not None:
        requests = trace.requests
        order = list(eventual_order)
        position = {op_id: i for i, op_id in enumerate(order)}
        for before, after in trace.csc():
            if position.get(before, -1) >= position.get(after, len(order)):
                return False
        return all(
            _value_under_order(data_type, x, requests, order) == v
            for x, v in trace.responses
        )
    requests = trace.requests
    ids = [x.id for x in requests]
    for extension in linear_extensions(trace.csc(), ids, limit=search_limit):
        if all(
            _value_under_order(data_type, x, requests, extension) == v
            for x, v in trace.responses
        ):
            return True
    return False
