"""The well-formed client automaton ``Users`` (Section 4, Fig. 1).

``Users`` models *all* clients of the data service as a single automaton with
shared state.  The shared state is only a specification device used to
express the well-formedness assumptions:

* operation identifiers are globally unique (Invariant 4.1);
* a ``prev`` set only mentions previously requested operations, hence the
  transitive closure of the client-specified constraints is a strict partial
  order (Invariant 4.2).

``SafeUsers`` (Section 10.3) additionally requires clients to explicitly
order, via ``prev`` chains, every pair of requested operations whose
operators do not commute; the ``Commute`` replica variant relies on this.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Set

from repro.automata.automaton import Action, IOAutomaton, Signature
from repro.common import OperationId, WellFormednessError
from repro.core.operations import OperationDescriptor, client_specified_constraints
from repro.core.orders import transitive_closure
from repro.datatypes.base import SerialDataType

#: Signature of an operation factory used to generate spontaneous requests
#: during random exploration: receives the RNG and the set of operations
#: requested so far, returns a new well-formed descriptor or ``None``.
OperationFactory = Callable[[random.Random, Set[OperationDescriptor]], Optional[OperationDescriptor]]


class Users(IOAutomaton):
    """The well-formed clients automaton (Fig. 1).

    Parameters
    ----------
    operation_factory:
        Optional generator of new requests, used by
        :meth:`candidate_actions` during random exploration.  Tests that
        drive requests explicitly may omit it.
    """

    name = "Users"
    signature = Signature(
        inputs=frozenset({"response"}),
        outputs=frozenset({"request"}),
    )

    def __init__(self, operation_factory: Optional[OperationFactory] = None) -> None:
        self.requested: Set[OperationDescriptor] = set()
        self.responded: Dict[OperationId, object] = {}
        self._operation_factory = operation_factory

    # -- well-formedness ------------------------------------------------------

    def request_is_well_formed(self, x: OperationDescriptor) -> bool:
        """The precondition of ``request(x)`` (Fig. 1)."""
        requested_ids = {op.id for op in self.requested}
        if x.id in requested_ids:
            return False
        if not x.prev <= requested_ids:
            return False
        return True

    def assert_well_formed(self, x: OperationDescriptor) -> None:
        """Raise :class:`WellFormednessError` if ``request(x)`` is disallowed."""
        requested_ids = {op.id for op in self.requested}
        if x.id in requested_ids:
            raise WellFormednessError(f"operation identifier {x.id} reused")
        missing = x.prev - requested_ids
        if missing:
            raise WellFormednessError(
                f"prev set of {x.id} references unrequested operations: {sorted(map(str, missing))}"
            )

    # -- automaton interface --------------------------------------------------

    def precondition(self, action: Action) -> bool:
        if action.kind == "request":
            return self.request_is_well_formed(action["operation"])
        return True

    def apply(self, action: Action) -> None:
        if action.kind == "request":
            self.requested.add(action["operation"])
        elif action.kind == "response":
            # Effect: none in the paper; we additionally record the last
            # response per operation for the convenience of trace checks.
            self.responded[action["operation"].id] = action["value"]
        else:  # pragma: no cover - guarded by signature check in step()
            raise ValueError(f"unexpected action {action.kind!r}")

    def candidate_actions(self, rng: random.Random) -> List[Action]:
        if self._operation_factory is None:
            return []
        operation = self._operation_factory(rng, set(self.requested))
        if operation is None or not self.request_is_well_formed(operation):
            return []
        return [Action("request", operation=operation)]

    # -- derived state (Invariants 4.1, 4.2) ----------------------------------

    def client_specified_constraints(self) -> Set:
        """``CSC(requested)`` on identifiers."""
        return client_specified_constraints(self.requested)

    def check_invariants(self) -> None:
        """Invariants 4.1 and 4.2: unique identifiers; CSC is a strict order."""
        ids = [x.id for x in self.requested]
        if len(ids) != len(set(ids)):
            raise WellFormednessError("duplicate operation identifiers in requested")
        closure = transitive_closure(self.client_specified_constraints())
        if any(a == b for a, b in closure):
            raise WellFormednessError("client-specified constraints contain a cycle")


class SafeUsers(Users):
    """Clients restricted so that non-commuting operators are always ordered.

    Section 10.3 adds a clause to the precondition of ``request(x)``: for
    every previously requested operation ``y`` whose operator does not
    commute with ``x.op``, ``y`` must precede ``x`` in the transitive closure
    of the client-specified constraints after adding ``x``.  This is what the
    ``Commute`` replica variant needs to keep replicas convergent while
    computing responses from a single current state.
    """

    name = "SafeUsers"

    def __init__(
        self,
        data_type: SerialDataType,
        operation_factory: Optional[OperationFactory] = None,
        require_independence: bool = False,
    ) -> None:
        super().__init__(operation_factory)
        self.data_type = data_type
        #: When true, require ordering of every non-*independent* pair (the
        #: stronger discipline of Lemma 10.7), not just non-commuting pairs.
        self.require_independence = require_independence

    def request_is_well_formed(self, x: OperationDescriptor) -> bool:
        if not super().request_is_well_formed(x):
            return False
        return not self._unordered_conflicts(x)

    def assert_well_formed(self, x: OperationDescriptor) -> None:
        super().assert_well_formed(x)
        conflicts = self._unordered_conflicts(x)
        if conflicts:
            raise WellFormednessError(
                f"operation {x.id} conflicts with unordered prior operations: "
                f"{sorted(map(str, conflicts))}"
            )

    def _unordered_conflicts(self, x: OperationDescriptor) -> Set[OperationId]:
        """Previously requested operations that conflict with ``x`` but would
        not be ordered before it by the client-specified constraints."""
        constraints = client_specified_constraints(self.requested | {x})
        closure = transitive_closure(constraints)
        conflicts: Set[OperationId] = set()
        for y in self.requested:
            if self.require_independence:
                conflicting = not self.data_type.independent(y.op, x.op)
            else:
                conflicting = not self.data_type.commute(y.op, x.op)
            if conflicting and (y.id, x.id) not in closure and (x.id, y.id) not in closure:
                conflicts.add(y.id)
        return conflicts
