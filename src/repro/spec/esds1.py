"""Specification automaton **ESDS-I** (Section 5.1, Fig. 2).

ESDS-I is the simpler of the two equivalent specifications: an operation may
be entered only once, and an operation may stabilize only when every
preceding operation is already stable (no "gaps").
"""

from __future__ import annotations

from repro.core.operations import OperationDescriptor
from repro.core.orders import PartialOrder
from repro.spec.base import EsdsSpecBase


class EsdsSpecI(EsdsSpecBase):
    """The ESDS-I automaton.  Any automaton implementing it is, by
    definition, an eventually-serializable data service."""

    name = "ESDS-I"

    def _enter_enabled(self, x: OperationDescriptor, new_po: PartialOrder) -> bool:
        if x not in self.wait:
            return False
        if x in self.ops:
            return False
        return self._enter_common_enabled(x, new_po)

    def _stabilize_enabled(self, x: OperationDescriptor) -> bool:
        if x not in self.ops:
            return False
        if x in self.stabilized:
            return False
        # x must be comparable (under po) with every entered operation...
        for y in self.ops:
            if y == x:
                continue
            if not self.po.comparable(y.id, x.id):
                return False
        # ...and every operation preceding it must already be stable.
        stabilized_ids = {y.id for y in self.stabilized}
        for y in self.ops:
            if self.po.precedes(y.id, x.id) and y.id not in stabilized_ids:
                return False
        return True
