"""Canonical encoding and content digests for conformance vectors.

Vector files must be *stable*: regenerating the corpus from the same seeds
has to be byte-identical across processes, machines and Python versions (the
CI nightly job enforces this).  Two rules make that hold:

* **Canonical values.**  Simulation values (operation results, replica
  states) are arbitrary hashable Python data — ints, strings, tuples,
  frozensets (the g-set state), ``None``.  JSON has no tuples or sets, and
  ``repr`` of a set depends on ``PYTHONHASHSEED``, so values are encoded
  into *tagged* JSON: tuples become ``{"t": [...]}``, (frozen)sets become
  ``{"s": [...]}`` with elements **sorted by their canonical encoding**, and
  mappings become ``{"d": [[k, v], ...]}`` sorted by encoded key.  Scalars
  pass through.  Decoding inverts the tags exactly, so replaying a vector
  compares decoded expectations against live Python values directly.

* **Canonical JSON.**  Documents are serialized with sorted keys, a fixed
  separator style and ``ensure_ascii``; the content digest is the sha-256 of
  that serialization with the ``digest`` field removed.  Any byte of drift —
  hand-edits, format changes, nondeterministic generation — shows up as a
  digest mismatch before a single scenario is replayed.

The format is versioned (``FORMAT_VERSION``); the replayer refuses vectors
from a different major format rather than guessing.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List

from repro.common import EsdsError, OperationId

#: Bump on any change to the vector schema or the canonical encoding.
FORMAT_VERSION = 1

#: The ``kind`` discriminator every vector file carries.
VECTOR_KIND = "esds-conformance-vector"

#: Reserved single-key tags of the value encoding (see module docstring).
_TAGS = ("t", "s", "d", "f")


class ConformanceError(EsdsError):
    """A vector failed to decode, verify or replay."""


def encode_value(value: Any) -> Any:
    """*value* as tagged, canonical JSON-compatible data."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # Floats ride under a tag so integral-valued floats (1.0) survive
        # the JSON round trip distinct from ints.
        return {"f": repr(value)}
    if isinstance(value, tuple):
        return {"t": [encode_value(item) for item in value]}
    if isinstance(value, list):
        raise ConformanceError("simulation values are immutable; got a list")
    if isinstance(value, (set, frozenset)):
        encoded = [encode_value(item) for item in value]
        encoded.sort(key=lambda item: canonical_json(item))
        return {"s": encoded}
    if isinstance(value, dict):
        pairs = [[encode_value(k), encode_value(v)] for k, v in value.items()]
        pairs.sort(key=lambda pair: canonical_json(pair[0]))
        return {"d": pairs}
    raise ConformanceError(f"cannot canonically encode {type(value).__name__}: {value!r}")


def decode_value(encoded: Any) -> Any:
    """Invert :func:`encode_value`."""
    if encoded is None or isinstance(encoded, (bool, int, str, float)):
        return encoded
    if isinstance(encoded, dict):
        if len(encoded) != 1 or next(iter(encoded)) not in _TAGS:
            raise ConformanceError(f"not a tagged value: {encoded!r}")
        tag, payload = next(iter(encoded.items()))
        if tag == "f":
            return float(payload)
        if tag == "t":
            return tuple(decode_value(item) for item in payload)
        if tag == "s":
            return frozenset(decode_value(item) for item in payload)
        return {decode_value(k): decode_value(v) for k, v in payload}
    raise ConformanceError(f"cannot decode {encoded!r}")


def encode_op_id(op_id: OperationId) -> str:
    return f"{op_id.client}#{op_id.seqno}"


def decode_op_id(text: str) -> OperationId:
    client, _, seqno = text.rpartition("#")
    return OperationId(client=client, seqno=int(seqno))


def canonical_json(doc: Any) -> str:
    """The canonical (digest-grade) serialization of a JSON document."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), ensure_ascii=True)


def content_digest(doc: Dict[str, Any]) -> str:
    """sha-256 over the canonical serialization, ``digest`` field excluded."""
    body = {key: value for key, value in doc.items() if key != "digest"}
    material = canonical_json(body).encode("utf-8")
    return "sha256:" + hashlib.sha256(material).hexdigest()


def seal(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Stamp kind, format version and content digest onto a vector body."""
    doc = dict(doc)
    doc["kind"] = VECTOR_KIND
    doc["format_version"] = FORMAT_VERSION
    doc["digest"] = content_digest(doc)
    return doc


def verify_sealed(doc: Dict[str, Any], source: str = "<vector>") -> None:
    """Check kind, format version and digest; raise on any mismatch."""
    if doc.get("kind") != VECTOR_KIND:
        raise ConformanceError(f"{source}: not a conformance vector (kind={doc.get('kind')!r})")
    if doc.get("format_version") != FORMAT_VERSION:
        raise ConformanceError(
            f"{source}: format version {doc.get('format_version')!r}, "
            f"this codec understands {FORMAT_VERSION}"
        )
    expected = content_digest(doc)
    if doc.get("digest") != expected:
        raise ConformanceError(
            f"{source}: content digest mismatch — file says {doc.get('digest')!r}, "
            f"contents hash to {expected!r} (vector edited or generator drifted)"
        )


def dumps_vector(doc: Dict[str, Any]) -> str:
    """The on-disk form: pretty-printed but still canonical (sorted keys,
    ascii, trailing newline) so regeneration is byte-identical."""
    return json.dumps(doc, sort_keys=True, indent=2, ensure_ascii=True) + "\n"


def loads_vector(text: str, source: str = "<vector>") -> Dict[str, Any]:
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConformanceError(f"{source}: invalid JSON ({exc})") from exc
    if not isinstance(doc, dict):
        raise ConformanceError(f"{source}: vector root must be an object")
    return doc


def encode_op_map(mapping: Dict[OperationId, Any]) -> Dict[str, Any]:
    """A ``{op_id: value}`` map in canonical form (sorted by construction of
    the canonical serializer; values tagged)."""
    return {encode_op_id(op_id): encode_value(value) for op_id, value in mapping.items()}


def decode_op_map(encoded: Dict[str, Any]) -> Dict[OperationId, Any]:
    return {decode_op_id(text): decode_value(value) for text, value in encoded.items()}


def encode_op_list(op_ids) -> List[str]:
    return [encode_op_id(op_id) for op_id in op_ids]


def decode_op_list(encoded) -> List[OperationId]:
    return [decode_op_id(text) for text in encoded]


def state_digest(state: Any) -> str:
    """A short digest of a replica state, via the canonical value encoding
    (stable across processes, unlike ``repr`` of sets)."""
    material = canonical_json(encode_value(state)).encode("utf-8")
    return hashlib.sha256(material).hexdigest()[:16]
