"""Scenario specifications: the serializable description of one simulated
execution, and the machinery to run it and collect its expected outcome.

A :class:`ScenarioSpec` captures *everything* that determines a simulated
execution: harness (single cluster or sharded), data type, deployment sizes,
timing/policy parameters, the client workload, the fault schedule and every
seed.  Running the same spec therefore always produces the same outcome —
the property the conformance corpus is built on.

The data-type registry maps the spec's ``data_type`` string onto a type
factory plus a seeded operator mix; the fault schedule is carried as the
tagged dicts of :func:`repro.sim.faults.fault_to_dict` (with an extra
``shard`` key attributing each fault on the sharded harness).
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.algorithm.checkpoint import CompactionPolicy
from repro.common import OperationId
from repro.config import LEGACY_FIELD_NAMES as REPLICA_FIELD_NAMES, ReplicaConfig
from repro.conformance.codec import (
    ConformanceError,
    decode_op_list,
    decode_op_map,
    encode_op_list,
    encode_op_map,
    encode_value,
    state_digest,
)
from repro.conformance.oracles import check_cluster_outcome, witness_order
from repro.datatypes import CounterType, GSetType, RegisterType
from repro.datatypes.base import Operator
from repro.sim.cluster import SimulatedCluster, SimulationParams
from repro.sim.faults import FaultSchedule, fault_from_dict
from repro.sim.sharded import ShardedCluster
from repro.sim.workload import (
    KeyedWorkloadSpec,
    WorkloadSpec,
    run_keyed_workload,
    run_workload,
)

#: Outcome-group key used by the single-cluster harness (the sharded harness
#: keys groups by shard id).
UNSHARDED = "_"


# --------------------------------------------------------------------------- #
# Data-type registry                                                          #
# --------------------------------------------------------------------------- #

def counter_mix(rng: random.Random, index: int) -> Operator:
    return rng.choice(
        [CounterType.increment(), CounterType.add(rng.randint(1, 5)), CounterType.read()]
    )


def gset_mix(rng: random.Random, index: int) -> Operator:
    return rng.choice(
        [GSetType.insert(rng.randint(0, 9)), GSetType.size(), GSetType.snapshot()]
    )


def register_mix(rng: random.Random, index: int) -> Operator:
    return rng.choice([RegisterType.write(rng.randint(0, 99)), RegisterType.read()])


#: ``data_type`` spec string -> (type factory, seeded operator mix).  The
#: operator mixes generate *base-type* operators, so the same entry serves
#: the single-cluster harness directly and the sharded harness through the
#: keyed ``at(key, ...)`` wrapper.
DATA_TYPES = {
    "counter": (CounterType, counter_mix),
    "gset": (GSetType, gset_mix),
    "register": (RegisterType, register_mix),
}

#: Registry keys in a fixed order for seeded draws.
DATA_TYPE_NAMES = ("counter", "gset", "register")


# --------------------------------------------------------------------------- #
# The spec                                                                    #
# --------------------------------------------------------------------------- #

@dataclass
class ScenarioSpec:
    """Everything that determines one simulated execution (see module
    docstring).  ``faults`` holds :func:`~repro.sim.faults.fault_to_dict`
    documents; on the sharded harness each carries a ``shard`` key naming
    the shard it is installed on."""

    name: str
    harness: str  # "sim" | "sharded"
    data_type: str
    num_replicas: int
    clients: Tuple[str, ...]
    seed: int
    workload_seed: int
    params: SimulationParams
    workload: Dict[str, Any]
    faults: Tuple[Dict[str, Any], ...] = ()
    num_shards: int = 0  # sharded harness only
    drain_time: float = 600.0

    def __post_init__(self) -> None:
        if self.harness not in ("sim", "sharded"):
            raise ConformanceError(f"unknown harness {self.harness!r}")
        if self.data_type not in DATA_TYPES:
            raise ConformanceError(f"unknown data type {self.data_type!r}")
        if self.harness == "sharded" and self.num_shards < 1:
            raise ConformanceError("sharded scenarios need num_shards >= 1")

    # -- serialization --------------------------------------------------------

    def to_doc(self) -> Dict[str, Any]:
        # The replica-level feature fields serialize as a nested ``replica``
        # document — the on-disk form of :class:`~repro.config.ReplicaConfig`
        # — keeping the transport/timing knobs in ``params``.
        params_doc = dataclasses.asdict(self.params)
        replica_doc = {
            name: params_doc.pop(name) for name in REPLICA_FIELD_NAMES
        }
        return {
            "name": self.name,
            "harness": self.harness,
            "data_type": self.data_type,
            "num_replicas": self.num_replicas,
            "num_shards": self.num_shards,
            "clients": list(self.clients),
            "seed": self.seed,
            "workload_seed": self.workload_seed,
            "params": params_doc,
            "replica": replica_doc,
            "workload": dict(self.workload),
            "faults": [dict(doc) for doc in self.faults],
            "drain_time": self.drain_time,
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "ScenarioSpec":
        params_doc = dict(doc["params"])
        # Current form: replica-level features in a nested ReplicaConfig
        # document.  Vectors predating the split carry them flat in
        # ``params``; both deserialize to the same SimulationParams.
        replica_doc = dict(doc.get("replica", ()))
        compaction = replica_doc.get("compaction", params_doc.get("compaction"))
        if compaction is not None:
            compaction = CompactionPolicy(**compaction)
        if replica_doc:
            replica_doc["compaction"] = compaction
            params = SimulationParams(
                **params_doc, replica=ReplicaConfig(**replica_doc)
            )
        else:
            params_doc["compaction"] = compaction
            params = SimulationParams(**params_doc)
        return cls(
            name=doc["name"],
            harness=doc["harness"],
            data_type=doc["data_type"],
            num_replicas=doc["num_replicas"],
            num_shards=doc.get("num_shards", 0),
            clients=tuple(doc["clients"]),
            seed=doc["seed"],
            workload_seed=doc["workload_seed"],
            params=params,
            workload=dict(doc["workload"]),
            faults=tuple(dict(fault) for fault in doc["faults"]),
            drain_time=doc["drain_time"],
        )


# --------------------------------------------------------------------------- #
# Execution                                                                   #
# --------------------------------------------------------------------------- #

@dataclass
class ScenarioRun:
    """A built-and-executed scenario: the driving harness object, its
    outcome groups (one :class:`SimulatedCluster` per shard — a single entry
    keyed :data:`UNSHARDED` on the plain harness) and the installed fault
    schedules."""

    spec: ScenarioSpec
    driver: Any
    clusters: Dict[str, SimulatedCluster]
    schedules: List[FaultSchedule]
    workload_result: Any = None


def _cluster_class(runtime: str) -> type:
    """The per-group cluster class for *runtime*: the plain simulator, or the
    :class:`~repro.net.wire.WireCluster` twin that pushes every message
    through the binary codec (``--runtime=net``).  Late import: conformance
    must not depend on ``repro.net`` unless asked to."""
    if runtime == "sim":
        return SimulatedCluster
    if runtime == "net":
        from repro.net.wire import WireCluster

        return WireCluster
    raise ConformanceError(f"unknown runtime {runtime!r}")


def build_scenario(spec: ScenarioSpec, runtime: str = "sim") -> ScenarioRun:
    """Instantiate the harness and install the fault schedule (scenario not
    yet run).  ``runtime="net"`` swaps every cluster for the wire-codec twin
    — same seeds, same schedule, every message round-tripped through
    :mod:`repro.net.codec` — so replay mismatches isolate codec loss."""
    type_factory, _mix = DATA_TYPES[spec.data_type]
    cluster_class = _cluster_class(runtime)
    if spec.harness == "sim":
        cluster = cluster_class(
            type_factory(),
            spec.num_replicas,
            list(spec.clients),
            params=spec.params,
            seed=spec.seed,
        )
        schedule = FaultSchedule()
        for doc in spec.faults:
            schedule.add(fault_from_dict(doc))
        schedule.install(cluster)
        return ScenarioRun(spec, cluster, {UNSHARDED: cluster}, [schedule])

    cluster = ShardedCluster(
        type_factory(),
        num_shards=spec.num_shards,
        replicas_per_shard=spec.num_replicas,
        client_ids=list(spec.clients),
        params=spec.params,
        seed=spec.seed,
        cluster_class=cluster_class,
    )
    schedules = []
    for shard_id, shard in cluster.shards.items():
        schedule = FaultSchedule()
        for doc in spec.faults:
            if doc.get("shard") == shard_id:
                schedule.add(fault_from_dict(doc))
        schedule.install(shard)
        schedules.append(schedule)
    return ScenarioRun(spec, cluster, dict(cluster.shards), schedules)


def run_scenario(spec: ScenarioSpec, runtime: str = "sim") -> ScenarioRun:
    """Build and execute *spec*: run the workload, let every fault window
    end, then drain the network to idle (the standard schedule the fuzzer
    and the generator share)."""
    run = build_scenario(spec, runtime=runtime)
    _type_factory, mix = DATA_TYPES[spec.data_type]
    if spec.harness == "sim":
        workload = WorkloadSpec(operator_factory=mix, **spec.workload)
        run.workload_result = run_workload(
            run.driver, workload, seed=spec.workload_seed, drain_time=spec.drain_time
        )
    else:
        workload = KeyedWorkloadSpec(operator_factory=mix, **spec.workload)
        run.workload_result = run_keyed_workload(
            run.driver, workload, seed=spec.workload_seed, drain_time=spec.drain_time
        )
    last_fault = max(
        (schedule.last_fault_time() for schedule in run.schedules), default=0.0
    )
    if last_fault > run.driver.now:
        run.driver.run(last_fault - run.driver.now + spec.params.gossip_period)
    run.driver.run_until_idle(max_time=spec.drain_time)
    return run


# --------------------------------------------------------------------------- #
# Outcomes                                                                    #
# --------------------------------------------------------------------------- #

@dataclass
class ScenarioOutcome:
    """The checked expectation of a scenario: every response value, every
    permanent failure, the casualty classification, the Theorem 5.8 witness
    order and the converged per-replica state digests — each of the latter
    four per outcome group (shard)."""

    responses: Dict[OperationId, Any] = field(default_factory=dict)
    failed: Dict[OperationId, str] = field(default_factory=dict)
    lost: Dict[str, List[OperationId]] = field(default_factory=dict)
    stuck: Dict[str, List[OperationId]] = field(default_factory=dict)
    witness: Dict[str, List[OperationId]] = field(default_factory=dict)
    replica_digests: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def to_doc(self) -> Dict[str, Any]:
        return {
            "responses": encode_op_map(self.responses),
            "failed": encode_op_map(self.failed),
            "lost": {g: encode_op_list(ids) for g, ids in self.lost.items()},
            "stuck": {g: encode_op_list(ids) for g, ids in self.stuck.items()},
            "witness": {g: encode_op_list(ids) for g, ids in self.witness.items()},
            "replica_digests": {
                g: dict(digests) for g, digests in self.replica_digests.items()
            },
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "ScenarioOutcome":
        return cls(
            responses=decode_op_map(doc["responses"]),
            failed=decode_op_map(doc["failed"]),
            lost={g: decode_op_list(ids) for g, ids in doc["lost"].items()},
            stuck={g: decode_op_list(ids) for g, ids in doc["stuck"].items()},
            witness={g: decode_op_list(ids) for g, ids in doc["witness"].items()},
            replica_digests={
                g: dict(digests) for g, digests in doc["replica_digests"].items()
            },
        )


def _client_order(op_ids: Set[OperationId]) -> List[OperationId]:
    return sorted(op_ids, key=lambda op_id: (op_id.client, op_id.seqno))


def collect_outcome(run: ScenarioRun) -> ScenarioOutcome:
    """Run the full oracle suite on every outcome group of an executed
    scenario (quiescing each cluster) and collect the checked expectation.

    Raises if any oracle fails — a vector is only written for executions
    the oracles accept, so a later replay mismatch always means *divergence
    from a known-good execution*, not a bad recording.
    """
    outcome = ScenarioOutcome()
    outcome.responses = dict(run.driver.responded)
    outcome.failed = dict(run.driver.failed)
    for group, cluster in run.clusters.items():
        lost, stuck = check_cluster_outcome(cluster)
        outcome.lost[group] = _client_order(lost)
        outcome.stuck[group] = _client_order(stuck)
        outcome.witness[group] = witness_order(cluster, lost | stuck)
        outcome.replica_digests[group] = {
            replica_id: state_digest(replica.replayed_state())
            for replica_id, replica in cluster.replicas.items()
        }
    return outcome


def collect_info(run: ScenarioRun) -> Dict[str, Any]:
    """Unchecked-but-recorded execution statistics (message counters, digest
    rejections) — context for humans reading a vector; replay does not
    compare them."""
    info: Dict[str, Any] = {"groups": {}}
    for group, cluster in run.clusters.items():
        info["groups"][group] = {
            "counters": dataclasses.asdict(cluster.network.counters),
            "transfer_rejections": sum(
                replica.stats.transfer_rejections
                for replica in cluster.replicas.values()
            ),
        }
    return info


def compare_outcomes(
    expected: ScenarioOutcome, observed: ScenarioOutcome
) -> List[str]:
    """Human-readable mismatch descriptions (empty = conformant)."""
    mismatches: List[str] = []

    def diff_map(label: str, exp: Dict, obs: Dict) -> None:
        for key in sorted(set(exp) | set(obs), key=repr):
            if key not in exp:
                mismatches.append(f"{label}[{key}]: unexpected {obs[key]!r}")
            elif key not in obs:
                mismatches.append(f"{label}[{key}]: missing (expected {exp[key]!r})")
            elif encode_value(exp[key]) != encode_value(obs[key]):
                mismatches.append(
                    f"{label}[{key}]: expected {exp[key]!r}, got {obs[key]!r}"
                )

    diff_map("responses", expected.responses, observed.responses)
    diff_map("failed", expected.failed, observed.failed)
    for fld in ("lost", "stuck", "witness", "replica_digests"):
        exp, obs = getattr(expected, fld), getattr(observed, fld)
        for group in sorted(set(exp) | set(obs)):
            if exp.get(group) != obs.get(group):
                mismatches.append(
                    f"{fld}[{group}]: expected {exp.get(group)!r}, got {obs.get(group)!r}"
                )
    return mismatches
