"""Conformance-vector replayer.

``python -m repro.conformance.replay tests/vectors/`` re-executes every
vector on its recorded harness and asserts that the execution matches the
recorded expectation exactly — every response value, the permanent-failure
set, the lost/stuck classification, the Theorem 5.8 witness order and the
converged per-replica state digests — *and* re-runs the full oracle suite
(Section 7/8 invariant checker, eventual-serializability oracle) on the live
execution, so a vector keeps verifying the algorithm even if its recorded
expectation were somehow stale.

Vectors without an ``expected`` section (fuzzer failure artifacts, see
:func:`dump_failure_artifact`) replay in oracles-only mode: the scenario is
re-executed and the oracle suite re-raises the original failure, which turns
a nightly fuzz crash into a one-command reproduction.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.conformance.codec import (
    ConformanceError,
    dumps_vector,
    loads_vector,
    seal,
    verify_sealed,
)
from repro.conformance.scenario import (
    ScenarioOutcome,
    ScenarioSpec,
    collect_outcome,
    compare_outcomes,
    run_scenario,
)


def replay_doc(
    doc: Dict[str, Any],
    source: str = "<vector>",
    oracles_only: bool = False,
    runtime: str = "sim",
) -> ScenarioOutcome:
    """Re-execute a sealed vector document and check it.

    Always verifies the content digest and re-runs the oracle suite on the
    fresh execution; unless *oracles_only* (or the vector carries no
    expectation), also asserts equality with the recorded outcome.  Returns
    the observed outcome; raises :class:`ConformanceError` on any failure.

    ``runtime="net"`` replays on the :class:`~repro.net.wire.WireCluster`
    twin so every message crosses the binary codec — the recorded outcome
    (taken on the plain simulator) must still match exactly.
    """
    verify_sealed(doc, source)
    spec = ScenarioSpec.from_doc(doc["scenario"])
    run = run_scenario(spec, runtime=runtime)
    observed = collect_outcome(run)  # runs the full oracle suite
    expected_doc = doc.get("expected")
    if expected_doc is not None and not oracles_only:
        expected = ScenarioOutcome.from_doc(expected_doc)
        mismatches = compare_outcomes(expected, observed)
        if mismatches:
            details = "\n  ".join(mismatches)
            raise ConformanceError(
                f"{source}: execution diverged from the recorded outcome:\n  {details}"
            )
    return observed


def replay_path(
    path: Path, oracles_only: bool = False, runtime: str = "sim"
) -> ScenarioOutcome:
    doc = loads_vector(path.read_text(encoding="utf-8"), str(path))
    return replay_doc(doc, str(path), oracles_only=oracles_only, runtime=runtime)


def verify_digest_path(path: Path) -> None:
    """Digest/format check only (no replay)."""
    doc = loads_vector(path.read_text(encoding="utf-8"), str(path))
    verify_sealed(doc, str(path))


def iter_vector_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files and directories into the sorted list of vector files."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.glob("*.json")))
        else:
            files.append(path)
    if not files:
        raise ConformanceError(f"no vector files under {', '.join(map(str, paths))}")
    return files


def dump_failure_artifact(spec: ScenarioSpec, error: BaseException, directory: Path) -> Path:
    """Write a spec-only vector capturing a failing scenario (no ``expected``
    section — there is no known-good outcome to record).  Replaying the
    artifact re-executes the scenario and re-runs the oracles, reproducing
    the failure deterministically."""
    directory.mkdir(parents=True, exist_ok=True)
    doc = seal(
        {
            "name": spec.name,
            "scenario": spec.to_doc(),
            "expected": None,
            "info": {"failure": f"{type(error).__name__}: {error}"},
        }
    )
    path = directory / f"{spec.name}.json"
    path.write_text(dumps_vector(doc), encoding="utf-8")
    return path


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.conformance.replay",
        description="Replay conformance vectors and check the recorded outcomes.",
    )
    parser.add_argument("paths", nargs="+", type=Path, help="vector files or directories")
    parser.add_argument(
        "--digests-only",
        action="store_true",
        help="verify format and content digests without replaying",
    )
    parser.add_argument(
        "--oracles-only",
        action="store_true",
        help="re-run the oracle suite but skip the recorded-outcome comparison",
    )
    parser.add_argument(
        "--runtime",
        choices=("sim", "net"),
        default="sim",
        help="replay harness: plain simulator, or the wire-codec twin "
        "(every message encoded/decoded through repro.net.codec)",
    )
    parser.add_argument("--quiet", action="store_true", help="only report failures")
    args = parser.parse_args(argv)

    try:
        files = iter_vector_files(args.paths)
    except ConformanceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    failures = 0
    for path in files:
        try:
            if args.digests_only:
                verify_digest_path(path)
            else:
                replay_path(path, oracles_only=args.oracles_only, runtime=args.runtime)
        except Exception as exc:  # report every failure, then exit non-zero
            failures += 1
            print(f"FAIL {path}: {exc}", file=sys.stderr)
        else:
            if not args.quiet:
                verb = "verified" if args.digests_only else "replayed"
                print(f"ok   {path} ({verb})")
    summary = f"{len(files) - failures}/{len(files)} vectors ok"
    print(summary if not failures else f"{summary}, {failures} FAILED")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
