"""Conformance-vector generator.

``python -m repro.conformance.generate --seeds N --out tests/vectors/`` runs
the simulator and sharded harnesses over a deterministic seed matrix —
full/delta gossip x compaction on/off x advert/pull x sharded x an
adversarial mode with the extended fault mix — checks every execution
against the full oracle suite, and writes one sealed vector file per
scenario.

Determinism contract: everything a scenario draws comes from
``random.Random(stable_hash(f"{mode}:{seed}"))`` (the md5-based stable hash,
not Python's per-process ``hash``), so regenerating with the same seeds is
byte-identical — the CI nightly job regenerates the corpus and fails on any
drift.

The random spec builders here double as the scenario fuzzer's sampler
(tests/test_scenario_fuzz.py): the fuzzer explores fresh seeds every run and
dumps failures as vectors; the corpus freezes a reviewed sample of the same
distribution.
"""

from __future__ import annotations

import argparse
import dataclasses
import random
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.algorithm.checkpoint import CompactionPolicy
from repro.conformance.codec import dumps_vector, seal
from repro.conformance.scenario import (
    DATA_TYPE_NAMES,
    ScenarioRun,
    ScenarioSpec,
    collect_info,
    collect_outcome,
    run_scenario,
)
from repro.service.router import stable_hash
from repro.sim.cluster import SimulationParams
from repro.sim.faults import (
    AsymmetricPartition,
    CorruptTransfers,
    DelaySpike,
    DuplicateMessages,
    GossipOutage,
    ReplicaCrash,
    StragglerReplica,
    fault_to_dict,
)


# --------------------------------------------------------------------------- #
# Random spec ingredients (shared with the scenario fuzzer)                   #
# --------------------------------------------------------------------------- #

def random_params(rng: random.Random, delta_gossip: bool) -> SimulationParams:
    return SimulationParams(
        df=1.0,
        dg=1.0,
        gossip_period=rng.choice([1.0, 2.0]),
        jitter=rng.choice([0.0, 0.5]),
        loss_probability=rng.choice([0.0, 0.0, 0.1]),
        spike_factor=rng.choice([2.0, 5.0]),
        service_time=rng.choice([0.0, 0.1]),
        request_fanout=rng.choice([1, 2]),
        frontend_policy=rng.choice(["affinity", "round_robin", "random"]),
        retransmit_interval=4.0,  # masks loss and crash windows
        delta_gossip=delta_gossip,
        full_state_interval=rng.choice([4, 8]),
        incremental_replay=rng.random() < 0.5,
        batch_gossip=rng.random() < 0.5,
    )


def random_workload_fields(rng: random.Random) -> Dict[str, Any]:
    """The serializable fields of a random :class:`WorkloadSpec` (the
    operator factory comes from the spec's data-type registry entry)."""
    return {
        "operations_per_client": rng.randint(6, 12),
        "mean_interarrival": rng.choice([0.5, 1.0]),
        "poisson_arrivals": rng.random() < 0.5,
        "strict_fraction": rng.choice([0.0, 0.2, 0.5]),
        "prev_policy": rng.choice(["none", "last_own", "random_own"]),
    }


def random_keyed_workload_fields(rng: random.Random) -> Dict[str, Any]:
    return {
        "operations_per_client": rng.randint(6, 10),
        "mean_interarrival": rng.choice([0.5, 1.0]),
        "strict_fraction": rng.choice([0.0, 0.3]),
        "num_keys": rng.choice([4, 8]),
        "key_distribution": rng.choice(["uniform", "zipfian"]),
        "prev_policy": rng.choice(["none", "last_on_key"]),
    }


def random_fault_dicts(
    rng: random.Random,
    replica_ids: Sequence[str],
    horizon: float,
    extended: bool = False,
    shard: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """0-2 random faults, all of which end (crashes always recover) so the
    system is guaranteed to converge afterwards.

    With ``extended`` the draw includes the adversarial kinds (asymmetric
    partitions, stragglers, duplication, transfer corruption) alongside the
    classic crash/outage/spike mix.
    """
    kinds = ["crash", "outage", "spike"]
    if extended:
        kinds += ["asymmetric", "straggler", "duplicate", "corrupt"]
    faults: List[Dict[str, Any]] = []
    for _ in range(rng.randint(0, 2)):
        kind = rng.choice(kinds)
        start = rng.uniform(1.0, max(horizon - 2.0, 2.0))
        length = rng.uniform(2.0, 10.0)
        if kind == "crash":
            fault = ReplicaCrash(
                rng.choice(list(replica_ids)),
                at=start,
                recover_at=start + length,
                volatile_memory=rng.random() < 0.7,
            )
        elif kind == "outage":
            fault = GossipOutage(rng.choice(list(replica_ids)), start=start, end=start + length)
        elif kind == "spike":
            fault = DelaySpike(start=start, end=start + length)
        elif kind == "asymmetric":
            source, destination = rng.sample(list(replica_ids), 2)
            fault = AsymmetricPartition(
                source=source, destination=destination, start=start, end=start + length
            )
        elif kind == "straggler":
            fault = StragglerReplica(
                rng.choice(list(replica_ids)),
                factor=rng.choice([2.0, 4.0]),
                start=start,
                end=start + length,
            )
        elif kind == "duplicate":
            fault = DuplicateMessages(
                start=start, end=start + length, probability=rng.choice([0.5, 1.0])
            )
        else:
            fault = CorruptTransfers(
                start=start, end=start + length, probability=rng.choice([0.5, 1.0])
            )
        doc = fault_to_dict(fault)
        if shard is not None:
            doc["shard"] = shard
        faults.append(doc)
    return faults


def _mode_rng(mode: str, seed: int) -> random.Random:
    return random.Random(stable_hash(f"{mode}:{seed}"))


# --------------------------------------------------------------------------- #
# The mode matrix                                                             #
# --------------------------------------------------------------------------- #

def _sim_spec(
    mode: str,
    seed: int,
    delta_gossip: bool,
    compaction: bool = False,
    advert: bool = False,
    chunked: bool = False,
) -> ScenarioSpec:
    rng = _mode_rng(mode, seed)
    data_type = rng.choice(DATA_TYPE_NAMES)
    params = random_params(rng, delta_gossip)
    if compaction:
        params = dataclasses.replace(
            params, compaction=CompactionPolicy(min_batch=1), compaction_interval=1.0
        )
    if advert:
        params = dataclasses.replace(
            params,
            advert_gossip=True,
            checkpoint_chunk=rng.choice([2, 5]) if chunked else None,
        )
    num_replicas = rng.randint(2, 4)
    clients = tuple(f"c{i}" for i in range(rng.randint(1, 3)))
    workload = random_workload_fields(rng)
    horizon = workload["operations_per_client"] * workload["mean_interarrival"]
    replica_ids = [f"r{i}" for i in range(num_replicas)]
    faults = random_fault_dicts(rng, replica_ids, horizon)
    return ScenarioSpec(
        name=f"{mode}_{seed:03d}",
        harness="sim",
        data_type=data_type,
        num_replicas=num_replicas,
        clients=clients,
        seed=seed * 31 + 7,
        workload_seed=seed + 1000,
        params=params,
        workload=workload,
        faults=tuple(faults),
    )


def _sharded_spec(mode: str, seed: int) -> ScenarioSpec:
    rng = _mode_rng(mode, seed)
    data_type = rng.choice(DATA_TYPE_NAMES)
    params = random_params(rng, delta_gossip=rng.random() < 0.5)
    num_shards = rng.choice([2, 3])
    clients = tuple(f"c{i}" for i in range(rng.randint(1, 2)))
    workload = random_keyed_workload_fields(rng)
    horizon = workload["operations_per_client"] * workload["mean_interarrival"]
    replica_ids = [f"r{i}" for i in range(3)]
    faults: List[Dict[str, Any]] = []
    for index in range(num_shards):
        faults.extend(
            random_fault_dicts(rng, replica_ids, horizon, shard=f"s{index}")
        )
    return ScenarioSpec(
        name=f"{mode}_{seed:03d}",
        harness="sharded",
        data_type=data_type,
        num_replicas=3,
        num_shards=num_shards,
        clients=clients,
        seed=seed * 13 + 5,
        workload_seed=seed + 77,
        params=params,
        workload=workload,
        faults=tuple(faults),
    )


def _adversarial_spec(mode: str, seed: int) -> ScenarioSpec:
    """Advert/pull gossip under the extended fault mix, crafted so the
    corrupted-transfer path genuinely fires: a volatile crash forces the
    recovering replica to catch up through the pull/transfer plane, and a
    certain-corruption window spanning the recovery makes its first
    transfer attempts fail the digest check before the window closes and a
    clean re-pull heals it."""
    rng = _mode_rng(mode, seed)
    data_type = rng.choice(DATA_TYPE_NAMES)
    params = SimulationParams(
        df=1.0,
        dg=1.0,
        gossip_period=1.0,
        service_time=0.0,
        request_fanout=1,
        frontend_policy="round_robin",
        retransmit_interval=4.0,
        delta_gossip=False,  # full-state gossip re-advertises every tick
        batch_gossip=rng.random() < 0.5,
        compaction=CompactionPolicy(min_batch=1),
        compaction_interval=1.0,
        advert_gossip=True,
        checkpoint_chunk=rng.choice([None, 2]),
    )
    num_replicas = rng.randint(3, 4)
    clients = tuple(f"c{i}" for i in range(2))
    workload = {
        "operations_per_client": 24,
        "mean_interarrival": 0.5,
        "poisson_arrivals": False,
        "strict_fraction": rng.choice([0.0, 0.2]),
        "prev_policy": "none",
    }
    # The crash lands once compaction is already rolling (stability needs a
    # couple of gossip round trips, so folds start around t=6-7): during the
    # outage the peers keep folding operations whose stability knowledge the
    # crashed replica never saw, so on recovery its persisted checkpoint is
    # strictly behind and catch-up *must* go through the pull/transfer
    # plane — straight into the corruption window, which outlives the
    # recovery by several gossip periods before clean re-pulls heal it.
    crash_at = 8.0
    recover_at = 13.0
    faults = [
        fault_to_dict(
            ReplicaCrash("r1", at=crash_at, recover_at=recover_at, volatile_memory=True)
        ),
        fault_to_dict(
            CorruptTransfers(start=crash_at, end=recover_at + 6.0, probability=1.0)
        ),
        fault_to_dict(
            DuplicateMessages(start=0.0, end=recover_at, probability=0.5)
        ),
    ]
    if rng.random() < 0.5:
        faults.append(
            fault_to_dict(
                StragglerReplica("r0", factor=2.0, start=1.0, end=5.0)
            )
        )
    else:
        faults.append(
            fault_to_dict(
                AsymmetricPartition(source="r2", destination="r0", start=1.0, end=4.0)
            )
        )
    return ScenarioSpec(
        name=f"{mode}_{seed:03d}",
        harness="sim",
        data_type=data_type,
        num_replicas=num_replicas,
        clients=clients,
        seed=seed * 31 + 7,
        workload_seed=seed + 1000,
        params=params,
        workload=workload,
        faults=tuple(faults),
    )


#: Mode name -> spec builder.  8 modes x ``--seeds`` seeds = the corpus.
MODES = {
    "full": lambda mode, seed: _sim_spec(mode, seed, delta_gossip=False),
    "delta": lambda mode, seed: _sim_spec(mode, seed, delta_gossip=True),
    "full-compact": lambda mode, seed: _sim_spec(
        mode, seed, delta_gossip=False, compaction=True
    ),
    "delta-compact": lambda mode, seed: _sim_spec(
        mode, seed, delta_gossip=True, compaction=True
    ),
    "advert": lambda mode, seed: _sim_spec(
        mode, seed, delta_gossip=False, compaction=True, advert=True
    ),
    "advert-chunk": lambda mode, seed: _sim_spec(
        mode, seed, delta_gossip=True, compaction=True, advert=True, chunked=True
    ),
    "sharded": _sharded_spec,
    "adversarial": _adversarial_spec,
}


def scenario_for(mode: str, seed: int) -> ScenarioSpec:
    """The deterministic spec of one corpus cell."""
    return MODES[mode](mode, seed)


def vector_doc(spec: ScenarioSpec, run: ScenarioRun) -> Dict[str, Any]:
    """The sealed vector document of an executed scenario."""
    return seal(
        {
            "name": spec.name,
            "scenario": spec.to_doc(),
            "expected": collect_outcome(run).to_doc(),
            "info": collect_info(run),
        }
    )


def generate_corpus(
    out_dir: Path,
    seeds: int,
    modes: Optional[Sequence[str]] = None,
    verbose: bool = True,
) -> List[Path]:
    """Run the seed matrix, check every execution against the oracle suite
    and write one vector file per scenario; returns the written paths."""
    out_dir.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for mode in modes if modes is not None else MODES:
        for seed in range(seeds):
            spec = scenario_for(mode, seed)
            run = run_scenario(spec)
            doc = vector_doc(spec, run)
            path = out_dir / f"{spec.name}.json"
            path.write_text(dumps_vector(doc), encoding="utf-8")
            written.append(path)
            if verbose:
                rejections = sum(
                    group["transfer_rejections"]
                    for group in doc["info"]["groups"].values()
                )
                note = f" ({rejections} transfer rejections)" if rejections else ""
                print(f"wrote {path}{note}")
    return written


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.conformance.generate",
        description="Generate the conformance-vector corpus.",
    )
    parser.add_argument("--seeds", type=int, default=5, help="seeds per mode (default 5)")
    parser.add_argument(
        "--out", type=Path, default=Path("tests/vectors"), help="output directory"
    )
    parser.add_argument(
        "--modes",
        type=str,
        default=None,
        help=f"comma-separated mode subset (default: all of {', '.join(MODES)})",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress per-file output")
    args = parser.parse_args(argv)
    modes = args.modes.split(",") if args.modes else None
    if modes:
        unknown = [mode for mode in modes if mode not in MODES]
        if unknown:
            parser.error(f"unknown modes: {', '.join(unknown)}")
    written = generate_corpus(args.out, args.seeds, modes, verbose=not args.quiet)
    print(f"{len(written)} vectors written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
