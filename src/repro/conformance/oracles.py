"""The outcome oracles every scenario must satisfy at quiescence.

These were born in the scenario fuzzer and are shared verbatim by the
conformance replayer: a vector is only as trustworthy as the checks that ran
when it was generated, so generator, fuzzer and replayer all call the same
functions.

* :func:`classify_casualties` — the loss-tolerant relaxation: operations
  legitimately wiped by a volatile crash (and their dependants) are exempt
  from the liveness-flavoured checks.
* :func:`quiesce` — run extra gossip rounds until every surviving operation
  is stable at every replica.
* :func:`check_cluster_outcome` — liveness, the Theorem 5.8
  eventual-serializability oracle, the Section 7/8 invariant checker, and
  replica-state convergence (Lemma 2.7).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.common import OperationId
from repro.conformance.codec import ConformanceError
from repro.verification.invariants import AlgorithmInvariantChecker
from repro.verification.serializability import check_recorded_trace


def classify_casualties(cluster) -> Tuple[Set[OperationId], Set[OperationId]]:
    """Partition the requested operations into ``(lost, stuck)`` identifiers.

    A volatile crash wipes everything but the locally generated labels
    (Section 9.3), so an operation that was done and *answered* at one
    replica and then wiped before any gossip spread it is gone for good —
    the front end stopped retransmitting when the response arrived.  That is
    the ack-before-replicate window the paper's fault model genuinely
    permits; the liveness-flavoured checks must not demand the impossible
    for such operations.  ``stuck`` operations are those whose ``prev``
    chain passes through a lost operation: no replica can ever do them
    (``can_do`` waits for the lost dependency), so they stay unanswered.
    Unanswered-and-wiped operations are neither: retransmission re-delivers
    them.
    """
    known = set()
    compacted_ids = set(cluster.compaction_ledger.ids)
    for replica in cluster.replicas.values():
        known |= replica.rcvd | replica.done_here()
    lost = {
        op_id
        for op_id, op in cluster.requested.items()
        if op_id in cluster.responded and op not in known and op_id not in compacted_ids
    }
    unreachable = set(lost)
    changed = True
    while changed:
        changed = False
        for op_id, op in cluster.requested.items():
            if op_id not in unreachable and op.prev & unreachable:
                unreachable.add(op_id)
                changed = True
    return lost, unreachable - lost


def quiesce(cluster, surviving_ids=None, max_rounds: int = 200) -> bool:
    """Run extra gossip rounds until every surviving operation is stable at
    every replica.

    Perpetual gossip timers guarantee convergence once faults have ended;
    message loss only delays it (delta gossip falls back to full state every
    ``full_state_interval`` sends, so dropped seqnos cannot wedge a peer).
    """
    if surviving_ids is None:
        surviving_ids = set(cluster.requested)
    targets = {cluster.requested[op_id] for op_id in surviving_ids}

    def settled() -> bool:
        return all(
            all(replica.knows_stable(op) for op in targets)
            for replica in cluster.replicas.values()
        )

    period = cluster.params.gossip_period + cluster.params.dg + cluster.params.df
    for _ in range(max_rounds):
        if settled():
            return True
        cluster.run(period)
    return settled()


def witness_order(
    cluster, casualties: Optional[Set[OperationId]] = None
) -> List[OperationId]:
    """The Theorem 5.8 witness: the system-wide minimum-label eventual order
    over the surviving operations, casualties appended in client order.

    A lost operation leaves only a stable-storage ghost label, which no
    surviving response ever saw, so it must not sit inside the order; no csc
    edge can lead from a casualty to a survivor, or the survivor would
    itself be stuck.
    """
    if casualties is None:
        lost, stuck = classify_casualties(cluster)
        casualties = lost | stuck
    witness = [op_id for op_id in cluster.eventual_order() if op_id not in casualties]
    witness += sorted(casualties, key=lambda op_id: (op_id.client, op_id.seqno))
    return witness


def check_cluster_outcome(cluster) -> Tuple[Set[OperationId], Set[OperationId]]:
    """The oracles every scenario must satisfy at quiescence.

    Returns the ``(lost, stuck)`` casualty sets so callers can account for
    how often the loss-tolerant relaxations were actually exercised.  Raises
    :class:`~repro.conformance.codec.ConformanceError` (or the verification
    layer's own exceptions) on any violation.
    """
    lost, stuck = classify_casualties(cluster)
    surviving = set(cluster.requested) - lost - stuck
    # Liveness: everything that *can* complete did complete.
    unanswered = set(cluster.requested) - set(cluster.responded)
    if not unanswered <= stuck:
        raise ConformanceError(
            f"survivable operations left unanswered: {unanswered - stuck}"
        )
    if not quiesce(cluster, surviving):
        raise ConformanceError("cluster failed to converge after faults ended")
    # Eventual-serializability oracle (Theorem 5.8) — unconditional safety.
    witness = witness_order(cluster, lost | stuck)
    check_recorded_trace(cluster.data_type, cluster.trace, witness=witness)
    # Section 7/8 invariants on the quiescent algorithm view.  The checker
    # assumes the crash-free universe: a lost operation leaves a restored
    # stable-storage label with no surviving body behind (violating 7.5 by
    # design), so the full sweep applies exactly to loss-free executions —
    # the vast majority of seeds.
    if not lost:
        AlgorithmInvariantChecker(cluster.algorithm_view()).check_all()
    # All replicas agree on the final state (convergence, Lemma 2.7) —
    # computed as checkpoint base plus tracked suffix, so compacted and
    # uncompacted replicas are compared on the same footing.
    states = {
        replica_id: replica.replayed_state()
        for replica_id, replica in cluster.replicas.items()
    }
    if len(set(states.values())) != 1:
        raise ConformanceError(f"replica states diverged: {states}")
    return lost, stuck
