"""Conformance vectors: serialized scenarios + expected outcomes.

The scenario fuzzer explores executions and throws them away; this package
freezes a reviewed corpus of them as versioned, canonically-encoded JSON
vectors (``tests/vectors/``) that any harness — the discrete-event
simulator, the sharded service layer, a future asyncio runtime or non-Python
port — can replay and be held to, following the consensus-spec
test-generator model.

* :mod:`repro.conformance.codec` — canonical tagged-JSON value encoding,
  format versioning, sha-256 content digests.
* :mod:`repro.conformance.scenario` — the serializable scenario spec and
  the run/collect machinery.
* :mod:`repro.conformance.oracles` — the shared outcome oracles (casualty
  classification, quiescence, Theorem 5.8 witness, invariant sweep).
* :mod:`repro.conformance.generate` — the corpus generator CLI
  (``python -m repro.conformance.generate``).
* :mod:`repro.conformance.replay` — the replayer CLI
  (``python -m repro.conformance.replay``).
"""

from repro.conformance.codec import (
    FORMAT_VERSION,
    VECTOR_KIND,
    ConformanceError,
    content_digest,
    decode_value,
    dumps_vector,
    encode_value,
    loads_vector,
    seal,
    state_digest,
    verify_sealed,
)
from repro.conformance.oracles import (
    check_cluster_outcome,
    classify_casualties,
    quiesce,
    witness_order,
)
from repro.conformance.scenario import (
    DATA_TYPE_NAMES,
    DATA_TYPES,
    UNSHARDED,
    ScenarioOutcome,
    ScenarioRun,
    ScenarioSpec,
    build_scenario,
    collect_info,
    collect_outcome,
    compare_outcomes,
    run_scenario,
)

__all__ = [
    "FORMAT_VERSION",
    "VECTOR_KIND",
    "ConformanceError",
    "content_digest",
    "decode_value",
    "dumps_vector",
    "encode_value",
    "loads_vector",
    "seal",
    "state_digest",
    "verify_sealed",
    "check_cluster_outcome",
    "classify_casualties",
    "quiesce",
    "witness_order",
    "DATA_TYPE_NAMES",
    "DATA_TYPES",
    "UNSHARDED",
    "ScenarioOutcome",
    "ScenarioRun",
    "ScenarioSpec",
    "build_scenario",
    "collect_info",
    "collect_outcome",
    "compare_outcomes",
    "run_scenario",
]
