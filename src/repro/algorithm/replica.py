"""The replica state machine (Section 6.3, Fig. 7).

Each replica keeps:

* ``pending`` — requests that still require a response from this replica;
* ``rcvd`` — every operation it has received (directly or via gossip);
* ``done[i]`` — for each replica ``i``, the operations this replica knows are
  done at ``i`` (``done[r]`` for the replica itself is simply "done here");
* ``stable[i]`` — for each replica ``i``, the operations this replica knows
  are stable at ``i``;
* ``labels`` — the minimum label seen for each operation (sparse; missing
  means "no label yet", i.e. the paper's ``oo``).

The local constraints ``lc_r`` order identifiers by label; they totally order
``done[r]`` (Invariant 7.15), so the value returned for an operation is
computed by replaying ``done[r]`` in label order.  Three value-computation
paths exist:

* the base path recomputes from scratch on every response (the paper's
  unoptimized ``send_rc``);
* with :meth:`ReplicaCore.enable_incremental_replay` (or the
  :class:`IncrementalReplicaCore` factory) the replica checkpoints its last
  replay and re-applies only the suffix that changed — labels merged via
  gossip can reorder the unstable tail, which the checkpoint comparison
  detects position by position;
* :class:`repro.algorithm.memoized.MemoizedReplicaCore` is the paper's own
  Section 10.1 variant, memoizing the *solid* prefix whose order can never
  change again.

Gossip likewise has two paths: the paper's full-state ``send_rr'`` (the
default), and delta gossip (:meth:`ReplicaCore.configure_delta_gossip`), in
which each message carries only the knowledge the destination has not yet
acknowledged — see :mod:`repro.algorithm.delta` for the seqno/ack/epoch
machinery and the argument that the two induce identical executions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.algorithm.delta import GossipSnapshot, PeerInState, PeerOutState
from repro.algorithm.labels import Label, LabelGenerator, LabelOrInfinity, label_min, label_sort_key
from repro.algorithm.messages import GossipMessage, RequestMessage, ResponseMessage
from repro.common import INFINITY, ConfigurationError, OperationId, SpecificationError
from repro.core.operations import OperationDescriptor
from repro.datatypes.base import SerialDataType


@dataclass
class ReplicaStats:
    """Counters used by the benchmarks and the optimization ablation (E6)."""

    do_it_count: int = 0
    responses_sent: int = 0
    gossip_sent: int = 0
    gossip_received: int = 0
    #: Number of data-type operator applications performed while computing
    #: response values (the quantity Section 10.1's memoization reduces).
    value_applications: int = 0
    #: Number of operator applications performed while memoizing / updating
    #: the current state (counted separately so the ablation can compare).
    memoized_applications: int = 0

    def total_applications(self) -> int:
        return self.value_applications + self.memoized_applications


class ReplicaCore:
    """The replica automaton of Fig. 7, as an explicitly drivable state
    machine.

    The surrounding harness (the action-level system driver in
    :mod:`repro.algorithm.system`, the discrete-event simulator in
    :mod:`repro.sim`, or the asyncio runtime in :mod:`repro.net`) decides
    *when* each step runs; this class implements the preconditions and
    effects.
    """

    def __init__(
        self,
        replica_id: str,
        replica_ids: Sequence[str],
        data_type: SerialDataType,
    ) -> None:
        if replica_id not in replica_ids:
            raise ConfigurationError(f"{replica_id} missing from replica id list")
        if len(set(replica_ids)) < 2:
            raise ConfigurationError("the algorithm assumes at least two replicas")
        self.replica_id = replica_id
        self.replica_ids: Tuple[str, ...] = tuple(replica_ids)
        self.data_type = data_type

        self.pending: Set[OperationDescriptor] = set()
        self.rcvd: Set[OperationDescriptor] = set()
        self.done: Dict[str, Set[OperationDescriptor]] = {i: set() for i in self.replica_ids}
        self.stable: Dict[str, Set[OperationDescriptor]] = {i: set() for i in self.replica_ids}
        self.labels: Dict[OperationId, Label] = {}

        self._label_generator = LabelGenerator(replica_id)
        #: Labels this replica generated locally; kept across a crash with
        #: volatile memory (the "stable storage" of Section 9.3).
        self._stable_storage: Dict[OperationId, Label] = {}
        #: Incarnation number, also kept in stable storage: bumped on every
        #: crash with volatile memory so peers can tell that acknowledgements
        #: issued before the crash are void.
        self._epoch: int = 0

        #: Delta-gossip configuration and per-peer bookkeeping (volatile).
        self.delta_gossip: bool = False
        self.full_state_interval: int = 8
        self._peer_out: Dict[str, PeerOutState] = {}
        self._peer_in: Dict[str, PeerInState] = {}
        #: Monotone counter bumped on every state mutation, so make_gossip
        #: can reuse the previous payload snapshot when nothing changed
        #: (idle gossip ticks dominate long runs).
        self._state_version: int = 0
        self._snapshot_cache: Optional[Tuple[int, GossipSnapshot]] = None

        #: Incremental-replay cache (volatile): the label order, per-position
        #: post-states and values of the last response replay.
        self._incremental_replay: bool = False
        self._replay_order: List[Tuple[Tuple, OperationId]] = []
        self._replay_states: List[Any] = []
        self._replay_values: Dict[OperationId, Any] = {}

        self.stats = ReplicaStats()

    # ------------------------------------------------------------ configuration

    def configure_delta_gossip(self, enabled: bool = True, full_state_interval: int = 8) -> None:
        """Switch destination-specific delta gossip on or off.

        ``full_state_interval`` is the periodic full-state fallback: every
        that-many sends to a peer, a full message is sent even when a delta
        basis is available, bounding how long a peer that silently lost state
        can stay behind.
        """
        if full_state_interval < 1:
            raise ConfigurationError("full_state_interval must be at least 1")
        self.delta_gossip = enabled
        self.full_state_interval = full_state_interval

    def enable_incremental_replay(self, enabled: bool = True) -> None:
        """Switch the incremental value-replay cache on or off.

        The cache changes no observable value — only how many operator
        applications :meth:`compute_value` performs.
        """
        self._incremental_replay = enabled
        if not enabled:
            self._reset_replay_cache()

    # ------------------------------------------------------------------ labels

    def label_of(self, op_id: OperationId) -> LabelOrInfinity:
        """``label_r(id)`` with ``INFINITY`` meaning "no label yet"."""
        return self.labels.get(op_id, INFINITY)

    def local_constraints(self) -> Set[Tuple[OperationId, OperationId]]:
        """``lc_r`` — the strict partial order induced on identifiers by the
        label function (only pairs within ``rcvd`` identifiers are material,
        but we follow the paper and compare all labelled identifiers)."""
        ids = list(self.labels)
        constraints: Set[Tuple[OperationId, OperationId]] = set()
        for a in ids:
            for b in ids:
                if a != b and self.labels[a] < self.labels[b]:
                    constraints.add((a, b))
        return constraints

    def done_here(self) -> Set[OperationDescriptor]:
        """``done_r[r]`` — the operations done at this replica."""
        return self.done[self.replica_id]

    def stable_here(self) -> Set[OperationDescriptor]:
        """``stable_r[r]`` — the operations stable at this replica."""
        return self.stable[self.replica_id]

    def done_order(self) -> List[OperationDescriptor]:
        """The operations done at this replica in label (``lc_r``) order."""
        return sorted(self.done_here(), key=lambda x: label_sort_key(self.label_of(x.id)))

    # ------------------------------------------------------------- request path

    def receive_request(self, message: RequestMessage) -> None:
        """``receive_cr(("request", x))``: record the pending request."""
        operation = message.operation
        self.pending.add(operation)
        self.rcvd.add(operation)
        self._state_version += 1

    def can_do(self, operation: OperationDescriptor) -> bool:
        """Precondition of ``do_it_r(x, l)``: received, not yet done here, and
        every operation in ``prev`` already done here."""
        if operation not in self.rcvd or operation in self.done_here():
            return False
        done_ids = {x.id for x in self.done_here()}
        return operation.prev <= done_ids

    def doable_operations(self) -> List[OperationDescriptor]:
        """Operations for which ``do_it`` is currently enabled."""
        return sorted(
            (x for x in self.rcvd - self.done_here() if self.can_do(x)),
            key=lambda x: repr(x.id),
        )

    def do_it(self, operation: OperationDescriptor, label: Optional[Label] = None) -> Label:
        """``do_it_r(x, l)``: assign a fresh label and mark the operation done.

        The label must come from ``L_r`` and exceed the label of every
        operation already done here; when *label* is omitted a suitable one is
        generated.
        """
        if not self.can_do(operation):
            raise SpecificationError(
                f"do_it precondition fails for {operation.id} at replica {self.replica_id}"
            )
        existing = [self.label_of(x.id) for x in self.done_here()]
        if label is None:
            label = self._label_generator.fresh(existing)
        else:
            if label.replica != self.replica_id:
                raise SpecificationError("replicas may only assign labels from their own set")
            if any(label <= other for other in existing if other is not INFINITY):
                raise SpecificationError("new label must exceed labels of done operations")
        self.done_here().add(operation)
        self.labels[operation.id] = label
        self._stable_storage[operation.id] = label
        self._state_version += 1
        self.stats.do_it_count += 1
        return label

    def do_all_ready(self) -> List[OperationDescriptor]:
        """Apply ``do_it`` until no operation is ready; returns those done.

        Matches the timing assumption that a ready operation is done
        immediately (Lemma 9.1).
        """
        performed: List[OperationDescriptor] = []
        progressing = True
        while progressing:
            progressing = False
            for operation in self.doable_operations():
                self.do_it(operation)
                performed.append(operation)
                progressing = True
        return performed

    # ------------------------------------------------------------ response path

    def is_stable_everywhere(self, operation: OperationDescriptor) -> bool:
        """``x in  ⋂_i stable_r[i]`` — this replica knows the operation is
        stable at every replica (the gate for strict responses)."""
        return all(operation in self.stable[i] for i in self.replica_ids)

    def response_ready(self, operation: OperationDescriptor) -> bool:
        """Precondition of ``send_rc(("response", x, v))``."""
        if operation not in self.pending or operation not in self.done_here():
            return False
        if operation.strict and not self.is_stable_everywhere(operation):
            return False
        return True

    def ready_responses(self) -> List[OperationDescriptor]:
        """Pending operations for which a response may be sent now."""
        return sorted(
            (x for x in self.pending if self.response_ready(x)),
            key=lambda x: repr(x.id),
        )

    def compute_value(self, operation: OperationDescriptor) -> Any:
        """``v in valset(x, done_r[r], <_lc_r)`` — by Invariant 7.15 the local
        constraints totally order ``done_r[r]``, so the value is unique and is
        obtained by replaying the done operations in label order.

        By default the replay starts from the initial state every time (the
        paper's unoptimized path); with incremental replay enabled, the
        longest prefix of the current label order that matches the previous
        replay is reused from its checkpoint and only the changed suffix is
        re-applied.
        """
        if operation not in self.done_here():
            raise SpecificationError(
                f"cannot compute a value for {operation.id}: not done at {self.replica_id}"
            )
        if self._incremental_replay:
            return self._compute_value_incremental(operation)
        state = self.data_type.initial_state()
        value: Any = None
        for x in self.done_order():
            state, reported = self.data_type.apply(state, x.op)
            self.stats.value_applications += 1
            if x.id == operation.id:
                value = reported
        return value

    def _compute_value_incremental(self, operation: OperationDescriptor) -> Any:
        """Replay only the suffix of the label order that changed since the
        last replay.

        The cache keys each position on ``(label sort key, id)``: a gossip
        merge that lowers an operation's label (reordering the unstable tail)
        changes the key at the first affected position, invalidating exactly
        the checkpoints from there on.
        """
        order = self.done_order()
        keys = [(label_sort_key(self.label_of(x.id)), x.id) for x in order]

        prefix = 0
        limit = min(len(keys), len(self._replay_order))
        while prefix < limit and keys[prefix] == self._replay_order[prefix]:
            prefix += 1

        if prefix == len(keys) and operation.id in self._replay_values:
            return self._replay_values[operation.id]

        # Drop invalidated checkpoints (and the values computed beyond them).
        del self._replay_order[prefix:]
        del self._replay_states[prefix:]
        retained = {op_id for _key, op_id in self._replay_order}
        self._replay_values = {
            op_id: v for op_id, v in self._replay_values.items() if op_id in retained
        }

        state = self._replay_states[prefix - 1] if prefix else self.data_type.initial_state()
        for x in order[prefix:]:
            state, reported = self.data_type.apply(state, x.op)
            self.stats.value_applications += 1
            self._replay_order.append((label_sort_key(self.label_of(x.id)), x.id))
            self._replay_states.append(state)
            self._replay_values[x.id] = reported
        return self._replay_values[operation.id]

    def _reset_replay_cache(self) -> None:
        self._replay_order = []
        self._replay_states = []
        self._replay_values = {}

    def make_response(self, operation: OperationDescriptor) -> ResponseMessage:
        """``send_rc(("response", x, v))``: compute the value, drop the
        operation from ``pending`` and return the message to send."""
        if not self.response_ready(operation):
            raise SpecificationError(
                f"response precondition fails for {operation.id} at replica {self.replica_id}"
            )
        value = self.compute_value(operation)
        self.pending.discard(operation)
        self.stats.responses_sent += 1
        return ResponseMessage(operation=operation, value=value)

    # -------------------------------------------------------------- gossip path

    def make_gossip(self, destination: Optional[str] = None) -> GossipMessage:
        """``send_rr'(("gossip", R, D, L, S))``.

        Without a *destination* (or with delta gossip disabled) the payload is
        the replica's full current received/done/label/stable knowledge, as in
        Fig. 7.  With delta gossip enabled and a destination given, the
        payload carries only what the destination has not acknowledged — see
        :mod:`repro.algorithm.delta`.
        """
        self.stats.gossip_sent += 1
        if not self.delta_gossip or destination is None:
            return GossipMessage(
                sender=self.replica_id,
                received=frozenset(self.rcvd),
                done=frozenset(self.done_here()),
                labels=dict(self.labels),
                stable=frozenset(self.stable_here()),
                epoch=self._epoch,
            )
        if destination == self.replica_id:
            raise SpecificationError("a replica does not gossip with itself")
        if destination not in self.done:
            raise SpecificationError(f"gossip to unknown replica {destination!r}")

        out = self._peer_out.setdefault(destination, PeerOutState())
        snapshot = self._payload_snapshot()
        seqno = out.next_seqno
        out.next_seqno += 1
        out.record_send(seqno, snapshot)

        basis = out.basis
        send_full = basis is None or out.sends_since_full + 1 >= self.full_state_interval
        ack_state = self._peer_in.get(destination)
        acks = dict(
            ack=ack_state.frontier if ack_state is not None else 0,
            ack_epoch=ack_state.epoch if ack_state is not None else 0,
            ack_stream=ack_state.stream if ack_state is not None else 0,
        )
        if send_full:
            out.sends_since_full = 0
            return GossipMessage(
                sender=self.replica_id,
                received=snapshot.received,
                done=snapshot.done,
                labels=dict(snapshot.labels),
                stable=snapshot.stable,
                epoch=self._epoch,
                stream=out.stream,
                seqno=seqno,
                **acks,
            )
        out.sends_since_full += 1
        return GossipMessage(
            sender=self.replica_id,
            received=snapshot.received - basis.received,
            done=snapshot.done - basis.done,
            labels={
                op_id: label
                for op_id, label in snapshot.labels.items()
                if basis.labels.get(op_id) != label
            },
            stable=snapshot.stable - basis.stable,
            epoch=self._epoch,
            stream=out.stream,
            seqno=seqno,
            **acks,
            is_delta=True,
            basis=basis,
        )

    def _payload_snapshot(self) -> GossipSnapshot:
        """The current ``(R, D, L, S)`` payload, reusing the previous
        immutable snapshot when no state mutation happened since — in steady
        state every gossip tick sends the same (empty-delta) payload, so the
        copies would otherwise dominate the cost the deltas save."""
        if self._snapshot_cache is not None and self._snapshot_cache[0] == self._state_version:
            return self._snapshot_cache[1]
        snapshot = GossipSnapshot(
            received=frozenset(self.rcvd),
            done=frozenset(self.done_here()),
            labels=dict(self.labels),
            stable=frozenset(self.stable_here()),
        )
        self._snapshot_cache = (self._state_version, snapshot)
        return snapshot

    def receive_gossip(self, message: GossipMessage) -> None:
        """``receive_r'r(("gossip", R, D, L, S))`` — merge the sender's
        knowledge into ours (Fig. 7).

        The merge is a union/minimum either way, so full and delta messages
        go through the same effect; a delta merge simply touches fewer
        elements.  Delta bookkeeping (seqno frontier, acks, epochs) is
        updated afterwards.
        """
        sender = message.sender
        if sender == self.replica_id:
            raise SpecificationError("a replica does not gossip with itself")
        if sender not in self.done:
            raise SpecificationError(f"gossip from unknown replica {sender!r}")

        self.rcvd |= message.received
        self.done[sender] |= message.done | message.stable
        self.done[self.replica_id] |= message.done | message.stable
        for replica in self.replica_ids:
            if replica not in (self.replica_id, sender):
                self.done[replica] |= message.stable

        # label_r <- min(label_r, L)
        for op_id, label in message.labels.items():
            merged = label_min(self.label_of(op_id), label)
            if merged is not INFINITY:
                self.labels[op_id] = merged
            self._label_generator.observed(label)

        self.stable[sender] |= message.stable
        self.stable[self.replica_id] |= message.stable
        self._promote_stable()
        self._state_version += 1
        self._record_gossip_bookkeeping(message)
        self.stats.gossip_received += 1

    def _record_gossip_bookkeeping(self, message: GossipMessage) -> None:
        """Advance the delta-gossip seqno/ack/epoch state for one receipt."""
        sender = message.sender
        in_state = self._peer_in.setdefault(sender, PeerInState(epoch=message.epoch))
        if message.epoch > in_state.epoch:
            # The sender restarted: its seqno streams start over and every
            # acknowledgement it issued before the crash is void.
            in_state.reset(message.epoch)
            self._peer_out.setdefault(sender, PeerOutState()).reset()
        if message.seqno is not None and message.epoch == in_state.epoch:
            in_state.record_receipt(message.stream, message.seqno,
                                    is_full=not message.is_delta)
        out = self._peer_out.setdefault(sender, PeerOutState())
        if (message.ack is not None
                and message.ack_epoch == self._epoch
                and message.ack_stream == out.stream):
            out.apply_ack(message.ack)

    def _promote_stable(self) -> None:
        """``stable_r[r] <- stable_r[r] u ⋂_i done_r[i]`` — operations this
        replica knows are done everywhere become stable here."""
        everywhere = set.intersection(*(self.done[i] for i in self.replica_ids))
        self.stable[self.replica_id] |= everywhere

    # ----------------------------------------------------- crash/recovery (9.3)

    def crash(self, volatile_memory: bool = True) -> None:
        """Simulate a crash.  With non-volatile memory nothing is lost (a
        crash is indistinguishable from message delay); with volatile memory
        everything except the stable storage — the locally generated labels
        and the incarnation epoch — is discarded, including all delta-gossip
        bookkeeping and the replay cache."""
        if not volatile_memory:
            return
        self.pending = set()
        self.rcvd = set()
        self.done = {i: set() for i in self.replica_ids}
        self.stable = {i: set() for i in self.replica_ids}
        self.labels = {}
        self._epoch += 1
        self._peer_out = {}
        self._peer_in = {}
        self._state_version += 1
        self._snapshot_cache = None
        self._reset_replay_cache()

    def recover_from_stable_storage(self) -> None:
        """Reload the locally generated labels after a crash with volatile
        memory.  The key property (Section 9.3) is that after recovery the
        replica's label for each operation is no greater than the label it had
        before the crash; restoring the locally generated labels guarantees
        this, and gossip fills in everything else (peers fall back to
        full-state gossip once they observe the bumped epoch, or at the
        latest after ``full_state_interval`` sends)."""
        for op_id, label in self._stable_storage.items():
            merged = label_min(self.label_of(op_id), label)
            if merged is not INFINITY:
                self.labels[op_id] = merged
        self._state_version += 1

    # ----------------------------------------------------------------- snapshot

    def snapshot(self) -> Dict[str, Any]:
        """A copy of the replica state used by invariant checks and the
        simulation-relation harness."""
        return {
            "replica_id": self.replica_id,
            "pending": set(self.pending),
            "rcvd": set(self.rcvd),
            "done": {i: set(ops) for i, ops in self.done.items()},
            "stable": {i: set(ops) for i, ops in self.stable.items()},
            "labels": dict(self.labels),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Replica({self.replica_id}, done={len(self.done_here())}, "
            f"stable={len(self.stable_here())}, pending={len(self.pending)})"
        )


class IncrementalReplicaCore(ReplicaCore):
    """A base replica with the incremental value-replay cache switched on.

    Usable anywhere a replica factory is accepted (``AlgorithmSystem``,
    ``SimulatedCluster``); externally indistinguishable from
    :class:`ReplicaCore` except for ``stats.value_applications``.
    """

    def __init__(self, replica_id: str, replica_ids: Sequence[str], data_type: SerialDataType) -> None:
        super().__init__(replica_id, replica_ids, data_type)
        self.enable_incremental_replay()
