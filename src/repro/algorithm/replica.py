"""The replica state machine (Section 6.3, Fig. 7).

Each replica keeps:

* ``pending`` — requests that still require a response from this replica;
* ``rcvd`` — every operation it has received (directly or via gossip);
* ``done[i]`` — for each replica ``i``, the operations this replica knows are
  done at ``i`` (``done[r]`` for the replica itself is simply "done here");
* ``stable[i]`` — for each replica ``i``, the operations this replica knows
  are stable at ``i``;
* ``labels`` — the minimum label seen for each operation (sparse; missing
  means "no label yet", i.e. the paper's ``oo``).

The local constraints ``lc_r`` order identifiers by label; they totally order
``done[r]`` (Invariant 7.15), so the value returned for an operation is
computed by replaying ``done[r]`` in label order.  Three value-computation
paths exist:

* the base path recomputes from scratch on every response (the paper's
  unoptimized ``send_rc``);
* with :meth:`ReplicaCore.enable_incremental_replay` (or the
  :class:`IncrementalReplicaCore` factory) the replica checkpoints its last
  replay and re-applies only the suffix that changed — labels merged via
  gossip can reorder the unstable tail, which the checkpoint comparison
  detects position by position;
* :class:`repro.algorithm.memoized.MemoizedReplicaCore` is the paper's own
  Section 10.1 variant, memoizing the *solid* prefix whose order can never
  change again.

Gossip likewise has two paths: the paper's full-state ``send_rr'`` (the
default), and delta gossip (:meth:`ReplicaCore.configure_delta_gossip`), in
which each message carries only the knowledge the destination has not yet
acknowledged — see :mod:`repro.algorithm.delta` for the seqno/ack/epoch
machinery and the argument that the two induce identical executions.

Orthogonally to both, :meth:`ReplicaCore.configure_compaction` enables
stability-driven checkpoint compaction (:mod:`repro.algorithm.checkpoint`):
the stable prefix of the label order is folded into a checkpoint state and
its per-operation records are dropped, bounding the replica's tracked state
by the unstable suffix instead of the total history.  The checkpoint is part
of the replica's stable storage (it survives a crash with volatile memory),
and it rides on full-state / frontier-advancing gossip so a peer that fell
behind the frontier catches up from the checkpoint instead of the full
history.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.algorithm.checkpoint import (
    Checkpoint,
    CheckpointAdvert,
    CompactionPolicy,
    chain_order_digest,
)
from repro.algorithm.delta import GossipSnapshot, PeerInState, PeerOutState
from repro.algorithm.labels import Label, LabelGenerator, LabelOrInfinity, label_min, label_sort_key
from repro.algorithm.messages import (
    CheckpointTransferMessage,
    GossipMessage,
    PullRequestMessage,
    RequestMessage,
    ResponseMessage,
    checkpoint_transfers,
)
from repro.common import INFINITY, ConfigurationError, OperationId, SpecificationError
from repro.core.operations import OperationDescriptor
from repro.datatypes.base import SerialDataType


@dataclass
class TransferAssembly:
    """Receiver-side reassembly state for one in-flight checkpoint transfer
    (keyed per sender; a chunk under a newer digest or sender epoch replaces
    the partial assembly — the newer checkpoint is nested over the older —
    while chunks from an *older* transfer, delayed on the unordered network,
    are ignored rather than allowed to clobber the newer assembly)."""

    digest: str
    epoch: int
    frontier: Label
    chunk_count: int
    chunks: Dict[int, "CheckpointTransferMessage"] = field(default_factory=dict)

    def complete(self) -> bool:
        return len(self.chunks) == self.chunk_count

    def assemble(self) -> Checkpoint:
        """Rebuild the checkpoint from a complete chunk set (value slices are
        concatenated in chunk order, preserving the ledger's oldest-first
        insertion order)."""
        values: Dict[OperationId, Any] = {}
        for index in range(self.chunk_count):
            values.update(self.chunks[index].values_chunk)
        final = self.chunks[self.chunk_count - 1]
        return Checkpoint(
            base_state=final.base_state,
            frontier=final.frontier,
            ids=final.ids,
            values=values,
            order_digest=final.order_digest,
        )


@dataclass
class ReplicaStats:
    """Counters used by the benchmarks and the optimization ablation (E6)."""

    do_it_count: int = 0
    responses_sent: int = 0
    gossip_sent: int = 0
    gossip_received: int = 0
    #: Number of data-type operator applications performed while computing
    #: response values (the quantity Section 10.1's memoization reduces).
    value_applications: int = 0
    #: Number of operator applications performed while memoizing / updating
    #: the current state (counted separately so the ablation can compare).
    memoized_applications: int = 0
    #: Number of full re-sorts performed by :meth:`ReplicaCore.done_order`
    #: (the sorted-suffix cache turns almost all of them into appends).
    done_order_sorts: int = 0
    #: Checkpoint compactions performed and operations folded into them.
    compactions: int = 0
    compacted_operations: int = 0
    #: Operator applications spent folding operations into the checkpoint.
    compaction_applications: int = 0
    #: Assembled checkpoint transfers discarded because their recomputed
    #: content digest did not match the one the chunks were sent under
    #: (corruption in flight); each rejection is healed by a later re-pull.
    transfer_rejections: int = 0
    #: Coverage absorptions refused because this replica's would-be fold
    #: order did not reproduce the compactor's chained ``order_digest``
    #: (post-crash mislabelled copies); each refusal routes through the
    #: pull/adopt path instead.
    coverage_order_mismatches: int = 0
    #: Delta payloads discarded after a volatile crash because the sender's
    #: delta basis rested on acknowledgements issued by this replica's
    #: previous incarnation (see :meth:`ReplicaCore.receive_gossip`).
    stale_basis_deltas_skipped: int = 0

    def total_applications(self) -> int:
        return self.value_applications + self.memoized_applications


class ReplicaCore:
    """The replica automaton of Fig. 7, as an explicitly drivable state
    machine.

    The surrounding harness (the action-level system driver in
    :mod:`repro.algorithm.system`, the discrete-event simulator in
    :mod:`repro.sim`, or the asyncio TCP runtime of
    :class:`repro.net.runtime.NetCluster`, which speaks the binary wire
    codec of :mod:`repro.net.codec`) decides *when* each step runs; this
    class implements the preconditions and effects.
    """

    def __init__(
        self,
        replica_id: str,
        replica_ids: Sequence[str],
        data_type: SerialDataType,
    ) -> None:
        if replica_id not in replica_ids:
            raise ConfigurationError(f"{replica_id} missing from replica id list")
        if len(set(replica_ids)) < 2:
            raise ConfigurationError("the algorithm assumes at least two replicas")
        self.replica_id = replica_id
        self.replica_ids: Tuple[str, ...] = tuple(replica_ids)
        self.data_type = data_type

        self.pending: Set[OperationDescriptor] = set()
        self.rcvd: Set[OperationDescriptor] = set()
        self.done: Dict[str, Set[OperationDescriptor]] = {i: set() for i in self.replica_ids}
        self.stable: Dict[str, Set[OperationDescriptor]] = {i: set() for i in self.replica_ids}
        self.labels: Dict[OperationId, Label] = {}

        self._label_generator = LabelGenerator(replica_id)
        #: Labels this replica generated locally; kept across a crash with
        #: volatile memory (the "stable storage" of Section 9.3).
        self._stable_storage: Dict[OperationId, Label] = {}
        #: Incarnation number, also kept in stable storage: bumped on every
        #: crash with volatile memory so peers can tell that acknowledgements
        #: issued before the crash are void.
        self._epoch: int = 0

        #: Delta-gossip configuration and per-peer bookkeeping (volatile).
        self.delta_gossip: bool = False
        self.full_state_interval: int = 8
        self._peer_out: Dict[str, PeerOutState] = {}
        self._peer_in: Dict[str, PeerInState] = {}
        #: Peers whose delta gossip cannot be trusted yet because this
        #: replica crashed with volatile memory: until a peer demonstrates a
        #: post-crash basis (any full-state message), its deltas may be
        #: computed against acknowledgements the previous incarnation issued
        #: for knowledge that no longer exists here, and merging them could
        #: absorb stability for operations sitting above an invisible gap.
        self._unsynced_peers: Set[str] = set()

        #: Advert/pull gossip configuration: with it enabled, gossip carries
        #: a compact checkpoint advert instead of the checkpoint body, and a
        #: behind peer pulls the body on demand (optionally chunked).
        self.advert_gossip: bool = False
        self.checkpoint_chunk: Optional[int] = None
        #: Outgoing pull requests queued by staleness detection (volatile);
        #: keyed by the advertising peer, drained by the harness.
        self._pull_queue: Dict[str, CheckpointAdvert] = {}
        #: Partial checkpoint-transfer assemblies, keyed by sender (volatile).
        self._transfer_in: Dict[str, TransferAssembly] = {}
        #: The highest-frontier advert whose coverage this replica detected
        #: itself *missing* part of (volatile).  While set, the replica is in
        #: catch-up: its label order has a hole below the advertised
        #: frontier, so local replays are untrustworthy — it neither answers
        #: tracked requests nor compacts until the hole closes (via an
        #: adopted transfer, or via ordinary gossip from a peer that still
        #: tracks the missing operations).  Eager shipping never needs this:
        #: there the body rides on the very message that reveals the gap.
        self._await: Optional[CheckpointAdvert] = None
        #: Memo for :meth:`catching_up`: (state version it was computed at,
        #: result) — the re-evaluation scans ``done_here``, and response
        #: predicates call it once per pending operation.
        self._await_check: Optional[Tuple[int, bool]] = None

        #: Retransmitted requests whose compacted value aged out of the
        #: ledger: queued for an explicit stale-response NACK instead of
        #: being silently dropped; drained by the harness.
        self._stale_nacks: List[OperationDescriptor] = []
        #: Monotone counter bumped on every state mutation, so make_gossip
        #: can reuse the previous payload snapshot when nothing changed
        #: (idle gossip ticks dominate long runs).
        self._state_version: int = 0
        self._snapshot_cache: Optional[Tuple[int, GossipSnapshot]] = None

        #: Label-change journal (volatile): every store into ``labels`` is
        #: stamped with a monotone version, so a delta send enumerates only
        #: the entries touched since the peer's acked basis instead of
        #: scanning the whole label map.  ``_label_journal_floor`` is the
        #: highest pruned version: a basis at or above it can use the
        #: journal, an older one falls back to the full scan.
        self._label_version: int = 0
        self._label_journal_versions: List[int] = []
        self._label_journal_ids: List[OperationId] = []
        self._label_journal_floor: int = 0

        #: Incremental-replay cache (volatile): the label order, per-position
        #: post-states and values of the last response replay.
        self._incremental_replay: bool = False
        self._replay_order: List[Tuple[Tuple, OperationId]] = []
        self._replay_states: List[Any] = []
        self._replay_values: Dict[OperationId, Any] = {}

        #: Stability-driven checkpoint compaction (Section 7.2 / Theorem 5.8
        #: made operational — see :mod:`repro.algorithm.checkpoint`).  The
        #: checkpoint lives in stable storage: it survives volatile crashes.
        self.checkpoint: Checkpoint = Checkpoint.empty(data_type.initial_state())
        self.compaction: Optional[CompactionPolicy] = None
        #: Harness hook invoked after each compaction with the folded batch
        #: (in label order) and the new checkpoint; used by the system/sim
        #: layers to keep the shared compacted-prefix ledger.
        self.on_compact: Optional[Callable[[List[OperationDescriptor], Checkpoint], None]] = None

        #: Sorted-suffix cache for :meth:`done_order`: the done set in label
        #: order, kept valid across ``do_it`` (append — the fresh label
        #: exceeds every existing one) and compaction (prefix trim), and
        #: invalidated when gossip lowers an existing label or adds done
        #: operations.
        self._order_cache: List[OperationDescriptor] = []
        self._order_dirty: bool = True

        self.stats = ReplicaStats()

    # ------------------------------------------------------------ configuration

    def configure_delta_gossip(self, enabled: bool = True, full_state_interval: int = 8) -> None:
        """Switch destination-specific delta gossip on or off.

        ``full_state_interval`` is the periodic full-state fallback: every
        that-many sends to a peer, a full message is sent even when a delta
        basis is available, bounding how long a peer that silently lost state
        can stay behind.
        """
        if full_state_interval < 1:
            raise ConfigurationError("full_state_interval must be at least 1")
        self.delta_gossip = enabled
        self.full_state_interval = full_state_interval

    def configure_advert_gossip(
        self, enabled: bool = True, checkpoint_chunk: Optional[int] = None
    ) -> None:
        """Switch advert/pull checkpoint gossip on or off.

        With it on, full-state (and frontier-advancing delta) messages attach
        a :class:`~repro.algorithm.checkpoint.CheckpointAdvert` instead of
        the checkpoint body, bounding their steady-state payload; a receiver
        that detects it is behind the advertised frontier issues a pull
        request and the advertiser streams the body back in
        ``checkpoint_chunk``-sized value slices (``None`` = one message).
        Orthogonal to both delta gossip and the compaction policy itself.
        """
        if checkpoint_chunk is not None and checkpoint_chunk < 1:
            raise ConfigurationError("checkpoint_chunk must be at least 1 or None")
        self.advert_gossip = enabled
        self.checkpoint_chunk = checkpoint_chunk

    def enable_incremental_replay(self, enabled: bool = True) -> None:
        """Switch the incremental value-replay cache on or off.

        The cache changes no observable value — only how many operator
        applications :meth:`compute_value` performs.
        """
        self._incremental_replay = enabled
        if not enabled:
            self._reset_replay_cache()

    def configure_compaction(
        self, policy: Optional[CompactionPolicy] = None, enabled: bool = True
    ) -> None:
        """Switch stability-driven checkpoint compaction on or off.

        With *enabled* true, the replica opportunistically folds the
        stable-everywhere prefix of its label order into the checkpoint after
        gossip merges (once at least ``policy.min_batch`` operations are
        compactable), dropping their per-operation records.  Disabling stops
        further compaction but keeps the existing checkpoint — already-folded
        operations cannot be un-compacted.
        """
        self.compaction = (policy or CompactionPolicy()) if enabled else None

    # ------------------------------------------------------------------ labels

    def label_of(self, op_id: OperationId) -> LabelOrInfinity:
        """``label_r(id)`` with ``INFINITY`` meaning "no label yet"."""
        return self.labels.get(op_id, INFINITY)

    def local_constraints(self) -> Set[Tuple[OperationId, OperationId]]:
        """``lc_r`` — the strict partial order induced on identifiers by the
        label function (only pairs within ``rcvd`` identifiers are material,
        but we follow the paper and compare all labelled identifiers)."""
        ids = list(self.labels)
        constraints: Set[Tuple[OperationId, OperationId]] = set()
        for a in ids:
            for b in ids:
                if a != b and self.labels[a] < self.labels[b]:
                    constraints.add((a, b))
        return constraints

    def done_here(self) -> Set[OperationDescriptor]:
        """``done_r[r]`` — the operations done at this replica."""
        return self.done[self.replica_id]

    def stable_here(self) -> Set[OperationDescriptor]:
        """``stable_r[r]`` — the operations stable at this replica."""
        return self.stable[self.replica_id]

    def is_compacted(self, op_id: OperationId) -> bool:
        """Whether *op_id* has been folded into the checkpoint (its record
        dropped; it is received, done and stable at every replica, and its
        value is fixed forever)."""
        return self.checkpoint.covers(op_id)

    def done_order(self) -> List[OperationDescriptor]:
        """The *tracked* (non-compacted) operations done at this replica, in
        label (``lc_r``) order.

        Served from the sorted-suffix cache; callers must treat the returned
        list as read-only.  ``do_it`` appends in place (a fresh label exceeds
        every existing one) and compaction trims the folded prefix, so a full
        re-sort only happens when gossip actually reorders the suffix.
        """
        if self._order_dirty:
            self._order_cache = sorted(
                self.done_here(), key=lambda x: label_sort_key(self.label_of(x.id))
            )
            self._order_dirty = False
            self.stats.done_order_sorts += 1
        return self._order_cache

    # ------------------------------------------------------------- request path

    def receive_request(self, message: RequestMessage) -> None:
        """``receive_cr(("request", x))``: record the pending request.

        A retransmitted request for an already-compacted operation is queued
        for a response without re-tracking the operation: its value is fixed
        and (retention permitting) retained by the checkpoint.  When the
        value has already aged out of a finite retention window this replica
        can provably never answer it — a permanently unanswerable ``pending``
        entry would grow without bound under retransmission — so the request
        is queued for an explicit stale-response NACK instead (see
        :meth:`take_stale_nacks`): the front end learns the value is gone
        rather than waiting forever.
        """
        operation = message.operation
        if self.is_compacted(operation.id):
            if operation.id in self.checkpoint.values:
                self.pending.add(operation)
                self._state_version += 1
            else:
                self._stale_nacks.append(operation)
            return
        self.pending.add(operation)
        self.rcvd.add(operation)
        self._state_version += 1

    def take_stale_nacks(self) -> List[OperationDescriptor]:
        """Drain the queued stale-response NACKs (retransmits for compacted
        operations whose retained value was evicted).  The harness turns each
        into a ``ResponseMessage(..., stale=True, sender=...)`` so the front
        end can stop waiting once every replica has NACKed."""
        nacks, self._stale_nacks = self._stale_nacks, []
        return nacks

    def can_do(self, operation: OperationDescriptor) -> bool:
        """Precondition of ``do_it_r(x, l)``: received, not yet done here, and
        every operation in ``prev`` already done here (compacted operations
        count as done — they are done everywhere)."""
        if self.is_compacted(operation.id):
            return False
        if operation not in self.rcvd or operation in self.done_here():
            return False
        done_ids = {x.id for x in self.done_here()}
        return all(p in done_ids or self.is_compacted(p) for p in operation.prev)

    def doable_operations(self) -> List[OperationDescriptor]:
        """Operations for which ``do_it`` is currently enabled."""
        return sorted(
            (x for x in self.rcvd - self.done_here() if self.can_do(x)),
            key=lambda x: repr(x.id),
        )

    def do_it(self, operation: OperationDescriptor, label: Optional[Label] = None) -> Label:
        """``do_it_r(x, l)``: assign a fresh label and mark the operation done.

        The label must come from ``L_r`` and exceed the label of every
        operation already done here; when *label* is omitted a suitable one is
        generated.
        """
        if not self.can_do(operation):
            raise SpecificationError(
                f"do_it precondition fails for {operation.id} at replica {self.replica_id}"
            )
        existing = [self.label_of(x.id) for x in self.done_here()]
        if label is None:
            label = self._label_generator.fresh(existing)
        else:
            if label.replica != self.replica_id:
                raise SpecificationError("replicas may only assign labels from their own set")
            if any(label <= other for other in existing if other is not INFINITY):
                raise SpecificationError("new label must exceed labels of done operations")
            if self.checkpoint.frontier is not None and label <= self.checkpoint.frontier:
                raise SpecificationError("new label must exceed the compaction frontier")
        self.done_here().add(operation)
        self.labels[operation.id] = label
        self._note_label_change(operation.id)
        self._stable_storage[operation.id] = label
        if not self._order_dirty:
            # The fresh label exceeds every label of the done set, so the
            # sorted order extends by exactly this operation.
            self._order_cache.append(operation)
        self._state_version += 1
        self.stats.do_it_count += 1
        return label

    def do_all_ready(self) -> List[OperationDescriptor]:
        """Apply ``do_it`` until no operation is ready; returns those done.

        Matches the timing assumption that a ready operation is done
        immediately (Lemma 9.1).
        """
        performed: List[OperationDescriptor] = []
        progressing = True
        while progressing:
            progressing = False
            for operation in self.doable_operations():
                self.do_it(operation)
                performed.append(operation)
                progressing = True
        return performed

    # ------------------------------------------------------------ response path

    def knows_stable(self, operation: OperationDescriptor) -> bool:
        """``x in stable_r[r]`` on the checkpoint + suffix view — the
        predicate convergence checks and stabilization tracking quantify
        over (a compacted operation is stable here by construction)."""
        return operation in self.stable_here() or self.is_compacted(operation.id)

    def is_stable_everywhere(self, operation: OperationDescriptor) -> bool:
        """``x in  ⋂_i stable_r[i]`` — this replica knows the operation is
        stable at every replica (the gate for strict responses).  Compaction
        only ever folds operations already known stable everywhere, so a
        compacted operation passes by construction."""
        if self.is_compacted(operation.id):
            return True
        return all(operation in self.stable[i] for i in self.replica_ids)

    def response_ready(self, operation: OperationDescriptor) -> bool:
        """Precondition of ``send_rc(("response", x, v))``.

        A compacted operation is answerable exactly when its fixed value is
        still retained by the checkpoint (always, under the default unbounded
        ``value_retention``).

        A replica in advert/pull catch-up answers from retained checkpoint
        values, and — the one replay-based exception — operations whose
        reported value is :meth:`~repro.datatypes.base.SerialDataType.\
state_independent`: its tracked history has a hole below the awaited
        frontier, so a local replay could omit compacted effects, but a
        state-independent value is the same over any prefix.  Everything
        else waits; liveness is preserved by the pull retries (or by a
        peer that still tracks everything answering instead).
        """
        if operation not in self.pending:
            return False
        if self.is_compacted(operation.id):
            return operation.id in self.checkpoint.values
        if self.catching_up() and not self.data_type.state_independent(operation.op):
            return False
        if operation not in self.done_here():
            return False
        if operation.strict and not self.is_stable_everywhere(operation):
            return False
        return True

    def ready_responses(self) -> List[OperationDescriptor]:
        """Pending operations for which a response may be sent now."""
        return sorted(
            (x for x in self.pending if self.response_ready(x)),
            key=lambda x: repr(x.id),
        )

    def compute_value(self, operation: OperationDescriptor) -> Any:
        """``v in valset(x, done_r[r], <_lc_r)`` — by Invariant 7.15 the local
        constraints totally order ``done_r[r]``, so the value is unique and is
        obtained by replaying the done operations in label order.

        By default the replay starts from the checkpoint base state (the
        initial state while nothing has been compacted — the paper's
        unoptimized path) and covers the tracked suffix; with incremental
        replay enabled, the longest prefix of the current label order that
        matches the previous replay is reused from its cached state and only
        the changed tail is re-applied.  The value of a compacted operation
        is fixed and served from the checkpoint's retained values.
        """
        if self.is_compacted(operation.id):
            try:
                return self.checkpoint.values[operation.id]
            except KeyError:
                raise SpecificationError(
                    f"value of compacted operation {operation.id} was evicted at "
                    f"{self.replica_id} (raise CompactionPolicy.value_retention)"
                ) from None
        if operation not in self.done_here():
            raise SpecificationError(
                f"cannot compute a value for {operation.id}: not done at {self.replica_id}"
            )
        if self._incremental_replay:
            return self._compute_value_incremental(operation)
        state = self.checkpoint.base_state
        value: Any = None
        for x in self.done_order():
            state, reported = self.data_type.apply(state, x.op)
            self.stats.value_applications += 1
            if x.id == operation.id:
                value = reported
        return value

    def _compute_value_incremental(self, operation: OperationDescriptor) -> Any:
        """Replay only the suffix of the label order that changed since the
        last replay.

        The cache keys each position on ``(label sort key, id)``: a gossip
        merge that lowers an operation's label (reordering the unstable tail)
        changes the key at the first affected position, invalidating exactly
        the checkpoints from there on.
        """
        order = self.done_order()
        keys = [(label_sort_key(self.label_of(x.id)), x.id) for x in order]

        prefix = 0
        limit = min(len(keys), len(self._replay_order))
        while prefix < limit and keys[prefix] == self._replay_order[prefix]:
            prefix += 1

        if prefix == len(keys) and operation.id in self._replay_values:
            return self._replay_values[operation.id]

        # Drop invalidated checkpoints (and the values computed beyond them).
        del self._replay_order[prefix:]
        del self._replay_states[prefix:]
        retained = {op_id for _key, op_id in self._replay_order}
        self._replay_values = {
            op_id: v for op_id, v in self._replay_values.items() if op_id in retained
        }

        state = self._replay_states[prefix - 1] if prefix else self.checkpoint.base_state
        for x in order[prefix:]:
            state, reported = self.data_type.apply(state, x.op)
            self.stats.value_applications += 1
            self._replay_order.append((label_sort_key(self.label_of(x.id)), x.id))
            self._replay_states.append(state)
            self._replay_values[x.id] = reported
        return self._replay_values[operation.id]

    def _reset_replay_cache(self) -> None:
        self._replay_order = []
        self._replay_states = []
        self._replay_values = {}

    def make_response(self, operation: OperationDescriptor) -> ResponseMessage:
        """``send_rc(("response", x, v))``: compute the value, drop the
        operation from ``pending`` and return the message to send."""
        if not self.response_ready(operation):
            raise SpecificationError(
                f"response precondition fails for {operation.id} at replica {self.replica_id}"
            )
        value = self.compute_value(operation)
        self.pending.discard(operation)
        self.stats.responses_sent += 1
        return ResponseMessage(operation=operation, value=value)

    # -------------------------------------------------------------- gossip path

    def _note_label_change(self, op_id: OperationId) -> None:
        """Record a store into ``labels`` in the label-change journal.

        Every site that inserts or replaces a label entry must call this (or
        inline the equivalent) so delta gossip's changed-since-basis
        enumeration stays exact.  Deletions (compaction, adoption filtering)
        need no entry: a delta iterates the sender's current labels, so a
        deleted entry simply never appears — exactly as under the full scan.
        """
        self._label_version += 1
        self._label_journal_versions.append(self._label_version)
        self._label_journal_ids.append(op_id)

    def make_gossip(self, destination: Optional[str] = None) -> GossipMessage:
        """``send_rr'(("gossip", R, D, L, S))``.

        Without a *destination* (or with delta gossip disabled) the payload is
        the replica's full current received/done/label/stable knowledge, as in
        Fig. 7.  With delta gossip enabled and a destination given, the
        payload carries only what the destination has not acknowledged — see
        :mod:`repro.algorithm.delta`.
        """
        self.stats.gossip_sent += 1
        if not self.delta_gossip or destination is None:
            return GossipMessage(
                sender=self.replica_id,
                received=frozenset(self.rcvd),
                done=frozenset(self.done_here()),
                labels=dict(self.labels),
                stable=frozenset(self.stable_here()),
                epoch=self._epoch,
                **self._checkpoint_attachment(self.checkpoint),
            )
        if destination == self.replica_id:
            raise SpecificationError("a replica does not gossip with itself")
        if destination not in self.done:
            raise SpecificationError(f"gossip to unknown replica {destination!r}")

        out = self._peer_out.setdefault(destination, PeerOutState())
        snapshot = self._payload_snapshot()
        seqno = out.next_seqno
        out.next_seqno += 1
        out.record_send(seqno, snapshot)

        basis = out.basis
        send_full = basis is None or out.sends_since_full + 1 >= self.full_state_interval
        ack_state = self._peer_in.get(destination)
        acks = dict(
            ack=ack_state.frontier if ack_state is not None else 0,
            ack_epoch=ack_state.epoch if ack_state is not None else 0,
            ack_stream=ack_state.stream if ack_state is not None else 0,
        )
        if send_full:
            out.sends_since_full = 0
            return GossipMessage(
                sender=self.replica_id,
                received=snapshot.received,
                done=snapshot.done,
                labels=dict(snapshot.labels),
                stable=snapshot.stable,
                epoch=self._epoch,
                stream=out.stream,
                seqno=seqno,
                **acks,
                **self._checkpoint_attachment(snapshot.checkpoint),
            )
        out.sends_since_full += 1
        # A delta never resends knowledge at or below the acked basis — which
        # includes everything compacted since: those operations simply left
        # the payload snapshot.  The checkpoint itself travels (as body or
        # advert) only when the frontier advanced past what the basis already
        # conveyed — the same "nothing below the acked frontier is resent"
        # rule the payload sets follow.
        basis_count = basis.checkpoint.count if basis.checkpoint is not None else 0
        advanced = snapshot.checkpoint is not None and snapshot.checkpoint.count > basis_count
        return GossipMessage(
            sender=self.replica_id,
            received=snapshot.received - basis.received,
            done=snapshot.done - basis.done,
            labels=self._labels_since(snapshot, basis),
            stable=snapshot.stable - basis.stable,
            epoch=self._epoch,
            stream=out.stream,
            seqno=seqno,
            **acks,
            is_delta=True,
            basis=basis,
            **self._checkpoint_attachment(snapshot.checkpoint if advanced else None),
        )

    def _labels_since(self, snapshot: GossipSnapshot, basis: GossipSnapshot) -> Dict[OperationId, Label]:
        """The label entries of *snapshot* that differ from *basis* — the
        delta payload's ``L`` component.

        Labels change only through journaled stores, so when the journal
        still reaches back to the basis version the enumeration walks just
        the entries touched since then (a handful in steady state) and
        produces exactly what the full scan over ``snapshot.labels`` would.
        A basis older than the pruned journal horizon falls back to that
        full scan.
        """
        basis_labels = basis.labels
        snap_labels = snapshot.labels
        if basis.label_version < self._label_journal_floor:
            return {
                op_id: label
                for op_id, label in snap_labels.items()
                if basis_labels.get(op_id) != label
            }
        versions = self._label_journal_versions
        start = bisect_right(versions, basis.label_version)
        delta: Dict[OperationId, Label] = {}
        snap_get = snap_labels.get
        basis_get = basis_labels.get
        for op_id in self._label_journal_ids[start:]:
            label = snap_get(op_id)
            # A journaled id absent from the snapshot was compacted away
            # since the store — the full scan would not have sent it either.
            if label is not None and basis_get(op_id) != label:
                delta[op_id] = label
        if len(versions) > 4096:
            self._prune_label_journal()
        return delta

    def _prune_label_journal(self) -> None:
        """Drop journal entries every peer's acked basis is already past."""
        horizon = min(
            (
                out.basis.label_version
                for out in self._peer_out.values()
                if out.basis is not None
            ),
            default=self._label_version,
        )
        cut = bisect_right(self._label_journal_versions, horizon)
        if cut:
            del self._label_journal_versions[:cut]
            del self._label_journal_ids[:cut]
            self._label_journal_floor = horizon

    def _checkpoint_attachment(self, checkpoint: Optional[Checkpoint]) -> Dict[str, Any]:
        """The checkpoint-coverage field for an outgoing gossip message: the
        body under eager shipping, the compact advert under advert/pull."""
        if checkpoint is None or not checkpoint.count:
            return {}
        if self.advert_gossip:
            return {"advert": checkpoint.advert()}
        return {"checkpoint": checkpoint}

    def _payload_snapshot(self) -> GossipSnapshot:
        """The current ``(R, D, L, S)`` payload, reusing the previous
        immutable snapshot when no state mutation happened since — in steady
        state every gossip tick sends the same (empty-delta) payload, so the
        copies would otherwise dominate the cost the deltas save."""
        if self._snapshot_cache is not None and self._snapshot_cache[0] == self._state_version:
            return self._snapshot_cache[1]
        snapshot = GossipSnapshot(
            received=frozenset(self.rcvd),
            done=frozenset(self.done_here()),
            labels=dict(self.labels),
            stable=frozenset(self.stable_here()),
            checkpoint=self.checkpoint,
            label_version=self._label_version,
        )
        self._snapshot_cache = (self._state_version, snapshot)
        return snapshot

    def receive_gossip(self, message: GossipMessage) -> None:
        """``receive_r'r(("gossip", R, D, L, S))`` — merge the sender's
        knowledge into ours (Fig. 7).

        The merge is a union/minimum either way, so full and delta messages
        go through the same effect; a delta merge simply touches fewer
        elements.  Knowledge at or below this replica's compaction frontier
        is already folded into the checkpoint and is filtered out instead of
        re-tracked; an attached sender checkpoint ahead of ours is merged
        first (see :meth:`_merge_checkpoint`), while an attached *advert* is
        either absorbed as stability knowledge (when everything it covers is
        still tracked or compacted here) or queued for a pull (see
        :meth:`_consider_advert`).  Delta bookkeeping (seqno frontier, acks,
        epochs) is updated afterwards.
        """
        sender = message.sender
        if sender == self.replica_id:
            raise SpecificationError("a replica does not gossip with itself")
        if sender not in self.done:
            raise SpecificationError(f"gossip from unknown replica {sender!r}")

        if message.checkpoint is not None:
            self._merge_checkpoint(message.checkpoint)
        elif message.advert is not None:
            self._consider_advert(sender, message.advert)

        if not self._delta_basis_trusted(message):
            # The sender has not yet observed our post-crash incarnation: its
            # delta was computed against acknowledgements we issued before
            # losing our volatile state, so it can silently omit operations
            # (and their labels) that we no longer hold while still asserting
            # stability for operations ordered after them.  Merging such a
            # payload can convince us to compact a prefix with a hole in it.
            # Discard the payload (the self-contained checkpoint/advert above
            # were still processed) and do not acknowledge the seqno: the
            # unacked knowledge stays in the sender's window and is re-sent —
            # at the latest as the full state it falls back to once it sees
            # our bumped epoch or our ack regression.
            self.stats.stale_basis_deltas_skipped += 1
            self._record_gossip_bookkeeping(message, merged=False)
            self.stats.gossip_received += 1
            self._post_merge()
            return

        checkpoint = self.checkpoint
        if checkpoint.count:
            received = {x for x in message.received if not checkpoint.covers(x.id)}
            done = {
                x for x in (message.done | message.stable) if not checkpoint.covers(x.id)
            }
            stable = {x for x in message.stable if not checkpoint.covers(x.id)}
        else:
            received = message.received
            done = message.done | message.stable
            stable = message.stable

        done_before = len(self.done_here())
        self.rcvd |= received
        self.done[sender] |= done
        self.done[self.replica_id] |= done
        for replica in self.replica_ids:
            if replica not in (self.replica_id, sender):
                self.done[replica] |= stable

        # label_r <- min(label_r, L)
        label_lowered = False
        for op_id, label in message.labels.items():
            self._label_generator.observed(label)
            if checkpoint.count and checkpoint.covers(op_id):
                # Our archived label for a compacted operation is the global
                # minimum (Invariant 7.19): the incoming one cannot beat it.
                continue
            current = self.labels.get(op_id)
            merged = label_min(INFINITY if current is None else current, label)
            if merged is not INFINITY and merged is not current:
                self.labels[op_id] = merged
                self._note_label_change(op_id)
                if current is not None:
                    label_lowered = True

        if label_lowered or len(self.done_here()) != done_before:
            self._order_dirty = True

        self.stable[sender] |= stable
        self.stable[self.replica_id] |= stable
        self._promote_stable()
        self._state_version += 1
        self._record_gossip_bookkeeping(message)
        self.stats.gossip_received += 1
        self._post_merge()

    def receive_gossip_batch(self, messages: Sequence[GossipMessage]) -> None:
        """Merge a coalesced batch of gossip messages delivered in one
        wakeup (the simulator's ``batch_gossip`` coalescing and the net
        runtime's per-frame delivery both produce these).

        The default is the sequential per-message merge, so every variant
        accepts batches; :class:`~repro.algorithm.batchcore.BatchReplicaCore`
        overrides it to defer the order splices across the whole batch."""
        for message in messages:
            self.receive_gossip(message)

    def _post_merge(self) -> None:
        """Post-gossip hook: opportunistic compaction (subclasses that keep
        derived prefix state — the memoizing variants — advance it first)."""
        if self.compaction is not None:
            self.maybe_compact()

    def _delta_basis_trusted(self, message: GossipMessage) -> bool:
        """Whether a gossip payload's basis is sound to merge.

        Full-state payloads are self-contained and always trusted; a trusted
        full state also re-synchronises the sender after our own volatile
        crash.  A delta is only trusted once the sender has demonstrated a
        post-crash basis, because the acknowledgements our previous
        incarnation issued described knowledge that was wiped."""
        sender = message.sender
        if not message.is_delta:
            self._unsynced_peers.discard(sender)
            return True
        return sender not in self._unsynced_peers

    def _record_gossip_bookkeeping(self, message: GossipMessage,
                                   merged: bool = True) -> None:
        """Advance the delta-gossip seqno/ack/epoch state for one receipt.

        With ``merged=False`` (a skipped stale-basis delta) the seqno is not
        recorded: acknowledging a payload we discarded would let the sender
        drop that knowledge from every future delta."""
        sender = message.sender
        in_state = self._peer_in.setdefault(sender, PeerInState(epoch=message.epoch))
        if message.epoch > in_state.epoch:
            # The sender restarted: its seqno streams start over and every
            # acknowledgement it issued before the crash is void.  A partial
            # checkpoint transfer from the old incarnation is abandoned too —
            # the persisted checkpoint survives the crash, so the retry pull
            # fetches the same (or a newer, nested) body.
            in_state.reset(message.epoch)
            self._peer_out.setdefault(sender, PeerOutState()).reset()
            self._transfer_in.pop(sender, None)
        if merged and message.seqno is not None and message.epoch == in_state.epoch:
            in_state.record_receipt(message.stream, message.seqno,
                                    is_full=not message.is_delta)
        out = self._peer_out.setdefault(sender, PeerOutState())
        if (message.ack is not None
                and message.ack_epoch == self._epoch
                and message.ack_stream == out.stream):
            out.apply_ack(message.ack)

    def _promote_stable(self) -> None:
        """``stable_r[r] <- stable_r[r] u ⋂_i done_r[i]`` — operations this
        replica knows are done everywhere become stable here."""
        everywhere = set.intersection(*(self.done[i] for i in self.replica_ids))
        self.stable[self.replica_id] |= everywhere

    # ------------------------------------------------------ checkpoint compaction

    def compactable_prefix(self) -> List[OperationDescriptor]:
        """The longest label-order prefix of the tracked done set that can be
        folded into the checkpoint: every operation in it is known stable at
        every replica and is not awaiting a response here."""
        prefix: List[OperationDescriptor] = []
        for x in self.done_order():
            if x in self.pending or not self.is_stable_everywhere(x):
                break
            prefix.append(x)
        return prefix

    def maybe_compact(self, force: bool = False) -> int:
        """Fold the compactable prefix into the checkpoint when the policy
        says so (*force* ignores the ``min_batch`` amortization gate — the
        simulator's interval-driven compaction tick uses it).  Returns the
        number of operations folded.

        A replica in advert/pull catch-up never compacts: its label order is
        missing part of the agreed prefix, so what it would fold is not a
        prefix of the system-wide order (the ledger would flag the
        divergence).  Compaction resumes once the hole closes."""
        if self.compaction is None or self.catching_up():
            return 0
        prefix = self.compactable_prefix()
        if not prefix or (not force and len(prefix) < self.compaction.min_batch):
            return 0
        self._prepare_compaction()
        return self._compact(prefix)

    def _prepare_compaction(self) -> None:
        """Hook for subclasses whose derived prefix state must cover the
        compactable prefix before it is dropped (the memoizing variants fold
        everything solid into their memo state here).  Runs only once a fold
        is actually about to happen — the cheap prefix/min_batch gate comes
        first, so a gossip tick that folds nothing pays nothing extra.
        ``compactable_prefix`` depends only on stability and pending state,
        which the hook never changes."""

    def _compact(self, prefix: List[OperationDescriptor]) -> int:
        """Fold *prefix* into the checkpoint and drop its per-operation
        records from every tracked structure."""
        self.checkpoint, applications = self.checkpoint.extend(
            prefix, self.data_type, self.labels,
            value_retention=self.compaction.value_retention,
        )
        self.stats.compaction_applications += applications
        removed = set(prefix)
        removed_ids = {x.id for x in prefix}
        self.rcvd -= removed
        for i in self.replica_ids:
            self.done[i] -= removed
            self.stable[i] -= removed
        for op_id in removed_ids:
            self.labels.pop(op_id, None)
            self._stable_storage.pop(op_id, None)
        # Locally generated labels must keep exceeding the frontier even
        # though the compacted labels left the generator's inputs.
        self._label_generator.observed(self.checkpoint.frontier)
        self._drop_unanswerable_pending()
        if not self._order_dirty:
            if [x.id for x in self._order_cache[: len(prefix)]] == [x.id for x in prefix]:
                del self._order_cache[: len(prefix)]
            else:  # pragma: no cover - defensive; the prefix is the cache head
                self._order_dirty = True
        self._rebase_replay_cache(prefix)
        self._after_compaction(removed)
        self._state_version += 1
        self.stats.compactions += 1
        self.stats.compacted_operations += len(prefix)
        if self.on_compact is not None:
            self.on_compact(prefix, self.checkpoint)
        return len(prefix)

    def _after_compaction(self, removed: Set[OperationDescriptor]) -> None:
        """Hook for subclasses to drop their own per-operation records."""

    def _rebase_replay_cache(self, prefix: List[OperationDescriptor]) -> None:
        """Trim the incremental-replay cache by the compacted prefix (its
        cached states are absolute, so the remaining positions stay valid).

        The trim is sound only when the cache's leading entries are *exactly*
        the compacted prefix: if the cache predates a gossip merge that slid
        an operation into the prefix, its retained states are missing that
        operation's effect and the whole cache must be dropped instead.
        """
        if not self._replay_order:
            return
        count = len(prefix)
        if len(self._replay_order) < count or any(
            self._replay_order[index][1] != prefix[index].id for index in range(count)
        ):
            self._reset_replay_cache()
            return
        del self._replay_order[:count]
        del self._replay_states[:count]
        for operation in prefix:
            self._replay_values.pop(operation.id, None)

    def _coverage_position(self, coverage) -> Tuple[Set[OperationDescriptor], int]:
        """How much of *coverage* (a checkpoint body or advert — anything
        with ``covers``/``ids``/``count``) this replica already holds:
        the covered operations still tracked here, and the number of covered
        identifiers missing entirely (neither tracked nor in our own
        checkpoint)."""
        tracked = {x for x in self.done_here() if coverage.covers(x.id)}
        covered = len(tracked) + self.checkpoint.ids.intersection_count(coverage.ids)
        return tracked, coverage.count - covered

    def _behind_frontier(self, frontier: Label) -> bool:
        """Whether *frontier* is ahead of our own compaction frontier."""
        ours = self.checkpoint.frontier
        return ours is None or label_sort_key(ours) < label_sort_key(frontier)

    def _mark_coverage_stable(self, tracked: Set[OperationDescriptor]) -> None:
        """Absorb a checkpoint's stability assertion for operations still
        tracked here (sound: the sender verified ``x in stable_sender[i]``
        for every replica ``i`` before compacting, and ``stable_sender[i]``
        is within ``stable_i[i]``)."""
        if not tracked:
            return
        for i in self.replica_ids:
            self.done[i] |= tracked
            self.stable[i] |= tracked
        self._state_version += 1

    def _absorb_coverage(self, coverage, tracked: Set[OperationDescriptor]) -> bool:
        """Absorb *coverage*'s everywhere-stability assertion — but only
        after verifying that folding the still-tracked covered operations
        onto our own checkpoint in **our** label order reproduces the
        compactor's chained fold order (``order_digest``).

        The assertion alone names identifiers, not labels.  In normal
        operation knowing "done at ``i``" implies having merged ``i``'s
        label, so every replica that reaches everywhere-stability holds the
        agreed minimum and folds the same order.  A volatile crash breaks
        that implication: the recovered replica can re-learn (or re-do,
        via retransmission) every covered operation yet hold labels that
        are *not* the agreed minima — its merged-label knowledge was
        volatile, and peers that already compacted those operations can
        never re-teach it.  Folding by those labels would break the
        stable-prefix agreement (Invariant 7.2), so on a digest mismatch
        this returns ``False`` and the caller must pull/adopt the body,
        which replaces the mislabelled copies wholesale.
        """
        if not tracked:
            return True  # nothing new to absorb (nested or already-absorbed)
        ordered = sorted(tracked, key=lambda x: label_sort_key(self.label_of(x.id)))
        simulated = chain_order_digest(
            self.checkpoint.order_digest, (x.id for x in ordered)
        )
        if simulated != coverage.order_digest:
            self.stats.coverage_order_mismatches += 1
            return False
        self._mark_coverage_stable(tracked)
        self._note_coverage_absorbed(coverage.frontier)
        return True

    def _note_coverage_absorbed(self, frontier: Label) -> None:
        """Hook: a coverage up to *frontier* was verified and fully absorbed
        (the fast core memoizes this to skip re-scanning nested adverts)."""

    def _consider_advert(self, sender: str, advert: CheckpointAdvert) -> None:
        """Staleness detection against a received checkpoint advert.

        When everything the advert covers is still tracked (or compacted)
        here *and* our would-be fold order matches the advertised
        ``order_digest`` (see :meth:`_absorb_coverage`), the advert alone
        conveys the stability knowledge the body would have — no transfer
        needed, which is the steady-state path that keeps the wire payload
        flat.  Otherwise this replica is behind the advertised frontier or
        holds mislabelled copies (crash recovery, late join): it queues a
        pull request toward the advertiser and enters catch-up (see
        ``_await``); the queue entry survives lost pulls and transfers
        because every subsequent advert re-runs this check.
        """
        if advert.count == 0 or not self._behind_frontier(advert.frontier):
            return
        tracked, missing = self._coverage_position(advert)
        if missing == 0 and self._absorb_coverage(advert, tracked):
            self._refresh_await()
        else:
            self._pull_queue[sender] = advert
            if self._await is None or label_sort_key(advert.frontier) > label_sort_key(
                self._await.frontier
            ):
                self._await = advert
                self._await_check = None

    def catching_up(self) -> bool:
        """Whether this replica currently knows it is missing part of an
        advertised compacted prefix (the advert/pull catch-up window).
        Memoized per state version: the answer can only change when state
        changes, and callers probe it once per pending operation."""
        if self._await is None:
            return False
        if self._await_check is not None and self._await_check[0] == self._state_version:
            return self._await_check[1]
        self._refresh_await()
        result = self._await is not None
        self._await_check = (self._state_version, result)
        return result

    def _refresh_await(self) -> None:
        """Re-evaluate the catch-up condition against the awaited advert.

        The hole can close two ways: a transfer was adopted (our frontier
        moved past the awaited one), or ordinary gossip from peers that
        still track the missing operations re-delivered them all — in which
        case the advert's stability assertion now applies and is absorbed,
        exactly as if ``missing`` had been zero on first receipt.
        """
        if self._await is None:
            return
        if not self._behind_frontier(self._await.frontier):
            # Our frontier moved past the awaited one: only adoption can do
            # that while compaction is gated, and the adoption hook already
            # rebuilt any derived state.
            self._await = None
            return
        tracked, missing = self._coverage_position(self._await)
        if missing == 0 and self._absorb_coverage(self._await, tracked):
            self._await = None
            # The hole closed through ordinary gossip (no adoption ran):
            # derived state computed against the holed history — the
            # memoizing variants' memo/current state — must be rebuilt now
            # that the full prefix is tracked again.
            self._on_catchup_healed()

    def take_pending_pulls(self) -> List[PullRequestMessage]:
        """Drain the queued pull requests as sendable messages.

        Dropped pulls (or transfers) re-queue themselves: the next advert
        from a peer we are still behind re-enters the queue via
        :meth:`_consider_advert`, so retry needs no timer of its own.
        """
        pulls = [
            PullRequestMessage(
                requester=self.replica_id,
                target=peer,
                digest=advert.digest,
                frontier=advert.frontier,
                have_frontier=self.checkpoint.frontier,
            )
            for peer, advert in self._pull_queue.items()
        ]
        self._pull_queue.clear()
        return pulls

    def receive_pull_request(self, message: PullRequestMessage) -> List[CheckpointTransferMessage]:
        """Answer a pull with transfer chunks of our *current* checkpoint.

        The current checkpoint may have advanced past the advertised digest
        (concurrent compaction); that is fine — checkpoints are nested, so
        the newer body covers everything the requester asked for.  An empty
        checkpoint (possible after a volatile crash wiped nothing but the
        peer pulled against a stale advert from a previous incarnation — the
        checkpoint itself persists, so in practice only when nothing was
        ever compacted) yields no chunks; the requester retries off later
        adverts.
        """
        if message.target != self.replica_id:
            raise SpecificationError(
                f"pull request for {message.target!r} delivered to {self.replica_id!r}"
            )
        if self.checkpoint.count == 0:
            return []
        return checkpoint_transfers(
            self.checkpoint,
            sender=self.replica_id,
            requester=message.requester,
            epoch=self._epoch,
            chunk=self.checkpoint_chunk,
        )

    def receive_transfer(self, message: CheckpointTransferMessage) -> None:
        """Accumulate one transfer chunk; adopt the checkpoint when the
        assembly completes.

        Chunks are keyed per sender: a chunk under a newer digest (the
        sender compacted again mid-transfer) or a newer sender epoch (the
        sender crashed and recovered) replaces the partial assembly — in
        both cases the replacement checkpoint is nested over the abandoned
        one, so nothing is lost beyond the re-pulled chunks.
        """
        if message.requester != self.replica_id:
            raise SpecificationError(
                f"transfer for {message.requester!r} delivered to {self.replica_id!r}"
            )
        if not self._behind_frontier(message.frontier):
            self._transfer_in.pop(message.sender, None)
            return  # already caught up through another peer's transfer
        assembly = self._transfer_in.get(message.sender)
        if assembly is not None and (
            message.epoch < assembly.epoch
            or label_sort_key(message.frontier) < label_sort_key(assembly.frontier)
        ):
            return  # delayed straggler from an older, superseded transfer
        if assembly is None or assembly.digest != message.digest or assembly.epoch != message.epoch:
            assembly = TransferAssembly(
                digest=message.digest,
                epoch=message.epoch,
                frontier=message.frontier,
                chunk_count=message.chunk_count,
            )
            self._transfer_in[message.sender] = assembly
        assembly.chunks[message.chunk_index] = message
        if not assembly.complete():
            return
        del self._transfer_in[message.sender]
        assembled = assembly.assemble()
        if assembled.digest() != assembly.digest:
            # The body was corrupted in flight: the chunks were sent under
            # the sender's content digest, and the checkpoint reassembled
            # from them no longer hashes to it.  Discard the assembly and
            # re-queue the pull right away: waiting for the next advert is
            # not enough on its own — a cluster that has quiesced (or one
            # whose compaction stopped advancing) may never advertise again,
            # and a corrupted *final* transfer would strand the catch-up.
            self.stats.transfer_rejections += 1
            if self._await is not None:
                self._pull_queue[message.sender] = self._await
            return
        self._merge_checkpoint(assembled)
        self._post_merge()

    def _merge_checkpoint(self, incoming: Checkpoint) -> None:
        """Merge a checkpoint body ahead of our frontier (eager gossip
        attaches it to messages; advert/pull delivers it via transfers).

        The checkpoint asserts that everything it covers is stable at every
        replica.  If we still track all of its operations *and* our fold
        order matches its ``order_digest`` (:meth:`_absorb_coverage`) we
        simply record that stability (and let our own policy fold them); if
        some are missing or our labels disagree — we are recovering from a
        crash with volatile memory, or joined a stream late — we adopt the
        checkpoint wholesale as our new base instead of waiting for a
        full-history replay that compacted peers can no longer send.
        """
        ours = self.checkpoint
        if incoming.count == 0 or not self._behind_frontier(incoming.frontier):
            return  # nested checkpoints: ours already covers the incoming one
        tracked, missing = self._coverage_position(incoming)
        if missing == 0 and self._absorb_coverage(incoming, tracked):
            self._refresh_await()
            return
        if not ours.ids.issubset(incoming.ids):  # pragma: no cover - defensive
            raise SpecificationError(
                f"non-nested checkpoints at {self.replica_id}: the stable prefix "
                "is totally ordered, so a larger frontier must cover a smaller one"
            )
        retention = self.compaction.value_retention if self.compaction is not None else None
        self.checkpoint = Checkpoint(
            base_state=incoming.base_state,
            frontier=incoming.frontier,
            ids=incoming.ids,
            values=ours.merged_values(incoming.values, retention),
            order_digest=incoming.order_digest,
        )
        covers = self.checkpoint.covers
        self.rcvd = {x for x in self.rcvd if not covers(x.id)}
        for i in self.replica_ids:
            self.done[i] = {x for x in self.done[i] if not covers(x.id)}
            self.stable[i] = {x for x in self.stable[i] if not covers(x.id)}
        self.labels = {op_id: l for op_id, l in self.labels.items() if not covers(op_id)}
        for op_id in [op_id for op_id in self._stable_storage if covers(op_id)]:
            del self._stable_storage[op_id]
        self._drop_unanswerable_pending()
        self._label_generator.observed(self.checkpoint.frontier)
        # Queued pulls the adopted frontier now satisfies would only fetch
        # bodies we already hold.
        self._pull_queue = {
            peer: advert
            for peer, advert in self._pull_queue.items()
            if self._behind_frontier(advert.frontier)
        }
        self._order_dirty = True
        self._reset_replay_cache()
        self._on_checkpoint_adopted()
        self._refresh_await()
        self._state_version += 1

    def _drop_unanswerable_pending(self) -> None:
        """Prune pending entries this replica can provably never answer: a
        compacted operation whose retained value has been evicted (by a local
        fold under finite retention, or by an adopted checkpoint whose sender
        evicted it).  Left in place they would sit in ``pending`` forever —
        ``response_ready`` can never become true for them again."""
        if not self.pending:
            return
        self.pending = {
            op
            for op in self.pending
            if not (self.checkpoint.covers(op.id) and op.id not in self.checkpoint.values)
        }

    def _on_checkpoint_adopted(self) -> None:
        """Hook for subclasses to rebuild derived state after a wholesale
        checkpoint adoption (crash recovery catch-up)."""

    def _on_catchup_healed(self) -> None:
        """Hook for subclasses whose derived state advanced against a holed
        history: called when an advert/pull catch-up window closes through
        ordinary gossip re-delivery instead of a transfer adoption."""

    # ------------------------------------------------------------- state sizing

    def tracked_op_count(self) -> int:
        """Number of operations this replica keeps per-operation records for
        (the quantity compaction bounds; the checkpoint's folded operations
        are excluded — they cost an interval summary entry, not a record)."""
        return len(self.rcvd)

    def state_size(self) -> Dict[str, int]:
        """Breakdown of the per-operation state held right now (element
        counts, used by the memory metrics and benchmark E10)."""
        return {
            "rcvd": len(self.rcvd),
            "done": sum(len(ops) for ops in self.done.values()),
            "stable": sum(len(ops) for ops in self.stable.values()),
            "labels": len(self.labels),
            "stable_storage": len(self._stable_storage),
            "replay_cache": len(self._replay_states),
            "pending": len(self.pending),
            "compacted": self.checkpoint.count,
            "checkpoint_intervals": self.checkpoint.ids.interval_count,
            "checkpoint_values": len(self.checkpoint.values),
        }

    def replayed_state(self) -> Any:
        """The data state after the full history as seen here: the checkpoint
        base plus the tracked done suffix in label order.  Inspection helper
        (does not touch the stats counters)."""
        state = self.checkpoint.base_state
        for x in self.done_order():
            state, _value = self.data_type.apply(state, x.op)
        return state

    # ----------------------------------------------------- crash/recovery (9.3)

    def crash(self, volatile_memory: bool = True) -> None:
        """Simulate a crash.  With non-volatile memory nothing is lost (a
        crash is indistinguishable from message delay); with volatile memory
        everything except the stable storage — the locally generated labels,
        the incarnation epoch, and the compaction checkpoint — is discarded,
        including all delta-gossip bookkeeping and the replay cache.

        Persisting the checkpoint is what makes compaction crash-safe: the
        forgotten per-operation records below the frontier can never be
        re-learned from peers (they may have compacted too), so the folded
        base state must survive.  Recovery then only needs gossip for the
        unstable suffix.
        """
        if not volatile_memory:
            return
        self.pending = set()
        self.rcvd = set()
        self.done = {i: set() for i in self.replica_ids}
        self.stable = {i: set() for i in self.replica_ids}
        self.labels = {}
        self._epoch += 1
        self._peer_out = {}
        self._peer_in = {}
        # Until a peer shows us a post-crash basis (a full-state message),
        # its deltas may rest on acks our previous incarnation issued.
        self._unsynced_peers = {i for i in self.replica_ids if i != self.replica_id}
        self._pull_queue = {}
        self._transfer_in = {}
        self._await = None
        self._await_check = None
        self._stale_nacks = []
        self._state_version += 1
        self._snapshot_cache = None
        # The rebuilt label map starts empty (recovery re-inserts below);
        # no pre-crash basis survives (_peer_out was just cleared), so the
        # journal restarts with the floor at the current version.
        self._label_journal_versions = []
        self._label_journal_ids = []
        self._label_journal_floor = self._label_version
        self._reset_replay_cache()
        self._order_cache = []
        self._order_dirty = True
        self._on_crash()

    def _on_crash(self) -> None:
        """Hook for subclasses to discard derived volatile state on a crash
        with volatile memory (the persisted checkpoint is the restart
        point)."""

    def recover_from_stable_storage(self) -> None:
        """Reload the locally generated labels after a crash with volatile
        memory.  The key property (Section 9.3) is that after recovery the
        replica's label for each operation is no greater than the label it had
        before the crash; restoring the locally generated labels guarantees
        this, and gossip fills in everything else (peers fall back to
        full-state gossip once they observe the bumped epoch, or at the
        latest after ``full_state_interval`` sends)."""
        for op_id, label in self._stable_storage.items():
            if self.is_compacted(op_id):
                continue  # folded into the persisted checkpoint
            merged = label_min(self.label_of(op_id), label)
            if merged is not INFINITY:
                self.labels[op_id] = merged
                self._note_label_change(op_id)
        self._order_dirty = True
        self._state_version += 1

    # ----------------------------------------------------------------- snapshot

    def snapshot(self) -> Dict[str, Any]:
        """A copy of the replica state used by invariant checks and the
        simulation-relation harness."""
        return {
            "replica_id": self.replica_id,
            "pending": set(self.pending),
            "rcvd": set(self.rcvd),
            "done": {i: set(ops) for i, ops in self.done.items()},
            "stable": {i: set(ops) for i, ops in self.stable.items()},
            "labels": dict(self.labels),
            "checkpoint": self.checkpoint,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Replica({self.replica_id}, done={len(self.done_here())}, "
            f"stable={len(self.stable_here())}, pending={len(self.pending)})"
        )


class IncrementalReplicaCore(ReplicaCore):
    """A base replica with the incremental value-replay cache switched on.

    Usable anywhere a replica factory is accepted (``AlgorithmSystem``,
    ``SimulatedCluster``); externally indistinguishable from
    :class:`ReplicaCore` except for ``stats.value_applications``.
    """

    def __init__(self, replica_id: str, replica_ids: Sequence[str], data_type: SerialDataType) -> None:
        super().__init__(replica_id, replica_ids, data_type)
        self.enable_incremental_replay()
