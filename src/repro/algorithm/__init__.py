"""The lazy-replication ESDS algorithm (Section 6 of the paper).

The algorithm replicates the data object at every replica, assigns each
operation a *label* from a per-replica well-ordered set, gossips
``(rcvd, done, label, stable)`` information among replicas, and uses the
system-wide minimum label of each operation as its position in the eventual
total order.  Strict operations are answered only once the replica knows the
operation is stable (done at every replica).

Modules:

* :mod:`repro.algorithm.labels` — the label space ``L = U_r L_r`` and per
  replica label generation (Section 6.3);
* :mod:`repro.algorithm.messages` — request, response and gossip messages
  (Section 6.1);
* :mod:`repro.algorithm.channel` — reliable non-FIFO channels plus the lossy
  / duplicating variants used in the fault-tolerance discussion (Section 9.3);
* :mod:`repro.algorithm.frontend` — the per-client front end (Section 6.2);
* :mod:`repro.algorithm.replica` — the replica state machine (Section 6.3),
  including destination-specific delta gossip and the incremental
  value-replay cache;
* :mod:`repro.algorithm.delta` — per-peer seqno/ack/epoch bookkeeping for
  delta gossip (an ack-based, crash-safe form of Section 10.4);
* :mod:`repro.algorithm.checkpoint` — stability-driven checkpoint compaction
  (the agreed stable prefix of Invariant 7.2 / Theorem 5.8 collapsed into a
  base state, bounding replica memory by the unstable suffix);
* :mod:`repro.algorithm.fastcore` / :mod:`repro.algorithm.batchcore` — the
  raw-speed replica variants: interned/bitset mirrors, and the
  struct-of-arrays batch replay kernel layered on them (with
  :mod:`repro.algorithm.batchops` providing the numpy-optional bulk array
  primitives);
* :mod:`repro.algorithm.memoized` — the memoizing replica ESDS-Alg'
  (Section 10.1);
* :mod:`repro.algorithm.commute` — the ``Commute`` replica exploiting
  commutativity (Section 10.3);
* :mod:`repro.algorithm.system` — the complete system ``ESDS-Alg x Users``
  with its derived variables (Section 6.4), driven action-by-action;
* :mod:`repro.algorithm.automata` — an I/O-automaton wrapper exposing the
  system to the :mod:`repro.automata` scheduler.
"""

from repro.algorithm.labels import Label, LabelGenerator, label_sort_key
from repro.algorithm.checkpoint import (
    Checkpoint,
    CheckpointAdvert,
    CompactionLedger,
    CompactionPolicy,
    OpIdSummary,
)
from repro.algorithm.delta import GossipSnapshot, PeerInState, PeerOutState
from repro.algorithm.messages import (
    CheckpointTransferMessage,
    GossipMessage,
    PullRequestMessage,
    RequestMessage,
    ResponseMessage,
)
from repro.algorithm.channel import Channel, LossyChannel
from repro.algorithm.frontend import FrontEndCore
from repro.algorithm.batchcore import BatchIncrementalReplicaCore, BatchReplicaCore
from repro.algorithm.fastcore import FastIncrementalReplicaCore, FastReplicaCore
from repro.algorithm.replica import IncrementalReplicaCore, ReplicaCore
from repro.algorithm.memoized import MemoizedReplicaCore
from repro.algorithm.commute import CommuteReplicaCore
from repro.algorithm.system import AlgorithmSystem
from repro.algorithm.automata import AlgorithmAutomaton

__all__ = [
    "Label",
    "LabelGenerator",
    "label_sort_key",
    "Checkpoint",
    "CheckpointAdvert",
    "CheckpointTransferMessage",
    "CompactionLedger",
    "CompactionPolicy",
    "OpIdSummary",
    "PullRequestMessage",
    "GossipMessage",
    "GossipSnapshot",
    "PeerInState",
    "PeerOutState",
    "RequestMessage",
    "ResponseMessage",
    "Channel",
    "LossyChannel",
    "FrontEndCore",
    "ReplicaCore",
    "IncrementalReplicaCore",
    "FastReplicaCore",
    "FastIncrementalReplicaCore",
    "BatchReplicaCore",
    "BatchIncrementalReplicaCore",
    "MemoizedReplicaCore",
    "CommuteReplicaCore",
    "AlgorithmSystem",
    "AlgorithmAutomaton",
]
