"""Numpy-optional bulk array primitives for the batch replay kernel.

The batch kernel (:mod:`repro.algorithm.batchcore`) keeps its hot state in
parallel Python arrays of packed int label keys.  When numpy is importable
the bulk operations over those arrays vectorize; otherwise (or below the
size threshold where interpreter/array round-trips dominate) a pure-Python
fallback computes the identical result.  Exactness is non-negotiable: the
numpy paths are only taken when the float64 round-trip provably preserves
every key (all finite packed keys are integers ``<= 2**53``, the largest
exactly-representable contiguous integer in a double), so the sort order —
and therefore the replica's externally visible behaviour — never depends on
whether numpy is installed.
"""

from __future__ import annotations

from typing import List, Sequence

try:  # pragma: no cover - exercised via whichever path the host offers
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Whether the vectorized paths are available at all.
HAVE_NUMPY = _np is not None

#: Below this many elements the conversion overhead beats the vector win.
NUMPY_MIN_ELEMENTS = 1024

#: Every integer up to here round-trips exactly through a float64.
_EXACT_FLOAT_LIMIT = float(2**53)


def argsort_keys(keys: Sequence[float]) -> List[int]:
    """Indices that stably sort *keys* — packed int label keys, possibly
    with ``float("inf")`` entries for not-yet-labelled operations.

    Stable, like ``list.sort``: equal keys (only the infinite ones can
    collide — finite packed keys are unique) keep their input order, so the
    numpy and fallback paths produce byte-identical orders.
    """
    if _np is not None and len(keys) >= NUMPY_MIN_ELEMENTS:
        arr = _np.asarray(keys, dtype=_np.float64)
        finite = arr[_np.isfinite(arr)]
        # Any key above 2**53 may have rounded during conversion (and the
        # rounding itself cannot push a too-big key below the limit), so
        # this check is sound on the converted values.
        if finite.size == 0 or float(finite.max()) < _EXACT_FLOAT_LIMIT:
            return _np.argsort(arr, kind="stable").tolist()
    return sorted(range(len(keys)), key=keys.__getitem__)
