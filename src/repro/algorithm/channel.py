"""Point-to-point channels (Section 6.1, Fig. 5).

The basic channel is reliable but not FIFO: it is a multiset of messages in
transit, any of which may be delivered next.  The fault-tolerance discussion
of Section 9.3 observes that the algorithm's safety is insensitive to message
loss and duplication (a lost message is indistinguishable from a delayed one),
so :class:`LossyChannel` adds explicit ``drop`` and ``duplicate`` steps that
the fault-injection tests exercise.
"""

from __future__ import annotations

import random
from typing import Generic, List, Optional, TypeVar

M = TypeVar("M")


class Channel(Generic[M]):
    """A reliable, unordered point-to-point channel from ``source`` to
    ``destination``.  The contents form a multiset; delivery removes one
    occurrence."""

    def __init__(self, source: str, destination: str) -> None:
        self.source = source
        self.destination = destination
        self._in_transit: List[M] = []
        #: Accumulated wire payload (``size_estimate()``) of sent messages
        #: that expose one — gossip messages do.  Used by the delta-gossip
        #: tests to compare full and delta payloads without involving the
        #: simulator.
        self.sent_payload = 0

    # -- automaton-style interface --------------------------------------------

    def send(self, message: M) -> None:
        """``send_ij(m)``: add *message* to the multiset."""
        self._in_transit.append(message)
        size = getattr(message, "size_estimate", None)
        if callable(size):
            self.sent_payload += size()

    def receivable(self) -> List[M]:
        """Messages currently eligible for delivery (all of them)."""
        return list(self._in_transit)

    def receive(self, message: Optional[M] = None, rng: Optional[random.Random] = None) -> M:
        """``receive_ij(m)``: remove and return one in-transit message.

        With *message* given, that specific message (one occurrence) is
        delivered; otherwise a pseudo-random one is chosen (non-FIFO).
        """
        if not self._in_transit:
            raise LookupError(f"channel {self.source}->{self.destination} is empty")
        if message is None:
            chooser = rng if rng is not None else random
            index = chooser.randrange(len(self._in_transit))
        else:
            index = self._index_of(message)
        return self._in_transit.pop(index)

    def _index_of(self, message: M) -> int:
        for index, candidate in enumerate(self._in_transit):
            if candidate == message or candidate is message:
                return index
        raise LookupError(
            f"message not in channel {self.source}->{self.destination}: {message!r}"
        )

    # -- inspection ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._in_transit)

    def __bool__(self) -> bool:
        return bool(self._in_transit)

    def contents(self) -> List[M]:
        """A copy of the in-transit multiset (for invariant checking)."""
        return list(self._in_transit)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Channel({self.source}->{self.destination}, "
            f"{len(self._in_transit)} in transit)"
        )


class LossyChannel(Channel[M]):
    """A channel that may additionally drop or duplicate in-transit messages.

    Dropping is modelled, as the paper suggests, as an internal action that
    removes a message without delivering it; duplication re-adds a copy.
    Safety properties must be preserved under both (tests in
    ``tests/test_fault_tolerance.py``).
    """

    def __init__(
        self,
        source: str,
        destination: str,
        drop_probability: float = 0.0,
        duplicate_probability: float = 0.0,
    ) -> None:
        super().__init__(source, destination)
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be within [0, 1]")
        if not 0.0 <= duplicate_probability <= 1.0:
            raise ValueError("duplicate_probability must be within [0, 1]")
        self.drop_probability = drop_probability
        self.duplicate_probability = duplicate_probability
        self.dropped = 0
        self.duplicated = 0

    def drop(self, message: Optional[M] = None, rng: Optional[random.Random] = None) -> M:
        """Remove one in-transit message without delivering it."""
        lost = super().receive(message, rng)
        self.dropped += 1
        return lost

    def duplicate(self, message: Optional[M] = None, rng: Optional[random.Random] = None) -> M:
        """Duplicate one in-transit message."""
        if not self._in_transit:
            raise LookupError("cannot duplicate on an empty channel")
        chooser = rng if rng is not None else random
        if message is None:
            chosen = self._in_transit[chooser.randrange(len(self._in_transit))]
        else:
            chosen = self._in_transit[self._index_of(message)]
        self._in_transit.append(chosen)
        self.duplicated += 1
        return chosen

    def maybe_interfere(self, rng: random.Random) -> Optional[str]:
        """Randomly drop or duplicate according to the configured
        probabilities.  Returns ``"drop"``, ``"duplicate"`` or ``None``."""
        if not self._in_transit:
            return None
        roll = rng.random()
        if roll < self.drop_probability:
            self.drop(rng=rng)
            return "drop"
        if roll < self.drop_probability + self.duplicate_probability:
            self.duplicate(rng=rng)
            return "duplicate"
        return None
