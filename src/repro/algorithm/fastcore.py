"""Raw-speed replay/ordering core: :class:`FastReplicaCore`.

A drop-in :class:`~repro.algorithm.replica.ReplicaCore` subclass that keeps
the *authoritative* state exactly as the base class does (``pending`` /
``rcvd`` / ``done[i]`` / ``stable[i]`` / ``labels`` — so ``snapshot()``, the
invariant checker and every harness keep working unchanged) but re-implements
the profiled hot paths with interned/array-backed mirrors:

* **Label interning** — a finite label ``(rank, replica)`` packs into the
  single int ``rank * len(replicas) + replica_index`` (replica indices
  assigned in sorted-id order), which is order-isomorphic to
  :func:`~repro.algorithm.labels.label_sort_key` (``INFINITY`` maps to
  ``float("inf")``, after every finite key).  ``done_order`` re-sorts on int
  keys instead of ``(int, int, str)`` tuples.
* **Operation-id slots + bitset knowledge mirrors** — each tracked id gets a
  dense slot; ``done[i]`` / ``stable[i]`` membership is mirrored into one
  Python big-int bitset per replica.  ``is_stable_everywhere`` is a bit test
  and ``compactable_prefix`` walks the order against the AND of the stable
  bitsets, replacing per-element ``all(x in stable[i] ...)`` set probes.
  Compaction folds trigger a dense re-index (:meth:`_rebuild_fast_state`),
  so slot space stays bounded by the unstable suffix.
* **Set-difference gossip merges** — ``receive_gossip`` merges via C-speed
  set differences, tests checkpoint coverage only on elements not already
  tracked (sound because compaction removes folded records from *every*
  set: tracked implies not covered), and promotes stability incrementally —
  only operations newly added to a peer's done set this merge can newly
  become done-everywhere, because ``done[self]`` always contains every other
  ``done[i]`` (gossip unions the incoming done set into both) so local
  ``do_it`` can never change the intersection.
* **Batched do/undone mirrors** — ``_undone`` (``rcvd - done_here``) and the
  done-id set are maintained incrementally so a ``do_all_ready`` sweep scans
  only candidates instead of rebuilding set differences and id sets per
  pass; ``repr``-based scheduling sort keys are cached per id.
* **O(1) fresh labels** — every label entering ``labels`` passes through
  ``fresh``/``observed`` (gossip merges note the maximum incoming rank), so
  the generator's next rank already exceeds every tracked label and
  ``do_it`` skips the existing-label scan entirely
  (:meth:`~repro.algorithm.labels.LabelGenerator.fresh_monotone`).  The
  first explicitly supplied label (harness-driven ``do_it(x, label)``)
  permanently falls back to the base path, which re-validates against the
  done set.
* **Epoch-tagged replay cache** — ``done_order`` bumps an order epoch on
  every full re-sort; while the epoch is unchanged the cached replay order
  is by construction a prefix of the current order (appends and consistent
  head-trims only), so ``_compute_value_incremental`` skips the per-response
  key rebuild and prefix comparison and just applies the new tail.

Equivalence argument: every override either computes the same value through
a cheaper representation (int sort keys, bit tests, set differences) or
skips work that is provably a no-op under a maintained invariant (fresh
label scan, coverage tests on tracked elements, full stability
intersection, replay prefix comparison).  The mirrors are rebuilt from the
authoritative sets whenever those are wholesale-replaced (compaction fold,
checkpoint adoption, volatile crash).  Lockstep seeded twins against
:class:`ReplicaCore` (responses, witness order, state digests) and the
conformance corpus enforce the argument in CI.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.algorithm.labels import Label, label_sort_key
from repro.algorithm.messages import GossipMessage, RequestMessage
from repro.algorithm.replica import ReplicaCore
from repro.common import INFINITY, OperationId, SpecificationError

#: Sort key of "no label yet": after every finite packed label key.
_INFINITE_KEY = float("inf")


def _iter_interval_diff(theirs, mine):
    """Yield the seqnos covered by *theirs* but not by *mine* (both sorted
    disjoint ``(lo, hi)`` interval sequences, as stored by ``OpIdSummary``)."""
    j = 0
    n = len(mine)
    for lo, hi in theirs:
        seq = lo
        while seq <= hi:
            while j < n and mine[j][1] < seq:
                j += 1
            if j < n and mine[j][0] <= seq:
                seq = mine[j][1] + 1
                continue
            end = hi if j >= n else min(hi, mine[j][0] - 1)
            for value in range(seq, end + 1):
                yield value
            seq = end + 1


class FastReplicaCore(ReplicaCore):
    """The raw-speed core.  Externally indistinguishable from
    :class:`ReplicaCore` (same responses, witness order, digests, message
    payloads); only the stats counters that count *work* (none do — the
    counters track algorithmic events, which are identical) and wall-clock
    time differ."""

    def __init__(self, replica_id, replica_ids, data_type) -> None:
        super().__init__(replica_id, replica_ids, data_type)
        ordered = sorted(self.replica_ids)
        #: Replica-id interning for packed label keys: indices follow the
        #: sorted id order so the packed int is order-isomorphic to the
        #: ``(rank, replica)`` lexicographic order.
        self._replica_index: Dict[str, int] = {r: i for i, r in enumerate(ordered)}
        self._rank_stride = len(ordered)
        self._my_index = self._replica_index[self.replica_id]
        #: Packed label keys parallel to ``_order_cache`` (valid while the
        #: order is clean) — the sorted backbone for bisect insertion.
        self._order_keys: List[int] = []
        #: Operation-id interning: id -> dense slot (bit position).
        self._slots: Dict[Any, int] = {}
        self._slot_count = 0
        #: Big-int bitset mirrors of ``done[i]`` / ``stable[i]``.
        self._done_bits: Dict[str, int] = {i: 0 for i in self.replica_ids}
        self._stable_bits: Dict[str, int] = {i: 0 for i in self.replica_ids}
        #: Mirrors of done-here (id -> descriptor) and of ``rcvd - done_here``.
        self._done_index: Dict[Any, Any] = {}
        self._undone: Set[Any] = set()
        #: Cached ``repr(id)`` scheduling sort keys.
        self._repr_cache: Dict[Any, str] = {}
        #: Bumped on every full ``done_order`` re-sort; while unchanged, the
        #: replay cache's order is a prefix of the current order.
        self._order_epoch = 0
        self._replay_epoch = -1
        #: Set once a label is supplied explicitly; disables the O(1)
        #: fresh-label path (the monotonicity invariant no longer holds).
        self._explicit_labels = False
        #: Frontier of the largest checkpoint coverage fully absorbed (every
        #: covered operation marked done+stable everywhere, or folded).  A
        #: nested coverage re-attached to later gossip is a no-op.
        self._absorbed_frontier: Optional[Label] = None

    # ------------------------------------------------------------- interning

    def _slot_for(self, op_id) -> int:
        slot = self._slots.get(op_id)
        if slot is None:
            slot = self._slot_count
            self._slots[op_id] = slot
            self._slot_count = slot + 1
        return slot

    def _bits_for(self, ops) -> int:
        """OR of the slot bits of *ops* (assigning fresh slots as needed) —
        one call per merged set instead of one ``_slot_for`` call per
        element."""
        slots = self._slots
        get = slots.get
        count = self._slot_count
        bits = 0
        for x in ops:
            op_id = x.id
            slot = get(op_id)
            if slot is None:
                slot = count
                slots[op_id] = slot
                count += 1
            bits |= 1 << slot
        self._slot_count = count
        return bits

    def _label_key(self, label) -> Any:
        """Packed int sort key, order-isomorphic to ``label_sort_key``."""
        if label is None or not isinstance(label, Label):
            return _INFINITE_KEY
        return label.rank * self._rank_stride + self._replica_index[label.replica]

    def _sort_repr(self, op_id) -> str:
        key = self._repr_cache.get(op_id)
        if key is None:
            key = repr(op_id)
            self._repr_cache[op_id] = key
        return key

    def _rebuild_fast_state(self) -> None:
        """Re-derive every mirror from the authoritative sets (after a
        compaction fold, a wholesale checkpoint adoption or a volatile
        crash).  Re-indexes the id slots densely so the bitsets stay sized
        by the unstable suffix, not the history."""
        universe = set(self.rcvd)
        for ops in self.done.values():
            universe |= ops
        self._slots = {}
        self._slot_count = 0
        slot_for = self._slot_for
        for x in universe:
            slot_for(x.id)
        slots = self._slots
        for i in self.replica_ids:
            bits = 0
            for x in self.done[i]:
                bits |= 1 << slots[x.id]
            self._done_bits[i] = bits
            bits = 0
            for x in self.stable[i]:
                bits |= 1 << slots[x.id]
            self._stable_bits[i] = bits
        done_here = self.done[self.replica_id]
        self._done_index = {x.id: x for x in done_here}
        self._undone = self.rcvd - done_here
        if self._repr_cache:
            self._repr_cache = {
                op_id: key for op_id, key in self._repr_cache.items() if op_id in slots
            }

    # ------------------------------------------------------------------ order

    def done_order(self) -> List:
        if self._order_dirty:
            labels = self.labels
            stride = self._rank_stride
            index = self._replica_index
            pairs: List[Tuple[Any, Any]] = []
            for x in self.done[self.replica_id]:
                label = labels.get(x.id)
                key = (
                    _INFINITE_KEY
                    if label is None
                    else label.rank * stride + index[label.replica]
                )
                pairs.append((key, x))
            pairs.sort(key=lambda pair: pair[0])
            self._order_cache = [x for _key, x in pairs]
            self._order_keys = [key for key, _x in pairs]
            self._order_dirty = False
            self._order_epoch += 1
            self.stats.done_order_sorts += 1
        return self._order_cache

    # ----------------------------------------------------------- request path

    def receive_request(self, message: RequestMessage) -> None:
        super().receive_request(message)
        operation = message.operation
        if operation in self.rcvd and operation not in self.done[self.replica_id]:
            self._undone.add(operation)

    def can_do(self, operation) -> bool:
        # Tracked implies not compacted, so membership in ``rcvd`` subsumes
        # the base class's coverage pre-check; a compacted operation is
        # never in ``rcvd`` and fails here exactly as it does there.
        if operation not in self.rcvd or operation in self.done[self.replica_id]:
            return False
        prev = operation.prev
        if not prev:
            return True
        done_ids = self._done_index
        checkpoint = self.checkpoint
        if checkpoint.count:
            covered = checkpoint.ids
            return all(p in done_ids or p in covered for p in prev)
        return all(p in done_ids for p in prev)

    def doable_operations(self) -> List:
        ready = [x for x in self._undone if self.can_do(x)]
        ready.sort(key=lambda x: self._sort_repr(x.id))
        return ready

    def do_it(self, operation, label: Optional[Label] = None) -> Label:
        if label is not None or self._explicit_labels:
            if label is not None:
                self._explicit_labels = True
            assigned = super().do_it(operation, label)
            self._register_done_here(operation)
            return assigned
        if not self.can_do(operation):
            raise SpecificationError(
                f"do_it precondition fails for {operation.id} at replica {self.replica_id}"
            )
        # Every tracked label passed through fresh()/observed(), so the
        # generator's next rank already exceeds all of them: the base
        # class's existing-label scan would find nothing to skip past.
        assigned = self._label_generator.fresh_monotone()
        self.done[self.replica_id].add(operation)
        self.labels[operation.id] = assigned
        self._note_label_change(operation.id)
        self._stable_storage[operation.id] = assigned
        if not self._order_dirty:
            # fresh_monotone's rank exceeds every tracked rank, so the new
            # packed key is strictly greatest: appending keeps both sorted.
            self._order_cache.append(operation)
            self._order_keys.append(assigned.rank * self._rank_stride + self._my_index)
        self._state_version += 1
        self.stats.do_it_count += 1
        self._register_done_here(operation)
        return assigned

    def _register_done_here(self, operation) -> None:
        self._done_index[operation.id] = operation
        self._undone.discard(operation)
        self._done_bits[self.replica_id] |= 1 << self._slot_for(operation.id)

    def is_compacted(self, op_id) -> bool:
        # Tracked implies not compacted, so a done-here operation (the common
        # case on the response path) skips the interval bisect entirely.
        if op_id in self._done_index:
            return False
        return self.checkpoint.covers(op_id)

    # ---------------------------------------------------------- response path

    def ready_responses(self) -> List:
        ready = [x for x in self.pending if self.response_ready(x)]
        ready.sort(key=lambda x: self._sort_repr(x.id))
        return ready

    def response_ready(self, operation) -> bool:
        # The common case — a tracked, done-here operation outside catch-up —
        # resolves on the done index and the stable bitsets alone.  Tracked
        # implies not compacted, so the base class's coverage branch cannot
        # apply; everything else (compacted values, catch-up gating, the
        # not-done cases) delegates so the semantics stay in one place.
        if operation not in self.pending:
            return False
        if operation.id in self._done_index:
            if self.catching_up():
                return super().response_ready(operation)
            if operation.strict and not self.is_stable_everywhere(operation):
                return False
            return True
        return super().response_ready(operation)

    def is_stable_everywhere(self, operation) -> bool:
        slot = self._slots.get(operation.id)
        if slot is None:
            # Never tracked since the last re-index: stable-everywhere iff
            # compacted (the base class's first branch).
            return self.checkpoint.covers(operation.id)
        mask = 1 << slot
        for bits in self._stable_bits.values():
            if not bits & mask:
                return False
        return True

    def _compute_value_incremental(self, operation) -> Any:
        order = self.done_order()  # may re-sort and bump the order epoch
        if self._replay_epoch != self._order_epoch:
            # The order may have been re-sorted since the cache was built:
            # run the base prefix-comparison path once, then re-enter the
            # epoch-tagged fast path.
            value = super()._compute_value_incremental(operation)
            self._replay_epoch = self._order_epoch
            return value
        # Same epoch: the cached order is a prefix of the current one (only
        # appends and consistent head-trims happened), so apply the tail.
        prefix = len(self._replay_order)
        values = self._replay_values
        if prefix < len(order):
            apply = self.data_type.apply
            states = self._replay_states
            replay_order = self._replay_order
            # The order is clean here (a re-sort would have bumped the epoch
            # into the fallback above), so the packed-key backbone is parallel
            # to it: reuse those keys instead of recomputing label sort keys.
            # The packed ints are order-isomorphic to the tuples the base
            # path stores; its prefix comparison treats a format mismatch as
            # a changed key, which only makes a post-re-sort replay start
            # earlier — never reuse an invalid checkpoint.
            keys = self._order_keys
            state = states[prefix - 1] if prefix else self.checkpoint.base_state
            for i in range(prefix, len(order)):
                x = order[i]
                state, reported = apply(state, x.op)
                replay_order.append((keys[i], x.id))
                states.append(state)
                values[x.id] = reported
            self.stats.value_applications += len(order) - prefix
        return values[operation.id]

    # ------------------------------------------------------------ gossip path

    def receive_gossip(self, message: GossipMessage) -> None:
        sender = message.sender
        me = self.replica_id
        if sender == me:
            raise SpecificationError("a replica does not gossip with itself")
        if sender not in self.done:
            raise SpecificationError(f"gossip from unknown replica {sender!r}")

        if message.checkpoint is not None:
            self._merge_checkpoint(message.checkpoint)
        elif message.advert is not None:
            self._consider_advert(sender, message.advert)

        if not self._delta_basis_trusted(message):
            # Stale-basis delta after our volatile crash — same refusal as the
            # base class: keep the self-contained attachments, drop the
            # payload, and do not acknowledge the seqno.
            self.stats.stale_basis_deltas_skipped += 1
            self._record_gossip_bookkeeping(message, merged=False)
            self.stats.gossip_received += 1
            self._post_merge()
            return

        received = message.received
        done = message.done | message.stable
        stable = message.stable
        checkpoint = self.checkpoint
        done_me = self.done[me]
        if checkpoint.count:
            # Compaction removed folded records from every set, so anything
            # already tracked is not covered: coverage only needs testing on
            # elements genuinely new here (few, in steady state).  ``done``
            # covers ``stable``'s candidates, and anything covered is absent
            # from both ``rcvd`` and ``done[me]``.
            maybe_new = (received - self.rcvd) | (done - done_me)
            if maybe_new:
                covers = checkpoint.covers
                blocked = {x for x in maybe_new if covers(x.id)}
                if blocked:
                    received = received - blocked
                    done = done - blocked
                    stable = stable - blocked

        done_before = len(done_me)
        bits_for = self._bits_for

        new_undone: Any = ()
        new_rcvd = received - self.rcvd
        if new_rcvd:
            self.rcvd |= new_rcvd

        done_sender = self.done[sender]
        new_done_sender = done - done_sender
        if new_done_sender:
            done_sender |= new_done_sender
            self._done_bits[sender] |= bits_for(new_done_sender)
        promote = set(new_done_sender)

        new_done_me = done - done_me
        if new_done_me:
            done_me |= new_done_me
            self._done_index.update((x.id, x) for x in new_done_me)
            self._done_bits[me] |= bits_for(new_done_me)
            self._undone -= new_done_me
        if new_rcvd:
            new_undone = new_rcvd - done_me
            self._undone |= new_undone

        for replica in self.replica_ids:
            if replica == me or replica == sender:
                continue
            target = self.done[replica]
            new_other = stable - target
            if new_other:
                target |= new_other
                self._done_bits[replica] |= bits_for(new_other)
                promote |= new_other

        # label_r <- min(label_r, L); note the maximum incoming rank so the
        # generator invariant behind fresh_monotone() is maintained (the
        # base class calls observed() per entry).  Lowered labels of
        # previously done operations are collected for the incremental
        # order-maintenance pass below.
        newly_done_ids = {x.id for x in new_done_me} if new_done_me else frozenset()
        reorders: List[Tuple[Label, Any]] = []
        if message.labels:
            labels = self.labels
            covers = checkpoint.covers if checkpoint.count else None
            done_ids = self._done_index
            labels_get = labels.get
            journal_versions = self._label_journal_versions
            journal_ids = self._label_journal_ids
            version = self._label_version
            max_rank = -1
            for op_id, label in message.labels.items():
                current = labels_get(op_id)
                if current is label:
                    # The sender re-sent the very object we already track (a
                    # merge stores the sender's instances, so steady-state
                    # re-deliveries hit this).  Its rank was counted toward
                    # the generator bound when it was first stored.
                    continue
                rank = label.rank
                if rank > max_rank:
                    max_rank = rank
                if current is None:
                    # A compacted operation's label was archived at the
                    # global minimum (Invariant 7.19); never re-track it.
                    if covers is None or not covers(op_id):
                        labels[op_id] = label
                        version += 1
                        journal_versions.append(version)
                        journal_ids.append(op_id)
                elif rank < current.rank or (
                    rank == current.rank and label.replica < current.replica
                ):
                    labels[op_id] = label
                    version += 1
                    journal_versions.append(version)
                    journal_ids.append(op_id)
                    if op_id in done_ids and op_id not in newly_done_ids:
                        reorders.append((current, op_id))
            self._label_version = version
            generator = self._label_generator
            if max_rank >= generator._next_rank:
                generator._next_rank = max_rank + 1

        # Instead of marking the order dirty (a full re-sort plus a full
        # replay-prefix comparison downstream), splice the changes into the
        # sorted order in place and truncate the replay cache at the first
        # affected position.  Label lowerings of *undone* operations do not
        # move anything in the order and need no bookkeeping at all.
        self._note_gossip_merge(reorders, new_done_me, new_undone)

        stable_sender = self.stable[sender]
        new_stable_sender = stable - stable_sender
        if new_stable_sender:
            stable_sender |= new_stable_sender
            self._stable_bits[sender] |= bits_for(new_stable_sender)
        stable_me = self.stable[me]
        new_stable_me = stable - stable_me
        if new_stable_me:
            stable_me |= new_stable_me
            self._stable_bits[me] |= bits_for(new_stable_me)

        # Incremental stability promotion: only operations newly added to a
        # peer's done set can newly enter the everywhere-done intersection
        # (done[me] contains every other done[i], so local do_it never
        # changes it; see the module docstring).
        promote -= stable_me
        if promote:
            newly = promote.intersection(*self.done.values())
            if newly:
                stable_me |= newly
                self._stable_bits[me] |= bits_for(newly)

        self._state_version += 1
        self._record_gossip_bookkeeping(message)
        self.stats.gossip_received += 1
        self._post_merge()

    def _note_gossip_merge(self, reorders, new_done_me, new_undone) -> None:
        """Hook: one gossip merge's order-affecting changes, called once per
        ``receive_gossip`` after the label merge.  *new_undone* are the
        operations that just entered ``rcvd`` without being done here (the
        batch kernel keeps its ready-queue on them); the default applies the
        order splices immediately."""
        if (reorders or new_done_me) and not self._order_dirty:
            self._apply_order_changes(reorders, new_done_me)

    def _apply_order_changes(self, reorders, new_done_me) -> Optional[int]:
        """Splice a gossip merge's order changes into the sorted done order.

        *reorders* are ``(old_label, op_id)`` pairs for already-done
        operations whose label was lowered; *new_done_me* are operations that
        just entered ``done[me]``.  Packed keys are unique (labels are
        globally unique and each done operation has exactly one), so
        ``bisect_left`` on the key backbone locates elements exactly.  The
        replay cache is truncated at the first affected position — entries
        below it were never moved, so it remains a prefix of the new order
        and the epoch-tagged fast path in ``_compute_value_incremental``
        stays valid (stale ``_replay_values`` entries beyond the truncation
        point are always overwritten by the tail replay before being read).

        Returns the first (lowest) order position touched, or ``None`` when
        the splice bailed out to a full re-sort (``_order_dirty``) — the
        batch kernel clamps its verified-solid-prefix marker with it.
        """
        keys = self._order_keys
        cache = self._order_cache
        labels = self.labels
        stride = self._rank_stride
        index = self._replica_index
        min_pos = len(self._replay_order)
        for old_label, op_id in reorders:
            old_key = old_label.rank * stride + index[old_label.replica]
            pos = bisect_left(keys, old_key)
            if pos >= len(keys) or cache[pos].id != op_id:  # pragma: no cover
                # Mirror out of sync (an op done without a tracked label):
                # fall back to a full re-sort; the epoch bump re-validates
                # the replay cache through the base prefix comparison.
                self._order_dirty = True
                return None
            x = cache.pop(pos)
            del keys[pos]
            if pos < min_pos:
                min_pos = pos
            label = labels[op_id]
            new_key = label.rank * stride + index[label.replica]
            pos = bisect_left(keys, new_key)
            keys.insert(pos, new_key)
            cache.insert(pos, x)
            if pos < min_pos:
                min_pos = pos
        for x in new_done_me:
            label = labels.get(x.id)
            if label is None:  # pragma: no cover - defensive
                # Done without a label (gossip never produces this): the
                # sorted backbone cannot place it; re-sort instead.
                self._order_dirty = True
                return None
            new_key = label.rank * stride + index[label.replica]
            pos = bisect_left(keys, new_key)
            keys.insert(pos, new_key)
            cache.insert(pos, x)
            if pos < min_pos:
                min_pos = pos
        if min_pos < len(self._replay_order):
            del self._replay_order[min_pos:]
            del self._replay_states[min_pos:]
        return min_pos

    def _promote_stable(self) -> None:
        # Direct calls (the fast receive_gossip promotes inline): keep the
        # bitset mirror in lockstep with the authoritative set.
        everywhere = set.intersection(*self.done.values())
        new = everywhere - self.stable[self.replica_id]
        if new:
            self.stable[self.replica_id] |= new
            bits = 0
            for x in new:
                bits |= 1 << self._slot_for(x.id)
            self._stable_bits[self.replica_id] |= bits

    def _mark_coverage_stable(self, tracked) -> None:
        if not tracked:
            return
        bits = 0
        slot_for = self._slot_for
        for x in tracked:
            bits |= 1 << slot_for(x.id)
        for i in self.replica_ids:
            self.done[i] |= tracked
            self.stable[i] |= tracked
            self._done_bits[i] |= bits
            self._stable_bits[i] |= bits
        self._state_version += 1

    # --------------------------------------------------- checkpoint compaction

    def compactable_prefix(self) -> List:
        order = self.done_order()
        if not order:
            return []
        all_stable = -1
        for bits in self._stable_bits.values():
            all_stable &= bits
            if not all_stable:
                return []
        pending = self.pending
        slots = self._slots
        prefix: List = []
        for x in order:
            if x in pending or not (all_stable >> slots[x.id]) & 1:
                break
            prefix.append(x)
        return prefix

    def _after_compaction(self, removed) -> None:
        # The base class already head-trimmed ``_order_cache`` by the folded
        # prefix; trim the key backbone to match (the prefix property of the
        # replay cache is preserved — ``_rebase_replay_cache`` trimmed it by
        # the same count).
        count = len(removed)
        if not self._order_dirty:
            if len(self._order_keys) == len(self._order_cache) + count:
                del self._order_keys[:count]
            else:  # pragma: no cover - defensive
                self._order_dirty = True
        # Retire the folded operations' slots and clear their bits instead
        # of rebuilding every mirror; re-index densely only once the slot
        # space is mostly holes, keeping bitset width bounded by a small
        # multiple of the live unstable suffix.
        mask = 0
        slots = self._slots
        done_index = self._done_index
        repr_cache = self._repr_cache
        for x in removed:
            slot = slots.pop(x.id, None)
            if slot is not None:
                mask |= 1 << slot
            done_index.pop(x.id, None)
            repr_cache.pop(x.id, None)
        if mask:
            keep = ~mask
            for i in self.replica_ids:
                self._done_bits[i] &= keep
                self._stable_bits[i] &= keep
        if self._slot_count > 128 and self._slot_count > 4 * len(slots):
            self._rebuild_fast_state()

    def _coverage_position(self, coverage):
        # Absorbed memo: once a coverage with this (or a larger) frontier has
        # been fully absorbed — every covered operation marked done+stable
        # everywhere or folded into our own checkpoint — a nested coverage
        # conveys nothing new.  The stable prefix is totally ordered, so an
        # equal-or-smaller frontier means an equal-or-smaller id set; both
        # callers (`_merge_checkpoint`, `_consider_advert`/`_refresh_await`)
        # treat ``(set(), 0)`` as already absorbed (`_absorb_coverage`
        # accepts an empty tracked set without re-verifying the order).
        frontier = coverage.frontier
        absorbed = self._absorbed_frontier
        if absorbed is not None and label_sort_key(frontier) <= label_sort_key(absorbed):
            return set(), 0
        # The base class scans every done-here operation against the incoming
        # coverage — per attached checkpoint, on every gossip message.  In
        # steady state the incoming summary covers only slightly more than our
        # own checkpoint, so enumerate that interval difference instead and
        # probe the done index: tracked operations are never covered by our
        # own checkpoint (compaction drops their records), so every done-here
        # operation the coverage covers lies in the difference.
        ours = self.checkpoint.ids
        cov_ids = coverage.ids
        done_index = self._done_index
        diff_count = coverage.count - ours.intersection_count(cov_ids)
        if diff_count > 2 * len(done_index) + 64 or (
            ours.count and not ours.issubset(cov_ids)
        ):
            # Far behind (crash recovery) or non-nested summaries: the base
            # scan over done-here is the cheaper/safer path.
            tracked, missing = super()._coverage_position(coverage)
        else:
            tracked = set()
            missing = 0
            ours_ranges = ours.ranges
            for client, theirs in cov_ids.ranges.items():
                mine = ours_ranges.get(client, ())
                for seqno in _iter_interval_diff(theirs, mine):
                    x = done_index.get(OperationId(client=client, seqno=seqno))
                    if x is not None:
                        tracked.add(x)
                    else:
                        missing += 1
        return tracked, missing

    def _note_coverage_absorbed(self, frontier) -> None:
        # Memoize only once the absorption actually happened — a
        # zero-missing scan can still be refused by the fold-order check
        # (`_absorb_coverage`), and a refused coverage must be re-examined
        # by every subsequent advert until the body is adopted.
        self._absorbed_frontier = frontier

    def _on_checkpoint_adopted(self) -> None:
        self._absorbed_frontier = None
        self._rebuild_fast_state()

    def _on_crash(self) -> None:
        # The marking knowledge behind the absorbed memo was volatile.
        self._absorbed_frontier = None
        self._repr_cache = {}
        self._rebuild_fast_state()


class FastIncrementalReplicaCore(FastReplicaCore):
    """The fast core with the incremental value-replay cache switched on —
    the pairing every fast-path benchmark configuration uses."""

    def __init__(self, replica_id, replica_ids, data_type) -> None:
        super().__init__(replica_id, replica_ids, data_type)
        self.enable_incremental_replay()
