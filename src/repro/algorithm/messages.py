"""Message types exchanged by the algorithm (Section 6.1).

Three message sets are used:

* ``M_req``  — ``("request", x)`` from a front end to a replica;
* ``M_resp`` — ``("response", x, v)`` from a replica to a front end;
* ``M_gossip`` — ``("gossip", R, D, L, S)`` between replicas, where ``R`` is
  the sender's received set, ``D`` its done set, ``L`` its label function and
  ``S`` its stable set.

Gossip label functions are represented sparsely: identifiers absent from
``labels`` implicitly map to ``INFINITY`` ("no label seen").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Mapping

from repro.algorithm.labels import Label, LabelOrInfinity
from repro.common import INFINITY, OperationId
from repro.core.operations import OperationDescriptor


@dataclass(frozen=True)
class RequestMessage:
    """A ``("request", x)`` message from a front end to a replica."""

    operation: OperationDescriptor

    @property
    def kind(self) -> str:
        return "request"


@dataclass(frozen=True)
class ResponseMessage:
    """A ``("response", x, v)`` message from a replica to a front end."""

    operation: OperationDescriptor
    value: Any

    @property
    def kind(self) -> str:
        return "response"


@dataclass
class GossipMessage:
    """A ``("gossip", R, D, L, S)`` message between replicas.

    ``sender`` is recorded for routing and for the per-sender bookkeeping the
    receiving replica performs (``done_r[r']``, ``stable_r[r']``).
    """

    sender: str
    received: FrozenSet[OperationDescriptor]
    done: FrozenSet[OperationDescriptor]
    labels: Dict[OperationId, Label] = field(default_factory=dict)
    stable: FrozenSet[OperationDescriptor] = field(default_factory=frozenset)

    @property
    def kind(self) -> str:
        return "gossip"

    def label_of(self, op_id: OperationId) -> LabelOrInfinity:
        """``L_m(id)`` with the sparse-infinity convention."""
        return self.labels.get(op_id, INFINITY)

    def size_estimate(self) -> int:
        """A crude size metric (number of operation references carried),
        used by the message-overhead benchmark (E8)."""
        return len(self.received) + len(self.done) + len(self.labels) + len(self.stable)


def incremental_gossip(previous: GossipMessage, current: GossipMessage) -> GossipMessage:
    """The Section 10.4 optimization: send only what changed since the last
    gossip to the same destination (valid over reliable FIFO channels).

    The receiver must union rather than replace, which
    :meth:`repro.algorithm.replica.ReplicaCore.receive_gossip` already does,
    so incremental messages are drop-in compatible.
    """
    return GossipMessage(
        sender=current.sender,
        received=current.received - previous.received,
        done=current.done - previous.done,
        labels={
            op_id: label
            for op_id, label in current.labels.items()
            if previous.labels.get(op_id) != label
        },
        stable=current.stable - previous.stable,
    )
