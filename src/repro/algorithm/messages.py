"""Message types exchanged by the algorithm (Section 6.1).

Three message sets are used:

* ``M_req``  — ``("request", x)`` from a front end to a replica;
* ``M_resp`` — ``("response", x, v)`` from a replica to a front end;
* ``M_gossip`` — ``("gossip", R, D, L, S)`` between replicas, where ``R`` is
  the sender's received set, ``D`` its done set, ``L`` its label function and
  ``S`` its stable set.

Gossip label functions are represented sparsely: identifiers absent from
``labels`` implicitly map to ``INFINITY`` ("no label seen").

A gossip message may be *full* (the paper's message: the sender's entire
knowledge) or a *delta* (the Section 10.4 optimization): only the part of the
sender's knowledge not already acknowledged by the destination, plus the
``epoch``/``seqno``/``ack`` bookkeeping described in
:mod:`repro.algorithm.delta`.  A delta message also keeps a (non-transmitted)
reference to the acknowledged ``basis`` snapshot it was computed against, so
that the invariant checkers and the derived ``mc_r(m)`` constraints can be
evaluated on the *effective* message ``delta ∪ basis`` — the knowledge the
message actually conveys, which the receiver reconstructs for free because it
already holds the basis.

With advert/pull gossip (:meth:`repro.algorithm.replica.ReplicaCore.
configure_advert_gossip`) the gossip message carries a compact
:class:`~repro.algorithm.checkpoint.CheckpointAdvert` instead of the
checkpoint body, and two further replica-to-replica message types complete
the protocol: a :class:`PullRequestMessage` from a peer that detected it is
behind the advertised frontier, and the :class:`CheckpointTransferMessage`
chunks that answer it.  They travel on the same gossip channels; harnesses
dispatch on ``message.kind``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional

from repro.algorithm.checkpoint import Checkpoint, CheckpointAdvert, OpIdSummary
from repro.algorithm.delta import GossipSnapshot
from repro.algorithm.labels import Label, LabelOrInfinity
from repro.common import INFINITY, OperationId
from repro.core.operations import OperationDescriptor


@dataclass(frozen=True)
class RequestMessage:
    """A ``("request", x)`` message from a front end to a replica."""

    operation: OperationDescriptor

    @property
    def kind(self) -> str:
        return "request"


@dataclass(frozen=True)
class ResponseMessage:
    """A ``("response", x, v)`` message from a replica to a front end.

    ``stale`` marks the NACK variant: the replica compacted the operation and
    its retained value has aged out of the ledger (finite
    ``CompactionPolicy.value_retention``), so this replica can provably never
    answer the retransmitted request.  ``sender`` identifies the NACKing
    replica — a front end declares the operation failed only once *every*
    replica has NACKed it (eviction of a compacted value is permanent, so
    the set of NACKs can only grow).
    """

    operation: OperationDescriptor
    value: Any
    stale: bool = False
    sender: Optional[str] = None

    @property
    def kind(self) -> str:
        return "response"


@dataclass
class GossipMessage:
    """A ``("gossip", R, D, L, S)`` message between replicas.

    ``sender`` is recorded for routing and for the per-sender bookkeeping the
    receiving replica performs (``done_r[r']``, ``stable_r[r']``).

    The remaining fields support delta gossip and are absent (``None`` /
    ``False``) on the paper's plain full-state messages:

    * ``epoch`` — the sender's incarnation number (bumped on a crash with
      volatile memory; kept in stable storage);
    * ``stream`` / ``seqno`` — per-destination stream id and send sequence
      number within it (the stream restarts when the sender abandons it,
      e.g. after observing the destination's crash);
    * ``ack`` / ``ack_epoch`` / ``ack_stream`` — cumulative acknowledgement
      of the destination's own gossip: every message ``1..ack`` of the
      destination's incarnation ``ack_epoch``, stream ``ack_stream``, has
      been received (or was subsumed by a received full-state message);
    * ``is_delta`` — whether ``received``/``done``/``labels``/``stable`` hold
      only the difference against the acknowledged ``basis``;
    * ``basis`` — sender-side reference to the acknowledged snapshot the
      delta was computed against.  It is **not** part of the wire payload
      (the receiver provably already holds it); it exists so invariants and
      message constraints can be checked against the effective knowledge;
    * ``checkpoint`` — the sender's compaction checkpoint
      (:class:`~repro.algorithm.checkpoint.Checkpoint`), attached to
      full-state messages and to deltas whose frontier advanced past the
      acked basis.  It is the catch-up payload for a peer behind the
      frontier: the payload sets above cover only the suffix, and a receiver
      missing part of the compacted prefix adopts the checkpoint wholesale
      instead of a full-history replay.
    * ``advert`` — the advert/pull replacement for ``checkpoint``: a compact
      :class:`~repro.algorithm.checkpoint.CheckpointAdvert` (frontier,
      digest, interval summary) attached under the same conditions.  A
      receiver that is behind pulls the body on demand instead of having it
      shipped eagerly, so the steady-state payload stays bounded.  At most
      one of ``checkpoint`` / ``advert`` is set.
    * ``sent_at`` — the sender's *local-clock* send timestamp, stamped by the
      transport.  Purely observational (lag metrics, the clock-skew
      adversary): the algorithm is asynchronous and never reads it, so a
      skewed or absent timestamp cannot affect correctness.
    """

    sender: str
    received: FrozenSet[OperationDescriptor]
    done: FrozenSet[OperationDescriptor]
    labels: Dict[OperationId, Label] = field(default_factory=dict)
    stable: FrozenSet[OperationDescriptor] = field(default_factory=frozenset)
    epoch: int = 0
    stream: int = 0
    seqno: Optional[int] = None
    ack: Optional[int] = None
    ack_epoch: Optional[int] = None
    ack_stream: Optional[int] = None
    is_delta: bool = False
    basis: Optional[GossipSnapshot] = None
    checkpoint: Optional[Checkpoint] = None
    advert: Optional[CheckpointAdvert] = None
    sent_at: Optional[float] = None

    @property
    def kind(self) -> str:
        return "gossip"

    def label_of(self, op_id: OperationId) -> LabelOrInfinity:
        """``L_m(id)`` with the sparse-infinity convention.

        For a delta message this is the *effective* label: the delta's entry
        when present (it is never larger than the basis's), otherwise the
        basis's entry — i.e. exactly the label a full message sent at the
        same instant would have carried.
        """
        label = self.labels.get(op_id)
        if label is not None:
            return label
        if self.basis is not None:
            return self.basis.labels.get(op_id, INFINITY)
        return INFINITY

    # -- effective (delta ∪ basis) views --------------------------------------

    def effective_received(self) -> FrozenSet[OperationDescriptor]:
        """``R`` of the equivalent full message."""
        if self.basis is None:
            return self.received
        return self.received | self.basis.received

    def effective_done(self) -> FrozenSet[OperationDescriptor]:
        """``D`` of the equivalent full message."""
        if self.basis is None:
            return self.done
        return self.done | self.basis.done

    def effective_stable(self) -> FrozenSet[OperationDescriptor]:
        """``S`` of the equivalent full message."""
        if self.basis is None:
            return self.stable
        return self.stable | self.basis.stable

    def effective_labels(self) -> Dict[OperationId, Label]:
        """``L`` of the equivalent full message (basis overridden by delta)."""
        if self.basis is None:
            return dict(self.labels)
        merged = dict(self.basis.labels)
        merged.update(self.labels)
        return merged

    def effective_checkpoint(self) -> Optional[Checkpoint]:
        """The checkpoint *body* this message conveys: the attached one (sent
        when the frontier advanced) or, for a delta, the acknowledged
        basis's — the receiver provably already holds that one.  An advert is
        deliberately **not** a body: it becomes knowledge at the receiver
        only once the pull it triggers completes, so advert-mode messages
        convey at most the basis's checkpoint here."""
        if self.checkpoint is not None:
            return self.checkpoint
        if self.basis is not None:
            return self.basis.checkpoint
        return None

    def coverage(self):
        """The checkpoint *coverage* attached to this message — the body or
        the advert, whichever travels (both expose ``covers`` / ``frontier``
        / ``count``).  Used by structural sender-side invariant checks; for
        receiver-side effective-knowledge evaluation use
        :meth:`effective_checkpoint`, which excludes adverts."""
        return self.checkpoint if self.checkpoint is not None else self.advert

    def size_estimate(self) -> int:
        """A crude wire-size metric (number of operation references carried),
        used by the message-overhead benchmarks (E8/E11).  Counts only
        transmitted fields — a delta's basis is never transmitted; an
        attached checkpoint body is (one state blob plus its interval summary
        and retained values), while an advert costs only its frontier, digest
        and interval summary."""
        size = len(self.received) + len(self.done) + len(self.labels) + len(self.stable)
        if self.checkpoint is not None:
            size += self.checkpoint.wire_estimate()
        if self.advert is not None:
            size += self.advert.wire_estimate()
        return size


@dataclass(frozen=True)
class PullRequestMessage:
    """A catch-up request from a replica that received a
    :class:`~repro.algorithm.checkpoint.CheckpointAdvert` covering
    identifiers it neither tracks nor has compacted.

    ``requester`` is the behind replica, ``target`` the advertiser it pulls
    from.  ``digest`` / ``frontier`` echo the advert that triggered the pull;
    the target answers with its *current* checkpoint (which is nested over
    the advertised one — compaction only ever extends the frozen prefix), so
    a digest that has moved on by the time the pull arrives is not an error.
    ``have_frontier`` is the requester's own frontier, carried for
    diagnostics and symmetry with real catch-up protocols.
    """

    requester: str
    target: str
    digest: str
    frontier: Label
    have_frontier: Optional[Label] = None

    @property
    def kind(self) -> str:
        return "pull"

    def size_estimate(self) -> int:
        """Pulls are constant-size control messages."""
        return 3


@dataclass(frozen=True)
class CheckpointTransferMessage:
    """One chunk of a checkpoint body answering a pull request.

    The retained-value ledger is split into label-order slices (contiguous
    client-interval ranges of the folded identifiers) of at most the
    sender's configured chunk size; every chunk repeats the transfer
    identity (``digest``, ``frontier``, ``ids``, ``chunk_count``) so chunks
    can arrive in any order and partial transfers are resumable across
    re-pulls, and only the **final** assembly needs the ``base_state`` blob,
    carried by the last chunk (``chunk_index == chunk_count - 1``).

    ``epoch`` is the sender's incarnation at send time: a receiver that
    observes a newer epoch from the sender discards its partial assembly
    (the retry path re-pulls from the recovered sender, whose persisted
    checkpoint survives the crash).
    """

    sender: str
    requester: str
    epoch: int
    digest: str
    frontier: Label
    ids: OpIdSummary
    values_chunk: Dict[OperationId, Any]
    chunk_index: int
    chunk_count: int
    base_state: Any = None
    #: The checkpoint's chained fold-order digest, repeated on every chunk
    #: like the rest of the transfer identity (the assembled checkpoint's
    #: content digest covers it, so a corrupted value is rejected with the
    #: body).
    order_digest: str = ""

    @property
    def kind(self) -> str:
        return "transfer"

    @property
    def carries_state(self) -> bool:
        return self.chunk_index == self.chunk_count - 1

    def size_estimate(self) -> int:
        """Wire-size contribution of one chunk: its value slice, plus the
        interval summary repeated for identity, plus the state blob on the
        final chunk."""
        size = 1 + self.ids.interval_count + len(self.values_chunk)
        if self.carries_state:
            size += 1
        return size


def checkpoint_transfers(
    checkpoint: Checkpoint,
    sender: str,
    requester: str,
    epoch: int,
    chunk: Optional[int] = None,
) -> List[CheckpointTransferMessage]:
    """Build the transfer chunks answering a pull with *checkpoint*.

    With ``chunk=None`` the transfer is a single message; otherwise the
    retained-value ledger is streamed in slices of at most *chunk* values so
    a recovering replica catches up from a sequence of bounded messages
    instead of one giant one.
    """
    slices = checkpoint.value_chunks(chunk)
    digest = checkpoint.digest()
    return [
        CheckpointTransferMessage(
            sender=sender,
            requester=requester,
            epoch=epoch,
            digest=digest,
            frontier=checkpoint.frontier,
            ids=checkpoint.ids,
            values_chunk=values,
            chunk_index=index,
            chunk_count=len(slices),
            base_state=checkpoint.base_state if index == len(slices) - 1 else None,
            order_digest=checkpoint.order_digest,
        )
        for index, values in enumerate(slices)
    ]


def incremental_gossip(previous: GossipMessage, current: GossipMessage) -> GossipMessage:
    """The textbook form of the Section 10.4 optimization: send only what
    changed since the last gossip to the same destination (valid over
    reliable FIFO channels).

    The receiver must union rather than replace, which
    :meth:`repro.algorithm.replica.ReplicaCore.receive_gossip` already does,
    so incremental messages are drop-in compatible.  With compaction, an
    operation folded between the two messages leaves *current*'s sets
    entirely; its stability travels via the carried-over checkpoint instead
    of a set difference.  The production path in
    :meth:`repro.algorithm.replica.ReplicaCore.make_gossip` instead computes
    deltas against *acknowledged* state (see :mod:`repro.algorithm.delta`),
    which stays correct over the paper's reorderable, lossy channels.
    """
    return GossipMessage(
        sender=current.sender,
        received=current.received - previous.received,
        done=current.done - previous.done,
        labels={
            op_id: label
            for op_id, label in current.labels.items()
            if previous.labels.get(op_id) != label
        },
        stable=current.stable - previous.stable,
        is_delta=True,
        checkpoint=current.checkpoint,
        advert=current.advert,
    )
