"""Operation labels (Section 6.3).

Labels are taken from a well-ordered set ``L`` partitioned into per-replica
sets ``L_r``; replica ``r`` only ever *generates* labels from ``L_r``, which
makes generated labels globally unique.  For any finite set of labels and any
replica ``r`` there is a label in ``L_r`` greater than all of them, so a
replica can never get stuck.

We realise ``L`` as pairs ``(rank, replica_id)`` ordered lexicographically
(rank first, replica identifier as tie-breaker); ``L_r`` is the set of pairs
whose second component is ``r``.  The paper's ``oo`` ("no label yet") is the
shared :data:`repro.common.INFINITY` object, which compares greater than
every label.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Iterable, Optional, Union

from repro.common import INFINITY, Infinity

LabelOrInfinity = Union["Label", Infinity]


@total_ordering
@dataclass(frozen=True)
class Label:
    """A label ``(rank, replica)`` in ``L_replica``."""

    rank: int
    replica: str

    def __post_init__(self) -> None:
        # Hot-path hash cache: identical value to the generated dataclass
        # __hash__, computed once at construction (see FastReplicaCore).
        object.__setattr__(self, "_hash", hash((self.rank, self.replica)))

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: object) -> bool:
        if other is INFINITY:
            return True
        if not isinstance(other, Label):
            return NotImplemented
        return (self.rank, self.replica) < (other.rank, other.replica)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.rank}@{self.replica}"


def label_min(a: LabelOrInfinity, b: LabelOrInfinity) -> LabelOrInfinity:
    """Pointwise minimum used when merging gossip (``min(label_r, L_m)``)."""
    if a is INFINITY:
        return b
    if b is INFINITY:
        return a
    return a if a <= b else b


def label_sort_key(label: LabelOrInfinity):
    """A sort key placing finite labels in order and ``INFINITY`` last."""
    if label is INFINITY:
        return (1, 0, "")
    return (0, label.rank, label.replica)


class LabelGenerator:
    """Generates fresh labels from ``L_r`` for one replica.

    Every generated label is strictly greater than all labels passed to the
    previous :meth:`fresh` calls' ``greater_than`` arguments and strictly
    greater than every label generated before, matching the ``do_it``
    precondition (the new label must exceed the label of every operation
    already done at the replica).
    """

    def __init__(self, replica: str, start_rank: int = 0) -> None:
        self.replica = replica
        self._next_rank = start_rank

    def fresh(self, greater_than: Iterable[LabelOrInfinity] = ()) -> Label:
        """A new label in ``L_replica`` greater than everything in
        *greater_than* (``INFINITY`` entries are ignored — they mean "no
        label yet", and new labels need not exceed them)."""
        floor = self._next_rank
        for label in greater_than:
            if label is INFINITY or label is None:
                continue
            if label.rank >= floor:
                floor = label.rank + 1
        label = Label(rank=floor, replica=self.replica)
        self._next_rank = floor + 1
        return label

    def fresh_monotone(self) -> Label:
        """A new label above everything ever generated *or observed*.

        Equivalent to ``fresh(existing)`` whenever every label in *existing*
        has previously passed through :meth:`fresh` or :meth:`observed` —
        then ``_next_rank`` already exceeds every existing rank and the scan
        in :meth:`fresh` is a no-op.  :class:`~repro.algorithm.fastcore.
        FastReplicaCore` maintains exactly this invariant and uses this
        constant-time path on ``do_it``.
        """
        label = Label(rank=self._next_rank, replica=self.replica)
        self._next_rank += 1
        return label

    def observed(self, label: Optional[LabelOrInfinity]) -> None:
        """Note a label seen via gossip so future local labels stay above it.

        This is not required for correctness (``fresh`` already takes the
        labels of done operations into account) but keeps locally generated
        labels monotone with respect to everything the replica has seen,
        which reduces reordering in practice.
        """
        if label is None or label is INFINITY:
            return
        if isinstance(label, Label) and label.rank >= self._next_rank:
            self._next_rank = label.rank + 1
