"""Struct-of-arrays batch replay kernel: :class:`BatchReplicaCore`.

A drop-in :class:`~repro.algorithm.fastcore.FastReplicaCore` subclass (and
therefore a :class:`~repro.algorithm.replica.ReplicaCore` — the
authoritative ``pending`` / ``rcvd`` / ``done[i]`` / ``stable[i]`` /
``labels`` sets stay exactly as the base class keeps them) that batches the
remaining per-element hot loops into array-level sweeps.  Selected with
``batch_replay=True`` on :class:`~repro.config.ReplicaConfig` (which
requires ``fast_core=True``: the kernel extends the fast core's interned
mirrors rather than replacing them).

On top of the fast core's packed-int label keys, id slots and big-int
bitset knowledge rows, the kernel adds:

* **Coalesced gossip ingestion** — :meth:`receive_gossip_batch` merges a
  whole wakeup's worth of gossip messages with the order splices *deferred*:
  each message runs the normal authoritative merge (per-message seqno/ack
  bookkeeping, stats, attachments and ``_post_merge`` exactly as the
  sequential path), but the sorted-order insertions and replay-cache
  truncations accumulate in batch buffers (``_deferred_done`` /
  ``_deferred_reorders``) and are applied as one splice pass when the batch
  ends — or earlier, the moment anything reads the order (``done_order``
  flushes first; with compaction enabled every per-message ``_post_merge``
  flushes, preserving fold-boundary timing exactly).  Deferral is sound
  because nothing reads the order between the merges of one batch, and the
  buffers dedupe: an operation that entered ``done`` this batch is inserted
  once under its final label; a label lowered twice records only the oldest
  key (the one still in the backbone).
* **Verified-solid-prefix memo for compaction scans** — ``_solid`` counts
  the leading done-order positions already verified stable-everywhere and
  not pending, so the per-gossip ``compactable_prefix`` walk resumes where
  the previous one stopped instead of re-walking the whole prefix.  The memo
  is clamped by the first order position a splice touches (labels of
  stable-everywhere operations are normally final, but the clamp makes no
  assumption), reset by re-sorts, folds, rebuilds, and by the one event that
  can re-block a solid position: a retransmitted request re-entering
  ``pending`` for an already-done operation.
* **Exact pending bitset** — ``_pending_bits`` mirrors the slots of tracked
  pending operations so the solid-prefix walk tests pending membership with
  a bit probe instead of a set lookup.  Exactness matters (a stale bit would
  delay a fold, changing retention-eviction timing and with it NACK
  behaviour), so every ``pending`` mutation site maintains it and the
  wholesale-replacement sites (fold, adoption, crash) recompute it.
* **Prev-dependency ready queue** — ``_unmet`` (per-operation count of
  prevs not yet done-or-compacted), ``_waiters`` (prev id → operations
  waiting on it) and ``_ready`` (tracked undone operations with no unmet
  prevs).  ``doable_operations`` filters the ready set through the
  authoritative ``can_do`` instead of re-scanning every undone operation per
  ``do_all_ready`` sweep; completions drain waiter lists incrementally.  The
  queue is a *superset hint* — false positives are filtered by ``can_do``,
  and the maintenance sites are chosen so false negatives cannot occur (the
  wholesale-replacement sites rebuild it).
* **Int-keyed replay prefix comparison** — on an order-epoch mismatch the
  fast core falls back to the base path, which rebuilds per-operation
  ``label_sort_key`` tuples (two dict probes per replayed position).  The
  kernel compares the cached ``(packed key, id)`` rows directly against the
  freshly re-sorted key backbone: packed keys are injective on labels, so
  the longest-matching prefix is identical, without a single hash.
* **Numpy-optional bulk re-sort** — the full ``done_order`` rebuild runs
  through :func:`repro.algorithm.batchops.argsort_keys`, which vectorizes
  via numpy when available and provably exact (all finite packed keys
  ``<= 2**53``) and otherwise uses the same stable pure-Python sort as the
  fast core.

Equivalence argument: every structure above is either a deferred form of
work the fast core does eagerly (the splice buffers — applied before any
reader), a memo of a predicate that is monotone between the events that
reset it (the solid prefix), an exact mirror maintained at every mutation
site and recomputed at every wholesale replacement (the pending bitset), or
a superset hint filtered through the authoritative predicate (the ready
queue).  Lockstep seeded twins against :class:`FastReplicaCore` across the
config matrix, the conformance corpus on both runtimes and the fuzz
oracles enforce the argument in CI (``tests/test_batchcore.py``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.algorithm.batchops import argsort_keys
from repro.algorithm.fastcore import _INFINITE_KEY, FastReplicaCore
from repro.algorithm.labels import Label
from repro.algorithm.messages import GossipMessage, RequestMessage, ResponseMessage
from repro.algorithm.replica import ReplicaCore


def core_factory(config) -> type:
    """The replica-core class a :class:`~repro.config.ReplicaConfig`
    selects: base, fast, or the batch kernel (``batch_replay`` implies
    ``fast_core`` — the config validates the combination)."""
    if config.batch_replay:
        return BatchReplicaCore
    if config.fast_core:
        return FastReplicaCore
    return ReplicaCore


class BatchReplicaCore(FastReplicaCore):
    """The batch kernel.  Externally indistinguishable from
    :class:`FastReplicaCore` (same responses, witness order, digests and
    message payloads); only wall-clock time and the stats counters that
    measure *avoided* work (``value_applications``) differ."""

    def __init__(self, replica_id, replica_ids, data_type) -> None:
        super().__init__(replica_id, replica_ids, data_type)
        #: Depth of the active ``receive_gossip_batch`` (0 = not batching).
        self._batch_depth = 0
        #: Batch buffers: op id -> descriptor newly done this batch, and
        #: op id -> the *oldest* superseded label of a lowered entry (the
        #: key still present in the sorted backbone).
        self._deferred_done: Dict[Any, Any] = {}
        self._deferred_reorders: Dict[Any, Label] = {}
        #: Exact bitset of the slots of tracked pending operations.
        self._pending_bits = 0
        #: Leading done-order positions verified stable-everywhere and not
        #: pending by a previous ``compactable_prefix`` walk.
        self._solid = 0
        #: Ready queue: unmet-prev counts, prev id -> waiting descriptors,
        #: and the tracked undone operations with no unmet prevs.
        self._unmet: Dict[Any, int] = {}
        self._waiters: Dict[Any, List[Any]] = {}
        self._ready: Dict[Any, Any] = {}

    # ------------------------------------------------------------ ready queue

    def _track_undone(self, operation) -> None:
        """Register a newly tracked undone operation with the ready queue."""
        op_id = operation.id
        if op_id in self._unmet or op_id in self._ready or op_id in self._done_index:
            return
        done_index = self._done_index
        unmet = 0
        for prev in set(operation.prev):
            if prev in done_index or self.is_compacted(prev):
                continue
            self._waiters.setdefault(prev, []).append(operation)
            unmet += 1
        if unmet:
            self._unmet[op_id] = unmet
        else:
            self._ready[op_id] = operation

    def _complete_op(self, operation) -> None:
        """An operation became done here: retire its queue entry and release
        its waiters (stale waiter references — operations that completed
        through gossip before their prevs — skip via the ``_unmet`` guard)."""
        op_id = operation.id
        self._unmet.pop(op_id, None)
        self._ready.pop(op_id, None)
        waiters = self._waiters.pop(op_id, None)
        if waiters:
            unmet = self._unmet
            ready = self._ready
            for waiter in waiters:
                count = unmet.get(waiter.id)
                if count is None:
                    continue
                if count == 1:
                    del unmet[waiter.id]
                    ready[waiter.id] = waiter
                else:
                    unmet[waiter.id] = count - 1

    def doable_operations(self) -> List:
        # The ready set over-approximates the doable set (can_do prunes the
        # rest), and cannot under-approximate it: every transition that makes
        # can_do true — tracking, a prev done locally or via gossip, a prev
        # compacted (adoption rebuild) — updates the queue.
        if not self._ready:
            return []
        ready = [x for x in self._ready.values() if self.can_do(x)]
        ready.sort(key=lambda x: self._sort_repr(x.id))
        return ready

    def _register_done_here(self, operation) -> None:
        super()._register_done_here(operation)
        self._complete_op(operation)

    # ----------------------------------------------------------- request path

    def receive_request(self, message: RequestMessage) -> None:
        super().receive_request(message)
        operation = message.operation
        if operation in self.pending:
            if operation.id in self._done_index:
                # Retransmit of an already-done operation: it re-enters
                # pending, so a previously verified-solid position may block
                # again — the one event that shrinks the solid prefix.
                self._pending_bits |= 1 << self._slots[operation.id]
                self._solid = 0
            elif operation in self.rcvd:
                self._pending_bits |= 1 << self._slot_for(operation.id)
                self._track_undone(operation)
            # else: a compacted retransmit answered from retained values —
            # unslotted, never in the done order, no bit to keep.

    def make_response(self, operation) -> ResponseMessage:
        response = super().make_response(operation)
        slot = self._slots.get(operation.id)
        if slot is not None:
            self._pending_bits &= ~(1 << slot)
        return response

    # ------------------------------------------------------------ gossip path

    def receive_gossip_batch(self, messages: Sequence[GossipMessage]) -> None:
        if len(messages) <= 1:
            for message in messages:
                self.receive_gossip(message)
            return
        self._batch_depth += 1
        try:
            for message in messages:
                self.receive_gossip(message)
        finally:
            self._batch_depth -= 1
            if not self._batch_depth:
                self._flush_order_changes()

    def _note_gossip_merge(self, reorders, new_done_me, new_undone) -> None:
        if new_done_me:
            for x in new_done_me:
                self._complete_op(x)
        if new_undone:
            for x in new_undone:
                self._track_undone(x)
        if not (reorders or new_done_me):
            return
        if self._batch_depth:
            deferred_done = self._deferred_done
            for x in new_done_me:
                deferred_done[x.id] = x
            deferred_reorders = self._deferred_reorders
            for old_label, op_id in reorders:
                # Keep only the oldest superseded key per operation (it is
                # the one still in the backbone); insertions this batch read
                # their final label at flush time and need no reorder.
                if op_id not in deferred_done and op_id not in deferred_reorders:
                    deferred_reorders[op_id] = old_label
            return
        if not self._order_dirty:
            self._splice_order_changes(reorders, new_done_me)

    def _splice_order_changes(self, reorders, new_done_me) -> None:
        min_pos = self._apply_order_changes(reorders, new_done_me)
        if min_pos is None:
            self._solid = 0
        elif min_pos < self._solid:
            self._solid = min_pos

    def _flush_order_changes(self) -> None:
        """Apply (or, when a full re-sort is already pending, discard) the
        batch's deferred order splices.  Runs before anything reads the
        order; outside a batch the buffers are always empty."""
        if not (self._deferred_done or self._deferred_reorders):
            return
        reorders = [
            (old_label, op_id)
            for op_id, old_label in self._deferred_reorders.items()
        ]
        new_done = list(self._deferred_done.values())
        self._deferred_reorders = {}
        self._deferred_done = {}
        if not self._order_dirty:
            self._splice_order_changes(reorders, new_done)

    def _post_merge(self) -> None:
        if self.compaction is not None:
            # The compaction scan reads the order: bring it current first so
            # fold boundaries land exactly where the sequential path puts
            # them.  Without compaction nothing reads the order mid-batch
            # and the flush waits for the batch to end.
            self._flush_order_changes()
            self.maybe_compact()

    # ------------------------------------------------------------------ order

    def done_order(self) -> List:
        if self._deferred_done or self._deferred_reorders:
            self._flush_order_changes()
        if self._order_dirty:
            labels = self.labels
            stride = self._rank_stride
            index = self._replica_index
            items = list(self.done[self.replica_id])
            keys: List[Any] = []
            for x in items:
                label = labels.get(x.id)
                keys.append(
                    _INFINITE_KEY
                    if label is None
                    else label.rank * stride + index[label.replica]
                )
            order = argsort_keys(keys)
            self._order_cache = [items[i] for i in order]
            self._order_keys = [keys[i] for i in order]
            self._order_dirty = False
            self._order_epoch += 1
            self._solid = 0
            self.stats.done_order_sorts += 1
        return self._order_cache

    # ---------------------------------------------------------- response path

    def _compute_value_incremental(self, operation) -> Any:
        order = self.done_order()  # flushes splices, may re-sort
        if self._replay_epoch == self._order_epoch:
            # Same epoch: the fast core's append-only tail replay.
            return super()._compute_value_incremental(operation)
        # Epoch mismatch (a full re-sort happened): instead of the base
        # path's per-position label_sort_key/labels.get rebuild, compare the
        # cached (packed key, id) rows directly against the fresh backbone.
        # Packed keys are injective on labels, so the longest matching
        # prefix is exactly the base path's (tuple-keyed entries from the
        # base fallback compare unequal to ints and simply shorten the
        # prefix — replaying more of the tail is always sound).
        keys = self._order_keys
        replay_order = self._replay_order
        prefix = 0
        limit = min(len(keys), len(replay_order))
        while prefix < limit:
            cached_key, cached_id = replay_order[prefix]
            if cached_key != keys[prefix] or cached_id != order[prefix].id:
                break
            prefix += 1
        values = self._replay_values
        if prefix == len(keys) and operation.id in values:
            self._replay_epoch = self._order_epoch
            return values[operation.id]
        del replay_order[prefix:]
        del self._replay_states[prefix:]
        retained = {op_id for _key, op_id in replay_order}
        values = self._replay_values = {
            op_id: v for op_id, v in values.items() if op_id in retained
        }
        states = self._replay_states
        state = states[prefix - 1] if prefix else self.checkpoint.base_state
        apply = self.data_type.apply
        for i in range(prefix, len(order)):
            x = order[i]
            state, reported = apply(state, x.op)
            replay_order.append((keys[i], x.id))
            states.append(state)
            values[x.id] = reported
        self.stats.value_applications += len(order) - prefix
        self._replay_epoch = self._order_epoch
        return values[operation.id]

    # --------------------------------------------------- checkpoint compaction

    def compactable_prefix(self) -> List:
        order = self.done_order()
        if not order:
            return []
        all_stable = -1
        for bits in self._stable_bits.values():
            all_stable &= bits
            if not all_stable:
                break
        if not all_stable:
            # Solid positions have their bit set in every stable row, so an
            # empty intersection implies an empty solid prefix.
            return []
        pos = self._solid
        if pos > len(order):  # pragma: no cover - defensive
            pos = 0
        pending_bits = self._pending_bits
        slots = self._slots
        n = len(order)
        while pos < n:
            slot = slots[order[pos].id]
            if (pending_bits >> slot) & 1 or not (all_stable >> slot) & 1:
                break
            pos += 1
        self._solid = pos
        return list(order[:pos])

    def _after_compaction(self, removed) -> None:
        super()._after_compaction(removed)  # may retire slots or re-index
        waiters = self._waiters
        for x in removed:
            waiters.pop(x.id, None)
        self._recompute_pending_bits()
        self._solid = 0

    def _recompute_pending_bits(self) -> None:
        slots = self._slots
        bits = 0
        for operation in self.pending:
            slot = slots.get(operation.id)
            if slot is not None:
                bits |= 1 << slot
        self._pending_bits = bits

    # ---------------------------------------------------------------- rebuild

    def _rebuild_fast_state(self) -> None:
        super()._rebuild_fast_state()
        self._recompute_pending_bits()
        self._solid = 0
        self._unmet = {}
        self._waiters = {}
        self._ready = {}
        for x in self._undone:
            self._track_undone(x)

    def _on_checkpoint_adopted(self) -> None:
        # The adoption set _order_dirty; the buffered splices (if a batch is
        # active) are subsumed by the coming re-sort.
        self._deferred_done = {}
        self._deferred_reorders = {}
        super()._on_checkpoint_adopted()

    def _on_crash(self) -> None:
        self._deferred_done = {}
        self._deferred_reorders = {}
        super()._on_crash()


class BatchIncrementalReplicaCore(BatchReplicaCore):
    """The batch kernel with the incremental value-replay cache switched on —
    the pairing every batch-path benchmark configuration uses."""

    def __init__(self, replica_id, replica_ids, data_type) -> None:
        super().__init__(replica_id, replica_ids, data_type)
        self.enable_incremental_replay()
