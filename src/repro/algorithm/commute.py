"""The ``Commute`` replica (Section 10.3, Fig. 11).

When clients promise to explicitly order every pair of non-commuting
operations (the ``SafeUsers`` discipline), Lemma 10.6 guarantees that the
*final state* after applying a set of operations is the same for every total
order consistent with the client-specified constraints.  A replica may then
maintain a single *current state* ``cs_r`` updated as each operation is done
(in arrival order), and compute each operation's value once, when it is done,
instead of replaying history for every response.

For strict operations the value must also agree with the eventual total
order; Fig. 11 therefore computes strict values at memoization time (when the
operation's position is fixed) and gates strict responses on
``x in ⋂_i stable_r[i] ∩ memoized_r``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Set

from repro.algorithm.labels import Label, label_sort_key
from repro.algorithm.messages import GossipMessage
from repro.algorithm.replica import ReplicaCore
from repro.common import SpecificationError
from repro.core.operations import OperationDescriptor, client_specified_constraints
from repro.core.orders import topological_total_order
from repro.datatypes.base import SerialDataType
from typing import Optional


class CommuteReplicaCore(ReplicaCore):
    """Replica variant that exploits commutativity (Fig. 11)."""

    def __init__(self, replica_id: str, replica_ids: Sequence[str], data_type: SerialDataType) -> None:
        super().__init__(replica_id, replica_ids, data_type)
        #: ``cs_r`` — state after applying every operation done here, in the
        #: order they were done here.
        self.current_state: Any = data_type.initial_state()
        #: ``val_r`` — the value recorded for each done operation.
        self.values: Dict[OperationDescriptor, Any] = {}
        #: ``memoized_r`` / ``ms_r`` — the stable-prefix bookkeeping reused
        #: from Section 10.1 for strict operations.
        self.memoized: Set[OperationDescriptor] = set()
        self.memo_state: Any = data_type.initial_state()

    # ------------------------------------------------------------------- do_it

    def do_it(self, operation: OperationDescriptor, label: Optional[Label] = None) -> Label:
        """As in Fig. 11: also advance ``cs_r`` and record ``val_r(x)``."""
        assigned = super().do_it(operation, label)
        self.current_state, value = self.data_type.apply(self.current_state, operation.op)
        self.stats.memoized_applications += 1
        self.values[operation] = value
        return assigned

    # ------------------------------------------------------------------ gossip

    def _post_merge(self) -> None:
        """Compaction is deferred to the end of :meth:`receive_gossip`: the
        base hook would fold an operation learned in this very message before
        the ``newly_done`` replay below applies it to ``cs_r``, permanently
        dropping its effect from the current state."""

    def receive_gossip(self, message: GossipMessage) -> None:
        """Merge gossip; newly learned done operations are applied to ``cs_r``
        in an order consistent with the client-specified constraints among
        them (Fig. 11's receive loop).  Compaction runs only after that.

        During an advert/pull catch-up window the derived state is left
        alone: ``cs_r`` is missing the awaited compacted prefix, so folding
        more operations into it would only deepen the corruption.  The
        window-closing hooks rebuild everything from the (possibly adopted)
        checkpoint base; the ``x not in self.values`` filter below keeps
        that rebuild and this incremental path from double-applying an
        operation (``values`` records exactly the operations whose effect
        is in ``cs_r``).
        """
        previously_done = set(self.done_here())
        super().receive_gossip(message)
        if self.catching_up():
            return
        self._apply_in_csc_order({
            x for x in self.done_here() - previously_done if x not in self.values
        })
        self._memoize_available()
        if self.compaction is not None:
            self.maybe_compact()

    def _apply_in_csc_order(self, operations: Set[OperationDescriptor]) -> None:
        """Fold *operations* into ``cs_r`` in an order consistent with the
        client-specified constraints among them (sound under the SafeUsers
        discipline, Lemma 10.6), recording each value.  The applications
        count as bookkeeping (``memoized_applications``), like every other
        current-state update of this variant."""
        if not operations:
            return
        csc = client_specified_constraints(operations)
        order = topological_total_order(csc, {x.id for x in operations})
        by_id = {x.id: x for x in operations}
        for op_id in order:
            operation = by_id[op_id]
            self.current_state, value = self.data_type.apply(
                self.current_state, operation.op
            )
            self.stats.memoized_applications += 1
            self.values[operation] = value

    # -------------------------------------------------------------- memoization

    def _solid_operations(self) -> Set[OperationDescriptor]:
        stable_here = self.stable_here()
        if not stable_here:
            return set()
        max_stable_label = max(
            (self.label_of(x.id) for x in stable_here), key=label_sort_key
        )
        return {
            x
            for x in self.done_here()
            if label_sort_key(self.label_of(x.id)) <= label_sort_key(max_stable_label)
        }

    def _memoize_available(self) -> List[OperationDescriptor]:
        """``memoize_r(x)`` of Fig. 11: fold solid operations into ``ms_r`` in
        label order, re-recording their value from the eventual order."""
        performed: List[OperationDescriptor] = []
        progressing = True
        while progressing:
            progressing = False
            solid = self._solid_operations()
            for x in sorted(
                solid - self.memoized,
                key=lambda op: label_sort_key(self.label_of(op.id)),
            ):
                earlier = {
                    y
                    for y in self.done_here()
                    if label_sort_key(self.label_of(y.id))
                    < label_sort_key(self.label_of(x.id))
                }
                if not earlier <= self.memoized:
                    break
                self.memo_state, value = self.data_type.apply(self.memo_state, x.op)
                self.stats.memoized_applications += 1
                self.values[x] = value
                self.memoized.add(x)
                performed.append(x)
                progressing = True
        return performed

    # ---------------------------------------------------------------- responses

    def response_ready(self, operation: OperationDescriptor) -> bool:
        """Fig. 11 strengthens the strict gate: the operation must also be
        memoized (its eventual-order value is then fixed).  A retransmitted
        compacted operation keeps the base-class contract — answerable from
        the checkpoint's retained values."""
        if operation not in self.pending:
            return False
        if self.is_compacted(operation.id):
            return operation.id in self.checkpoint.values
        if self.catching_up():
            # Advert/pull catch-up: ``cs_r`` / ``val_r`` are missing the
            # effects of the awaited compacted prefix (same replay gate as
            # the base replica).
            return False
        if operation not in self.done_here():
            return False
        if operation.strict:
            if not self.is_stable_everywhere(operation):
                return False
            if operation not in self.memoized:
                # Try to advance memoization before giving up; memoize is an
                # internal action that is always enabled once solid.
                self._memoize_available()
                if operation not in self.memoized:
                    return False
        return True

    def compute_value(self, operation: OperationDescriptor) -> Any:
        """``v = val_r(x)`` — no replay at response time.  Compacted
        operations are served from the checkpoint's retained values."""
        if self.is_compacted(operation.id):
            return ReplicaCore.compute_value(self, operation)
        if operation not in self.values:
            raise SpecificationError(
                f"no recorded value for {operation.id} at replica {self.replica_id}"
            )
        return self.values[operation]

    # ------------------------------------------------------ compaction interplay

    def _prepare_compaction(self) -> None:
        """Fold everything solid into ``ms`` so the compactable prefix is
        memoized (its eventual-order value recorded) before being dropped."""
        self._memoize_available()

    def _after_compaction(self, removed) -> None:
        self.memoized -= removed
        for operation in removed:
            self.values.pop(operation, None)

    def _on_crash(self) -> None:
        """``cs_r`` / ``val_r`` / the memo prefix are volatile: a crash with
        volatile memory restarts them from the persisted checkpoint's base
        state (re-learned operations are re-applied by the gossip path)."""
        self.memoized = set()
        self.memo_state = self.checkpoint.base_state
        self.current_state = self.checkpoint.base_state
        self.values = {}

    def _on_checkpoint_adopted(self) -> None:
        """Rebuild the derived state after wholesale checkpoint adoption: the
        remaining done operations are re-applied onto the adopted base in an
        order consistent with the client-specified constraints (sound under
        the SafeUsers discipline, Lemma 10.6), and memoization restarts."""
        self.memoized = set()
        self.memo_state = self.checkpoint.base_state
        self.current_state = self.checkpoint.base_state
        self.values = {}
        self._apply_in_csc_order(set(self.done_here()))

    def _on_catchup_healed(self) -> None:
        """A catch-up window closed through gossip re-delivery: ``cs_r`` /
        ``val_r`` advanced by ``do_it`` during the window miss the (now
        re-tracked) prefix — rebuild exactly as after an adoption."""
        self._on_checkpoint_adopted()

    # ----------------------------------------------------------------- snapshot

    def snapshot(self) -> Dict[str, Any]:
        data = super().snapshot()
        data["current_state"] = self.current_state
        data["values"] = dict(self.values)
        data["memoized"] = set(self.memoized)
        return data
