"""I/O-automaton wrapper around :class:`~repro.algorithm.system.AlgorithmSystem`.

The specification automata (ESDS-I/II, Users) are expressed directly in the
:mod:`repro.automata` framework; the algorithm's composition is flattened
into :class:`AlgorithmSystem` for efficiency.  This module restores the
uniform interface: :class:`AlgorithmAutomaton` exposes the flattened system
as a single I/O automaton whose external actions are ``request`` and
``response`` (send/receive and gossip actions are internal, mirroring the
hiding applied to ``ESDS-Alg`` in Section 6.4), so it can be driven by the
:class:`~repro.automata.executions.RandomScheduler` and compared against the
specification with the :class:`~repro.automata.simulation.ForwardSimulationChecker`.
"""

from __future__ import annotations

import random
from typing import Any, Callable, List, Mapping, Optional

from repro.algorithm.system import AlgorithmSystem
from repro.automata.automaton import Action, IOAutomaton, Signature


class AlgorithmAutomaton(IOAutomaton):
    """``ESDS-Alg x Users`` as a single I/O automaton.

    Parameters
    ----------
    system:
        The flattened algorithm system to wrap.
    operation_factory:
        Optional callable ``(rng, requested) -> OperationDescriptor | None``
        used to generate spontaneous ``request`` actions during exploration.
    """

    name = "ESDS-Alg"
    signature = Signature(
        inputs=frozenset(),
        outputs=frozenset({"request", "response"}),
        internals=frozenset(
            {
                "send_request",
                "receive_request",
                "do_it",
                "send_response",
                "receive_response",
                "send_gossip",
                "receive_gossip",
            }
        ),
    )

    def __init__(
        self,
        system: AlgorithmSystem,
        operation_factory: Optional[Callable] = None,
        max_candidates: int = 32,
    ) -> None:
        self.system = system
        self._operation_factory = operation_factory
        self._max_candidates = max_candidates

    # -- preconditions ---------------------------------------------------------

    def precondition(self, action: Action) -> bool:
        if action.kind == "request":
            return self.system.users.request_is_well_formed(action["operation"])
        # Internal actions and responses are generated from enabled_actions(),
        # so re-validate by membership.
        descriptor = (action.kind, action["args"]) if "args" in action.params else None
        if descriptor is None:
            return True
        return descriptor in self.system.enabled_actions()

    # -- effects ---------------------------------------------------------------

    def apply(self, action: Action) -> None:
        if action.kind == "request":
            self.system.request(action["operation"])
            return
        args = action.get("args", ())
        self.system.perform(action.kind, tuple(args))

    # -- candidates ------------------------------------------------------------

    def candidate_actions(self, rng: random.Random) -> List[Action]:
        candidates: List[Action] = []
        if self._operation_factory is not None:
            operation = self._operation_factory(rng, set(self.system.users.requested))
            if operation is not None and self.system.users.request_is_well_formed(operation):
                candidates.append(Action("request", operation=operation))
        enabled = self.system.enabled_actions()
        if len(enabled) > self._max_candidates:
            enabled = rng.sample(enabled, self._max_candidates)
        for kind, args in enabled:
            if kind == "response":
                candidates.append(Action("response", operation=args[0], args=args))
            else:
                candidates.append(Action(kind, args=args))
        return candidates

    # -- state -----------------------------------------------------------------

    def snapshot(self) -> Mapping[str, Any]:
        return self.system.snapshot()
