"""The per-client front end (Section 6.2, Fig. 6).

Each client accesses the service through a front end that relays requests to
replicas and relays responses back.  The front end may send the request for a
pending operation repeatedly, to the same or different replicas (used for
fault tolerance and performance); it records at most the responses for
operations still pending, and answers the client with one of them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Set, Tuple

from repro.algorithm.messages import RequestMessage, ResponseMessage
from repro.common import SpecificationError
from repro.core.operations import OperationDescriptor


class FrontEndCore:
    """State machine of the front end for one client.

    The replica-selection policy lives outside (in the driver or simulator);
    the front end itself only tracks ``wait`` and ``rept`` exactly as in
    Fig. 6.
    """

    def __init__(self, client_id: str, replica_ids: Sequence[str] = ()) -> None:
        self.client_id = client_id
        #: The replica set, when known: needed to decide that a *stale*
        #: response (value-retention NACK) has been received from every
        #: replica, i.e. the operation can provably never be answered.
        self.replica_ids: Tuple[str, ...] = tuple(replica_ids)
        #: Operations requested by the client but not yet responded to.
        self.wait: Set[OperationDescriptor] = set()
        #: ``(operation, value)`` pairs received from replicas and still
        #: eligible to be returned.
        self.rept: Set[Tuple[OperationDescriptor, Any]] = set()
        #: Replicas that NACKed each pending operation (stale responses).
        self.nacked: Dict[Any, Set[str]] = {}
        #: Operations declared failed (NACKed by every replica), with the
        #: failure reason; they have left ``wait`` and will never be
        #: answered — the client must mint a fresh operation instead.
        self.failed: Dict[Any, str] = {}
        #: Count of request messages sent (for the message-overhead metrics).
        self.requests_sent = 0

    # -- client-side actions ---------------------------------------------------

    def request(self, operation: OperationDescriptor) -> None:
        """``request(x)``: the client hands the operation to its front end."""
        if operation.id.client != self.client_id:
            raise SpecificationError(
                f"operation {operation.id} does not belong to client {self.client_id}"
            )
        self.wait.add(operation)

    def response_candidates(self) -> List[Tuple[OperationDescriptor, Any]]:
        """Pairs eligible for a ``response(x, v)`` action."""
        return [(x, v) for (x, v) in self.rept if x in self.wait]

    def respond(self, operation: OperationDescriptor) -> Any:
        """``response(x, v)``: deliver a recorded value to the client.

        Removes the operation from ``wait`` and every recorded value for it
        from ``rept``, returning the value delivered.
        """
        matching = [v for (x, v) in self.rept if x == operation]
        if operation not in self.wait or not matching:
            raise SpecificationError(
                f"no deliverable response for {operation.id} at front end {self.client_id}"
            )
        value = matching[0]
        self.wait.discard(operation)
        self.rept = {(x, v) for (x, v) in self.rept if x != operation}
        self.nacked.pop(operation.id, None)
        return value

    # -- replica-side actions --------------------------------------------------

    def sendable_requests(self) -> List[RequestMessage]:
        """A request message for each pending operation (any may be sent,
        repeatedly, to any replica)."""
        return [RequestMessage(x) for x in sorted(self.wait, key=lambda op: repr(op.id))]

    def make_request_message(self, operation: OperationDescriptor) -> RequestMessage:
        """Build a request message for a specific pending operation."""
        if operation not in self.wait:
            raise SpecificationError(
                f"operation {operation.id} is not pending at front end {self.client_id}"
            )
        self.requests_sent += 1
        return RequestMessage(operation)

    def receive_response(self, message: ResponseMessage) -> bool:
        """``receive(("response", x, v))``: record the value if still pending.

        Returns ``True`` when the response was recorded (operation still in
        ``wait``), ``False`` when it was ignored (no longer pending, or a
        stale-response NACK).

        A NACK (``message.stale``) is never recorded as a value.  It is
        tallied per replica; once every replica has NACKed an operation that
        has no deliverable value, the operation is moved from ``wait`` to
        ``failed`` — eviction of a compacted value is permanent, so no
        replica can ever compute the value *anew*.  Over the non-FIFO
        channels an already-sent response can still be in flight, though, so
        the declaration is a best-current-verdict, not a proof: a genuine
        value arriving for a failed operation resurrects it (back into
        ``wait`` with the value recorded) — the late answer wins.
        """
        operation = message.operation
        if message.stale:
            if operation in self.wait and message.sender is not None:
                nacks = self.nacked.setdefault(operation.id, set())
                nacks.add(message.sender)
                has_value = any(x == operation for (x, _v) in self.rept)
                if (
                    self.replica_ids
                    and set(self.replica_ids) <= nacks
                    and not has_value
                ):
                    self.wait.discard(operation)
                    self.failed[operation.id] = "stale-value"
                    del self.nacked[operation.id]
            return False
        if operation.id in self.failed:
            # A response sent before the eviction outran the NACKs: the
            # operation was answerable after all.
            del self.failed[operation.id]
            self.wait.add(operation)
            self.rept.add((operation, message.value))
            return True
        if operation in self.wait:
            self.rept.add((operation, message.value))
            return True
        return False

    # -- inspection -------------------------------------------------------------

    def pending_count(self) -> int:
        """Number of operations awaiting a response."""
        return len(self.wait)

    def snapshot(self) -> Dict[str, Any]:
        """Deep-enough copy of the front end state for invariant checks."""
        return {
            "client_id": self.client_id,
            "wait": set(self.wait),
            "rept": set(self.rept),
            "failed": dict(self.failed),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FrontEnd({self.client_id}, wait={len(self.wait)}, rept={len(self.rept)})"
