"""Stability-driven checkpoint compaction (bounded-memory replicas).

The paper's central structural fact — the stable prefix is totally ordered,
agreed at every replica, and never reordered (Invariant 7.2 together with
Theorem 5.8) — means that once an operation is *stable everywhere* its
position in the eventual total order, and therefore its effect on the data
state, is fixed forever.  A replica may then collapse the stable prefix of
its label order into a :class:`Checkpoint`:

* ``base_state`` — the data state obtained by applying the compacted prefix
  in label order from the initial state;
* ``frontier`` — the label of the last compacted operation; every label the
  replica still tracks is strictly greater;
* ``ids`` — a compact :class:`OpIdSummary` of the identifiers folded in
  (per-client seqno intervals, which coalesce to a handful of ranges in
  steady state);
* ``values`` — the response values of recently compacted operations, kept so
  a retransmitted request for an already-compacted operation can still be
  answered (the value of a compacted operation can never change again, by
  the same argument as Lemma 10.2).

After compaction the per-operation records — the descriptor in ``rcvd``, the
per-replica ``done[i]`` / ``stable[i]`` memberships, the label map entry, the
stable-storage label, and the replay-cache position — are dropped, so the
replica's tracked state is proportional to the *unstable suffix*, not to the
total history.  Value computation replays only the suffix on top of
``base_state``.

Checkpoints travel on gossip: a full-state (or frontier-advancing delta)
message carries the sender's current checkpoint, which tells the receiver
that everything at or below the frontier is stable at *every* replica.  A
receiver that still tracks those operations merely marks them stable and
compacts them with its own policy; a receiver that is missing some of them —
a replica recovering from a crash with volatile memory (Section 9.3) — adopts
the checkpoint wholesale as its new base instead of replaying the full
history.  The checkpoint itself is part of the replica's stable storage: a
crash never loses it, and recovery rebuilds from it.

Checkpoints are functional values: compaction produces a *new*
:class:`Checkpoint`, so a reference captured by an in-flight gossip message
or an acknowledged delta basis stays internally consistent forever.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass
from functools import cached_property
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.algorithm.labels import Label
from repro.common import ConfigurationError, InvariantViolation, OperationId
from repro.core.operations import OperationDescriptor


#: Seed of the chained fold-order digest — the digest of "nothing folded yet".
GENESIS_ORDER_DIGEST = "0" * 16


def chain_order_digest(digest: str, op_ids: Iterable[OperationId]) -> str:
    """Extend the chained fold-order digest by *op_ids*, one link per
    operation.

    Chaining per operation makes the digest independent of batch boundaries:
    every replica folding the same identifiers in the same order reaches the
    same digest regardless of how its compaction ticks sliced the work, and
    any disagreement in the fold *order* — not just the folded set —
    produces a different digest from the first diverging position onward.
    """
    for op_id in op_ids:
        material = f"{digest}|{op_id.client}#{op_id.seqno}"
        digest = hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]
    return digest


def canonical_repr(value: Any) -> str:
    """A construction-order-independent ``repr`` for digest material.

    ``repr`` of a set leaks hash-table insertion history: ``{9, 1}`` and
    ``{1, 9}`` are equal but can print differently (9 and 1 collide in a
    small table, so whichever was inserted first wins the slot).  Two sides
    of a serialization boundary rebuild equal sets in different orders —
    the checkpoint-transfer receiver recomputes the content digest over
    *decoded* values, and a raw-``repr`` digest would brand every legitimate
    set-valued payload as corrupted.  Containers are therefore rendered with
    sorted, recursively canonical elements; everything else keeps ``repr``.
    """
    if isinstance(value, frozenset):
        return "frozenset{" + ",".join(sorted(map(canonical_repr, value))) + "}"
    if isinstance(value, set):
        return "set{" + ",".join(sorted(map(canonical_repr, value))) + "}"
    if isinstance(value, tuple):
        return "(" + ",".join(map(canonical_repr, value)) + ",)"
    if isinstance(value, dict):
        pairs = (f"{canonical_repr(k)}:{canonical_repr(v)}" for k, v in value.items())
        return "{" + ",".join(sorted(pairs)) + "}"
    return repr(value)


def chunk_slices(items: Sequence[Any], chunk: Optional[int]) -> List[List[Any]]:
    """Split *items* into order-preserving slices of at most *chunk* entries
    (``None`` or a covering chunk size yields a single slice; an empty input
    still yields one empty slice, so transfers always carry at least one
    chunk to anchor the digest).  Shared by checkpoint value transfer and
    resharding migration transfer."""
    items = list(items)
    if chunk is None or chunk >= max(len(items), 1):
        return [items]
    return [items[i : i + chunk] for i in range(0, len(items), chunk)]


def _evict_oldest(values: Dict[OperationId, Any], retention: Optional[int]) -> Dict[OperationId, Any]:
    """Bound an insertion-ordered (oldest-first) value ledger in place."""
    if retention is not None:
        while len(values) > retention:
            del values[next(iter(values))]
    return values


class OpIdSummary:
    """An immutable, compact summary of a set of :class:`OperationId` values.

    Identifiers are ``(client, seqno)`` pairs; the summary stores, per
    client, a sorted tuple of disjoint inclusive ``(lo, hi)`` seqno
    intervals.  Compaction folds operations roughly in per-client seqno
    order, so the intervals coalesce: in steady state the summary holds one
    interval per client regardless of how many operations were compacted.
    This holds in sharded deployments too: the service layer mints
    identifiers per ``(client, shard)`` (the ``client@shard`` composite
    identity), so each shard's compacted prefix is a contiguous per-client
    seqno run and its summary stays O(clients) as well.
    """

    __slots__ = ("_ranges", "_count")

    def __init__(self, ranges: Optional[Mapping[str, Sequence[Tuple[int, int]]]] = None) -> None:
        normalized: Dict[str, Tuple[Tuple[int, int], ...]] = {}
        count = 0
        for client, intervals in (ranges or {}).items():
            merged = self._normalize(intervals)
            if merged:
                normalized[client] = merged
                count += sum(hi - lo + 1 for lo, hi in merged)
        self._ranges = normalized
        self._count = count

    @staticmethod
    def _normalize(intervals: Sequence[Tuple[int, int]]) -> Tuple[Tuple[int, int], ...]:
        merged: List[Tuple[int, int]] = []
        for lo, hi in sorted(intervals):
            if merged and lo <= merged[-1][1] + 1:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        return tuple(merged)

    # -- queries ---------------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of identifiers summarized."""
        return self._count

    @property
    def interval_count(self) -> int:
        """Number of stored intervals (the summary's actual size)."""
        return sum(len(intervals) for intervals in self._ranges.values())

    @property
    def ranges(self) -> Dict[str, Tuple[Tuple[int, int], ...]]:
        """The per-client interval map (callers must treat it as read-only;
        used for digests and wire accounting)."""
        return self._ranges

    def __contains__(self, op_id: OperationId) -> bool:
        intervals = self._ranges.get(op_id.client)
        if not intervals:
            return False
        index = bisect_right(intervals, (op_id.seqno, float("inf"))) - 1
        if index < 0:
            return False
        lo, hi = intervals[index]
        return lo <= op_id.seqno <= hi

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def issubset(self, other: "OpIdSummary") -> bool:
        """Every identifier of this summary is in *other*."""
        for client, intervals in self._ranges.items():
            theirs = other._ranges.get(client)
            if theirs is None:
                return False
            for lo, hi in intervals:
                index = bisect_right(theirs, (lo, float("inf"))) - 1
                if index < 0 or not (theirs[index][0] <= lo and hi <= theirs[index][1]):
                    return False
        return True

    def intersection_count(self, other: "OpIdSummary") -> int:
        """Number of identifiers present in both summaries."""
        total = 0
        for client, intervals in self._ranges.items():
            theirs = other._ranges.get(client)
            if not theirs:
                continue
            i = j = 0
            while i < len(intervals) and j < len(theirs):
                lo = max(intervals[i][0], theirs[j][0])
                hi = min(intervals[i][1], theirs[j][1])
                if lo <= hi:
                    total += hi - lo + 1
                if intervals[i][1] < theirs[j][1]:
                    i += 1
                else:
                    j += 1
        return total

    # -- construction ----------------------------------------------------------

    def with_ids(self, ids: Iterable[OperationId]) -> "OpIdSummary":
        """A new summary additionally covering *ids*."""
        ranges: Dict[str, List[Tuple[int, int]]] = {
            client: list(intervals) for client, intervals in self._ranges.items()
        }
        for op_id in ids:
            ranges.setdefault(op_id.client, []).append((op_id.seqno, op_id.seqno))
        return OpIdSummary(ranges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OpIdSummary({self._count} ids, {self.interval_count} intervals)"


@dataclass(frozen=True)
class CheckpointAdvert:
    """A compact *advertisement* of a checkpoint — what advert/pull gossip
    ships in steady state instead of the checkpoint body.

    It carries exactly the knowledge a peer needs to decide whether it is
    caught up: the frontier label, a content digest (to match a later
    transfer against), the chained fold-order digest (so a receiver can
    verify its *own* would-be fold order against the advertiser's before
    absorbing the stability assertion — see
    ``ReplicaCore._absorb_coverage``), and the per-client interval summary
    of the folded identifiers.  A receiver that still tracks (or has itself
    compacted) every advertised identifier learns their
    everywhere-stability from the advert alone; a receiver missing any of
    them must *pull* the checkpoint body.  Crucially the advert's wire size
    is ``O(clients)`` in steady state — independent of the history length
    and of the retained-value ledger the body drags along.
    """

    frontier: Label
    digest: str
    ids: OpIdSummary
    order_digest: str = GENESIS_ORDER_DIGEST

    @property
    def count(self) -> int:
        """Number of identifiers the advertised checkpoint folded."""
        return self.ids.count

    def covers(self, op_id: OperationId) -> bool:
        """Whether the advertised checkpoint folded *op_id*."""
        return op_id in self.ids

    def wire_estimate(self) -> int:
        """Wire-size contribution: frontier + digest + the interval summary
        (no state blob, no value ledger — that is the whole point)."""
        return 2 + self.ids.interval_count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CheckpointAdvert(count={self.count}, digest={self.digest})"


@dataclass(frozen=True)
class Checkpoint:
    """The collapsed stable prefix of one replica (see module docstring).

    Immutable: :meth:`extend` returns a new checkpoint.  ``values`` maps
    recently compacted identifiers to their fixed response values, in label
    (insertion) order so retention eviction drops the oldest first.
    """

    base_state: Any
    frontier: Optional[Label]
    ids: OpIdSummary
    values: Mapping[OperationId, Any]
    #: Chained digest of the fold order (one link per folded operation, see
    #: :func:`chain_order_digest`).  Batch-boundary independent: replicas
    #: that folded the same agreed prefix hold the same value however their
    #: compaction ticks sliced it.
    order_digest: str = GENESIS_ORDER_DIGEST

    @classmethod
    def empty(cls, initial_state: Any) -> "Checkpoint":
        """The checkpoint of a replica that has compacted nothing."""
        return cls(base_state=initial_state, frontier=None, ids=OpIdSummary(), values={})

    @property
    def count(self) -> int:
        """Number of operations folded into the base state."""
        return self.ids.count

    def covers(self, op_id: OperationId) -> bool:
        """Whether *op_id* has been folded into this checkpoint."""
        return op_id in self.ids

    def extend(
        self,
        prefix: Sequence[OperationDescriptor],
        data_type,
        labels: Mapping[OperationId, Label],
        value_retention: Optional[int] = None,
    ) -> Tuple["Checkpoint", int]:
        """Fold *prefix* (the next label-order stable operations) in.

        Returns ``(new_checkpoint, operator_applications)``.  *labels* must
        hold the replica's current label for each prefix operation; the last
        one becomes the new frontier.
        """
        state = self.base_state
        values = dict(self.values)
        applications = 0
        for operation in prefix:
            state, value = data_type.apply(state, operation.op)
            applications += 1
            values[operation.id] = value
        _evict_oldest(values, value_retention)
        frontier = labels[prefix[-1].id] if prefix else self.frontier
        return (
            Checkpoint(
                base_state=state,
                frontier=frontier,
                ids=self.ids.with_ids(x.id for x in prefix),
                values=values,
                order_digest=chain_order_digest(
                    self.order_digest, (x.id for x in prefix)
                ),
            ),
            applications,
        )

    def merged_values(
        self, newer_values: Mapping[OperationId, Any], value_retention: Optional[int] = None
    ) -> Dict[OperationId, Any]:
        """This checkpoint's retained values extended with *newer_values*
        (used when a recovering replica adopts a peer's checkpoint wholesale
        but wants to keep any retained values of its own).

        This checkpoint covers a *prefix* of the adopted one, so its values
        are the older entries: they are inserted first, keeping the merged
        dict oldest-first so that retention eviction — which pops from the
        front — drops the oldest values, matching the compaction path.
        Overlapping keys agree by construction (a compacted value is fixed
        forever), so the overlay direction cannot change any value.
        """
        merged = dict(self.values)
        merged.update(newer_values)
        return _evict_oldest(merged, value_retention)

    def wire_estimate(self) -> int:
        """Crude wire-size contribution (for the E8-style payload metric):
        one state blob plus the interval summary plus the retained values."""
        return 1 + self.ids.interval_count + len(self.values)

    @cached_property
    def _digest(self) -> str:
        # Retained values are hashed content-and-all (sorted by id, so the
        # digest is independent of insertion order): a transfer receiver
        # recomputes this over the assembled body, so any bit of a value or
        # of the base state flipped in flight changes the digest.
        material = repr((
            self.frontier,
            sorted(self.ids.ranges.items()),
            self.count,
            canonical_repr(self.base_state),
            tuple(
                (repr(op_id), canonical_repr(self.values[op_id]))
                for op_id in sorted(self.values)
            ),
            self.order_digest,
        ))
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]

    def digest(self) -> str:
        """A content digest identifying this exact checkpoint (frontier, id
        summary, base state and retained values, contents included).  Adverts
        carry it so a puller can match transfer chunks against the advertised
        content and reject bodies corrupted in flight, and so concurrent
        compaction at the sender is detectable (the transfer then arrives
        under a *newer* digest, which is still acceptable — a larger
        checkpoint is nested over the advertised one)."""
        return self._digest

    @cached_property
    def _advert(self) -> Optional[CheckpointAdvert]:
        if self.frontier is None:
            return None
        return CheckpointAdvert(
            frontier=self.frontier,
            digest=self.digest(),
            ids=self.ids,
            order_digest=self.order_digest,
        )

    def advert(self) -> Optional[CheckpointAdvert]:
        """The compact advert for this checkpoint (``None`` while empty)."""
        return self._advert

    def value_chunks(self, chunk: Optional[int]) -> List[Dict[OperationId, Any]]:
        """The retained-value ledger split into label-order slices of at most
        *chunk* entries (``None`` or a covering chunk size yields a single
        slice).  Slicing the insertion-ordered ledger keeps reassembly
        order-preserving, which :meth:`merged_values`'s oldest-first eviction
        depends on; each slice corresponds to a contiguous client-interval
        range of the folded identifiers."""
        return [dict(part) for part in chunk_slices(list(self.values.items()), chunk)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Checkpoint(count={self.count}, frontier={self.frontier})"


@dataclass(frozen=True)
class CompactionPolicy:
    """When and how aggressively a replica compacts its stable prefix.

    Parameters
    ----------
    min_batch:
        Fold only when at least this many operations are compactable
        (amortizes the one replay each compaction performs).  A forced
        compaction (the simulator's interval-driven tick) ignores this.
    value_retention:
        How many compacted response values to retain for answering
        retransmitted requests.  The default keeps the newest 1024 — a wide
        retransmission window whose memory (and full-state gossip payload)
        stays bounded, which is the whole point of compaction.  ``None``
        keeps every value (exact equivalence with an uncompacted replica
        even under arbitrarily late retransmission, at the cost of an
        O(history) value ledger); a retransmit that misses a finite window
        is dropped by the receiving replica — another replica, or a replica
        where the operation is still pending, answers instead.
    """

    min_batch: int = 16
    value_retention: Optional[int] = 1024

    def __post_init__(self) -> None:
        if self.min_batch < 1:
            raise ConfigurationError("min_batch must be at least 1")
        if self.value_retention is not None and self.value_retention < 0:
            raise ConfigurationError("value_retention must be non-negative or None")


class CompactionLedger:
    """Harness-side record of the system-wide compacted prefix.

    Every replica compacts prefixes of the *same* agreed total order
    (Invariant 7.2 / Theorem 5.8), so the batches reported by different
    replicas must tile one shared list.  The ledger verifies this on every
    record — a mismatch is a live violation of the stable-prefix agreement —
    and keeps the order, which the replicas themselves deliberately forget:
    the harness uses it for eventual-order witnesses and base-state audits.
    """

    def __init__(self) -> None:
        self.prefix: List[OperationDescriptor] = []
        self.ids: set = set()

    def record(self, batch: Sequence[OperationDescriptor], checkpoint: Checkpoint) -> None:
        """Record one replica's compaction of *batch* (its checkpoint after)."""
        start = checkpoint.count - len(batch)
        for offset, operation in enumerate(batch):
            position = start + offset
            if position < len(self.prefix):
                if self.prefix[position].id != operation.id:
                    raise InvariantViolation(
                        "compacted stable prefixes diverged: position "
                        f"{position} is {self.prefix[position].id} at one replica "
                        f"and {operation.id} at another"
                    )
            elif position == len(self.prefix):
                self.prefix.append(operation)
                self.ids.add(operation.id)
            else:  # pragma: no cover - defensive; adoption precedes compaction
                raise InvariantViolation(
                    f"compaction skipped positions {len(self.prefix)}..{position - 1} "
                    "of the stable prefix"
                )
