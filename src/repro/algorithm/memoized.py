"""The memoizing replica ESDS-Alg' (Section 10.1, Fig. 10).

The base replica replays its ``done`` set in label order to compute response
values (from scratch by default; with
:meth:`repro.algorithm.replica.ReplicaCore.enable_incremental_replay` it
re-applies only the suffix that changed since the previous replay).  This
class is the paper's own optimization: once an operation is *solid* — stable
at this replica,
or locally constrained to precede an operation stable here — its place in the
eventual total order is fixed (Lemma 10.2), so its value can be memoized and
never recomputed.  The memoizing replica keeps

* ``memoized`` — the operations whose values have been memoized (a prefix of
  the label order contained in ``solid``),
* ``ms`` — the data state after applying exactly the memoized operations in
  label order,
* ``mv`` — the memoized value of each memoized operation,

and computes a response by starting from ``ms`` and replaying only the
non-memoized suffix (``done[r] - memoized``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Set

from repro.algorithm.labels import label_sort_key
from repro.algorithm.replica import ReplicaCore
from repro.common import SpecificationError
from repro.core.operations import OperationDescriptor
from repro.datatypes.base import SerialDataType


class MemoizedReplicaCore(ReplicaCore):
    """ESDS-Alg' replica: identical external behaviour, memoized computation."""

    def __init__(self, replica_id: str, replica_ids: Sequence[str], data_type: SerialDataType) -> None:
        super().__init__(replica_id, replica_ids, data_type)
        self.memoized: Set[OperationDescriptor] = set()
        #: ``ms_r`` — state after applying the memoized prefix in label order.
        self.memo_state: Any = data_type.initial_state()
        #: ``mv_r`` — memoized value per memoized operation.
        self.memo_values: Dict[OperationDescriptor, Any] = {}

    # --------------------------------------------------------------- solid set

    def solid_operations(self) -> Set[OperationDescriptor]:
        """``solid_r`` — operations stable here or locally ordered before one
        that is (the derived variable of Fig. 10).

        By Invariant 10.1, when ``stable_r[r]`` is nonempty this is the label
        prefix of ``done_r[r]`` up to the largest stable label.
        """
        stable_here = self.stable_here()
        if not stable_here:
            return set()
        max_stable_label = max(
            (self.label_of(x.id) for x in stable_here), key=label_sort_key
        )
        return {
            x
            for x in self.done_here()
            if label_sort_key(self.label_of(x.id)) <= label_sort_key(max_stable_label)
        }

    # -------------------------------------------------------------- memoization

    def memoizable_operations(self) -> List[OperationDescriptor]:
        """Operations for which ``memoize_r(x)`` is enabled: solid, not yet
        memoized, and every locally earlier done operation already memoized."""
        solid = self.solid_operations()
        candidates: List[OperationDescriptor] = []
        for x in sorted(solid - self.memoized, key=lambda op: label_sort_key(self.label_of(op.id))):
            earlier = {
                y
                for y in self.done_here()
                if label_sort_key(self.label_of(y.id)) < label_sort_key(self.label_of(x.id))
            }
            if earlier <= self.memoized:
                candidates.append(x)
        return candidates

    def memoize(self, operation: OperationDescriptor) -> Any:
        """``memoize_r(x)``: fold the operation into the memoized state and
        record its value.  Returns the memoized value."""
        if operation not in self.memoizable_operations():
            raise SpecificationError(
                f"memoize precondition fails for {operation.id} at replica {self.replica_id}"
            )
        self.memo_state, value = self.data_type.apply(self.memo_state, operation.op)
        self.stats.memoized_applications += 1
        self.memo_values[operation] = value
        self.memoized.add(operation)
        return value

    def memoize_all_available(self) -> List[OperationDescriptor]:
        """Memoize every operation that can currently be memoized, in order."""
        performed: List[OperationDescriptor] = []
        candidates = self.memoizable_operations()
        while candidates:
            target = candidates[0]
            self.memoize(target)
            performed.append(target)
            candidates = self.memoizable_operations()
        return performed

    # ---------------------------------------------------------- value computation

    def compute_value(self, operation: OperationDescriptor) -> Any:
        """Use the memoized value when available; otherwise replay only the
        non-memoized suffix starting from ``ms_r`` (Fig. 10's send_rc).  The
        value of a compacted operation is served from the checkpoint."""
        if self.is_compacted(operation.id):
            return ReplicaCore.compute_value(self, operation)
        if operation not in self.done_here():
            raise SpecificationError(
                f"cannot compute a value for {operation.id}: not done at {self.replica_id}"
            )
        if operation in self.memo_values:
            return self.memo_values[operation]

        state = self.memo_state
        value: Any = None
        found = False
        for x in self.done_order():
            if x in self.memoized:
                continue
            state, reported = self.data_type.apply(state, x.op)
            self.stats.value_applications += 1
            if x.id == operation.id:
                value = reported
                found = True
        if not found:  # pragma: no cover - defensive; cannot happen when done
            raise SpecificationError(f"operation {operation.id} missing from replay")
        return value

    # -------------------------------------------------------------- gossip hook

    def receive_gossip(self, message) -> None:  # type: ignore[override]
        """Merge gossip as usual, then opportunistically advance memoization.

        Memoizing eagerly after each gossip keeps ``ms`` close to the stable
        frontier, which is what a production implementation would do; it does
        not change external behaviour (memoize is an internal action).

        Not during an advert/pull catch-up window, though: ``ms`` would fold
        operations on top of a base that is missing the awaited compacted
        prefix, and a memo poisoned that way would outlive the window when
        it closes through gossip re-delivery.  The window-closing hooks
        (:meth:`_on_checkpoint_adopted` / :meth:`_on_catchup_healed`) reset
        the memo, and memoization simply resumes afterwards.
        """
        super().receive_gossip(message)
        if not self.catching_up():
            self.memoize_all_available()

    # ------------------------------------------------------ compaction interplay

    def _prepare_compaction(self) -> None:
        """Fold everything solid into ``ms`` first, so the compactable prefix
        (stable everywhere, within solid) is always covered by the memoized
        prefix when its records are dropped — ``ms`` then remains the state
        after exactly ``checkpoint + memoized`` in label order."""
        self.memoize_all_available()

    def _after_compaction(self, removed) -> None:
        """Compacted operations leave the memoized bookkeeping; their effect
        is already inside ``ms`` (which equals the checkpoint base plus the
        remaining memoized prefix) and their values moved to the checkpoint."""
        self.memoized -= removed
        for operation in removed:
            self.memo_values.pop(operation, None)

    def _on_checkpoint_adopted(self) -> None:
        """After wholesale adoption (crash-recovery catch-up) the old memo
        prefix no longer matches the history: restart memoization from the
        adopted base state."""
        self.memoized = set()
        self.memo_state = self.checkpoint.base_state
        self.memo_values = {}

    def _on_crash(self) -> None:
        """The memo prefix is volatile (its operations were wiped); restart
        from the persisted checkpoint's base state."""
        self.memoized = set()
        self.memo_state = self.checkpoint.base_state
        self.memo_values = {}

    def _on_catchup_healed(self) -> None:
        """A catch-up window closed through gossip re-delivery: anything
        memoized against the holed history is invalid — restart memoization
        from the checkpoint base (it re-advances on the next gossip)."""
        self.memoized = set()
        self.memo_state = self.checkpoint.base_state
        self.memo_values = {}

    # ----------------------------------------------------------------- snapshot

    def snapshot(self) -> Dict[str, Any]:
        data = super().snapshot()
        data["memoized"] = set(self.memoized)
        data["memo_state"] = self.memo_state
        data["memo_values"] = dict(self.memo_values)
        return data
