"""Per-peer bookkeeping for delta gossip (the Section 10.4 optimization,
made incremental and crash-safe).

The base algorithm's gossip message carries the sender's *entire*
``(rcvd, done, label, stable)`` knowledge.  Delta gossip transmits, per
destination, only the part of that knowledge the destination has not yet
*acknowledged*.  Acknowledgements ride on the gossip the peer sends back:

* every delta-mode gossip message carries a per-destination ``seqno`` and the
  sender's cumulative ack of the destination's own gossip stream (``ack`` =
  the largest ``k`` such that every message ``1..k`` from the destination has
  been received);
* the sender snapshots its payload at each send; when the peer acks seqno
  ``k``, the snapshot at ``k`` becomes the *basis* and subsequent deltas are
  computed against it.

Because the basis is always an **acknowledged** snapshot, the receiver
provably already holds everything the delta omits, so merging a delta leaves
the receiver in exactly the state a full message would have produced — delta
and full gossip induce identical executions under the same scheduler.  (A
delta against merely *sent* state would not have this property over the
paper's reorderable, lossy channels.)

Crash recovery (Section 9.3) is handled by an incarnation ``epoch`` kept in
the replica's stable storage alongside its generated labels: a replica that
crashes with volatile memory bumps its epoch, which voids every ack it issued
before the crash, and peers observing the new epoch reset their bookkeeping
and fall back to full-state gossip.  A periodic full-state fallback (every
``full_state_interval``-th send to a peer) bounds the staleness window even
when the new epoch has not been observed yet.

Checkpoint coverage follows the same never-resend-below-the-acked-frontier
rule as the payload sets: a delta attaches the sender's checkpoint (as body
or, under advert/pull gossip, as a compact advert) only when its frontier
advanced past what the acknowledged basis already conveyed — see
``ReplicaCore._checkpoint_attachment`` — so acked knowledge is never shipped
twice in either mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Optional, Set

from repro.algorithm.labels import Label
from repro.common import OperationId
from repro.core.operations import OperationDescriptor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (checkpoint uses labels)
    from repro.algorithm.checkpoint import Checkpoint


@dataclass(frozen=True)
class GossipSnapshot:
    """A frozen copy of one replica's gossip payload at a send point.

    Retained by the sender until the destination acknowledges the
    corresponding seqno; the acknowledged snapshot becomes the basis that
    later deltas are computed against.  ``checkpoint`` records the sender's
    compaction checkpoint at the send point: the payload sets cover only the
    suffix above its frontier, and comparing it against the current one
    tells the sender whether a delta must re-advertise the frontier.
    """

    received: FrozenSet[OperationDescriptor]
    done: FrozenSet[OperationDescriptor]
    labels: Dict[OperationId, Label]
    stable: FrozenSet[OperationDescriptor]
    checkpoint: Optional["Checkpoint"] = None
    #: The sender's label-journal version at the snapshot point: a later
    #: delta against this basis enumerates only label entries journaled
    #: after it instead of scanning the whole label map.
    label_version: int = 0


@dataclass
class PeerOutState:
    """What this replica knows about the gossip it has *sent* to one peer."""

    #: Identifier of the current seqno stream toward this peer.  Bumped (and
    #: the seqnos restarted from 1) whenever the stream is reset — e.g. when
    #: the peer is observed to have restarted — so that acknowledgements for
    #: an abandoned stream can never be matched against the new one.
    stream: int = 0
    #: Sequence number of the next gossip message to this peer (1-based).
    next_seqno: int = 1
    #: Snapshots of payloads sent but not yet acknowledged, by seqno.
    snapshots: Dict[int, GossipSnapshot] = field(default_factory=dict)
    #: Largest seqno the peer has cumulatively acknowledged.
    acked_seqno: int = 0
    #: The snapshot at ``acked_seqno`` (None until the first ack, or when the
    #: acked snapshot was pruned — both mean "send full state").
    basis: Optional[GossipSnapshot] = None
    #: Delta-mode sends since the last full-state send (for the periodic
    #: full-state fallback).
    sends_since_full: int = 0

    #: Retention cap for unacknowledged snapshots; when exceeded the oldest
    #: are pruned and the sender degrades to full-state gossip until an ack
    #: for a retained seqno arrives.  Bounds memory against silent peers.
    MAX_RETAINED = 64

    def record_send(self, seqno: int, snapshot: GossipSnapshot) -> None:
        self.snapshots[seqno] = snapshot
        if len(self.snapshots) > self.MAX_RETAINED:
            for stale in sorted(self.snapshots)[: len(self.snapshots) - self.MAX_RETAINED]:
                del self.snapshots[stale]

    def apply_ack(self, acked: int) -> None:
        """Adopt a cumulative ack from the peer (for the current stream —
        the caller checks the stream id).

        Regressions (an older message arriving late, or a peer that lost its
        state) are accepted: a smaller basis only makes later deltas larger,
        never unsound.
        """
        self.acked_seqno = acked
        self.basis = self.snapshots.get(acked)
        for seqno in [s for s in self.snapshots if s < acked]:
            del self.snapshots[seqno]

    def reset(self) -> None:
        """Abandon the current stream (the peer lost its state: new epoch
        observed) and start a fresh one so delta gossip can resume once the
        recovered peer starts acknowledging again."""
        self.stream += 1
        self.next_seqno = 1
        self.snapshots.clear()
        self.acked_seqno = 0
        self.basis = None
        self.sends_since_full = 0


@dataclass
class PeerInState:
    """What this replica has *received* from one peer's gossip stream."""

    #: The peer's incarnation epoch this bookkeeping belongs to.
    epoch: int = 0
    #: The peer's stream id within that epoch (echoed back on acks).
    stream: int = 0
    #: Largest ``k`` such that every seqno ``1..k`` has been received.
    frontier: int = 0
    #: Seqnos received out of order, above the frontier.
    above: Set[int] = field(default_factory=set)

    def record_receipt(self, stream: int, seqno: int, is_full: bool) -> None:
        """Advance the cumulative frontier with one received seqno.

        A newer stream id replaces the old one (the peer restarted its
        stream); seqnos from an older stream are ignored.  A *full-state*
        message at seqno ``s`` conveys everything the sender knew at ``s``,
        so the frontier may jump straight to ``s`` — this is what lets the
        periodic full-state fallback heal seqno gaps left by lost messages
        (and bounds the ``above`` set).
        """
        if stream < self.stream:
            return  # stale stream: the sender has since restarted it
        if stream > self.stream:
            self.stream = stream
            self.frontier = 0
            self.above.clear()
        if is_full and seqno > self.frontier:
            self.frontier = seqno
            self.above = {s for s in self.above if s > seqno}
        if seqno <= self.frontier or seqno in self.above:
            return  # duplicate delivery
        self.above.add(seqno)
        while self.frontier + 1 in self.above:
            self.frontier += 1
            self.above.discard(self.frontier)

    def reset(self, epoch: int) -> None:
        """The peer restarted with a new incarnation: its seqno stream starts
        over and nothing from the old incarnation may be counted."""
        self.epoch = epoch
        self.stream = 0
        self.frontier = 0
        self.above.clear()
